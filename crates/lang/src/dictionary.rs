//! User-defined vocabulary: the personalization mechanism of §3.2/§4.2.
//!
//! Through `<CondDef>`/`<ConfDef>` sentences users coin new words —
//! "hot and stuffy" for a compound sensor context, "half-lighting" for a
//! favourite device configuration — and then use them inside later rules.
//! Definitions are stored at the AST level, so a word's meaning is
//! re-resolved against the current environment whenever a rule using it is
//! compiled, and words may reference previously defined words.

use crate::ast::{CondExprAst, SettingAst};
use crate::lexicon::PhraseMap;
use std::collections::BTreeMap;

fn normalize(word: &str) -> String {
    word.split_whitespace()
        .map(|w| w.to_ascii_lowercase())
        .collect::<Vec<_>>()
        .join(" ")
}

/// The store of user-defined condition and configuration words.
///
/// # Example
///
/// ```
/// use cadel_lang::Dictionary;
///
/// let mut dict = Dictionary::new();
/// assert!(dict.condition("hot and stuffy").is_none());
/// assert!(dict.condition_words().is_empty());
/// # let _ = dict;
/// ```
#[derive(Clone, Debug, Default)]
pub struct Dictionary {
    conditions: BTreeMap<String, CondExprAst>,
    configurations: BTreeMap<String, Vec<SettingAst>>,
    cond_phrases: PhraseMap<String>,
    conf_phrases: PhraseMap<String>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Dictionary {
        Dictionary::default()
    }

    /// Defines (or redefines) a condition word.
    pub fn define_condition(&mut self, word: &str, expr: CondExprAst) {
        let key = normalize(word);
        self.cond_phrases.insert(&key, key.clone());
        self.conditions.insert(key, expr);
    }

    /// Defines (or redefines) a configuration word.
    pub fn define_configuration(&mut self, word: &str, settings: Vec<SettingAst>) {
        let key = normalize(word);
        self.conf_phrases.insert(&key, key.clone());
        self.configurations.insert(key, settings);
    }

    /// The defining expression of a condition word.
    pub fn condition(&self, word: &str) -> Option<&CondExprAst> {
        self.conditions.get(&normalize(word))
    }

    /// The defining settings of a configuration word.
    pub fn configuration(&self, word: &str) -> Option<&[SettingAst]> {
        self.configurations.get(&normalize(word)).map(Vec::as_slice)
    }

    /// All condition words, sorted.
    pub fn condition_words(&self) -> Vec<&str> {
        self.conditions.keys().map(String::as_str).collect()
    }

    /// All configuration words, sorted.
    pub fn configuration_words(&self) -> Vec<&str> {
        self.configurations.keys().map(String::as_str).collect()
    }

    /// Phrase matcher over condition words (used by the parser for
    /// longest-match recognition, so "hot and stuffy" wins over the
    /// conjunction reading of its "and").
    pub fn condition_phrases(&self) -> &PhraseMap<String> {
        &self.cond_phrases
    }

    /// Phrase matcher over configuration words.
    pub fn configuration_phrases(&self) -> &PhraseMap<String> {
        &self.conf_phrases
    }

    /// Merges another dictionary into this one (its entries win). The
    /// server uses this to layer a user's private words over the shared
    /// household words.
    pub fn extend_from(&mut self, other: &Dictionary) {
        for (word, expr) in &other.conditions {
            self.define_condition(word, expr.clone());
        }
        for (word, settings) in &other.configurations {
            self.define_configuration(word, settings.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CondAst, CondKind, Phrase, SettingValueAst};
    use crate::token::tokenize;

    fn sample_expr(program: &str) -> CondExprAst {
        CondExprAst::Leaf(CondAst {
            kind: CondKind::Broadcast {
                program: vec![program.to_owned()],
            },
            period: None,
            time: None,
        })
    }

    fn sample_setting() -> SettingAst {
        SettingAst::Explicit {
            parameter: vec!["brightness".into()],
            value: SettingValueAst::Word(vec!["half".into()] as Phrase),
        }
    }

    #[test]
    fn define_and_lookup_is_case_insensitive() {
        let mut d = Dictionary::new();
        d.define_condition("Hot And Stuffy", sample_expr("x"));
        assert!(d.condition("hot and stuffy").is_some());
        assert!(d.condition("HOT  AND  STUFFY").is_some());
        assert!(d.condition("cold").is_none());
    }

    #[test]
    fn redefinition_replaces() {
        let mut d = Dictionary::new();
        d.define_condition("muggy", sample_expr("a"));
        d.define_condition("muggy", sample_expr("b"));
        assert_eq!(d.condition_words(), ["muggy"]);
        assert_eq!(d.condition("muggy"), Some(&sample_expr("b")));
    }

    #[test]
    fn configuration_words() {
        let mut d = Dictionary::new();
        d.define_configuration("half-lighting", vec![sample_setting()]);
        assert_eq!(d.configuration("half-lighting").unwrap().len(), 1);
        assert_eq!(d.configuration_words(), ["half-lighting"]);
    }

    #[test]
    fn phrase_matching_spans_inner_and() {
        let mut d = Dictionary::new();
        d.define_condition("hot and stuffy", sample_expr("x"));
        let tokens = tokenize("hot and stuffy today").unwrap();
        let (len, word) = d.condition_phrases().match_at(&tokens, 0).unwrap();
        assert_eq!(len, 3);
        assert_eq!(word, "hot and stuffy");
    }

    #[test]
    fn layering_private_over_shared() {
        let mut shared = Dictionary::new();
        shared.define_condition("cozy", sample_expr("shared"));
        shared.define_condition("gloomy", sample_expr("g"));
        let mut private = Dictionary::new();
        private.define_condition("cozy", sample_expr("mine"));

        let mut effective = shared.clone();
        effective.extend_from(&private);
        assert_eq!(effective.condition("cozy"), Some(&sample_expr("mine")));
        assert!(effective.condition("gloomy").is_some());
    }
}
