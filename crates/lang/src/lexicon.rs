//! The CADEL vocabulary.
//!
//! Table 1 of the paper leaves most alternative lists open ("..."); this
//! module fills them with a concrete, *extensible* vocabulary. The lexicon
//! is plain data — verbs, comparison phrases, state phrases, event
//! predicates — so "different versions of CADEL based on any other
//! languages can be defined" (paper §4.2) by building a lexicon with
//! translated phrases; see [`Lexicon::builder`] and the
//! `examples/multilingual.rs` demonstration.

use crate::token::Token;
use cadel_rule::Verb;
use cadel_simplex::RelOp;
use cadel_types::{Quantity, Unit};
use std::collections::HashMap;

/// A longest-match dictionary from multi-word phrases to values.
#[derive(Clone, Debug)]
pub struct PhraseMap<V> {
    entries: HashMap<String, V>,
    max_words: usize,
}

impl<V> Default for PhraseMap<V> {
    fn default() -> Self {
        PhraseMap {
            entries: HashMap::new(),
            max_words: 0,
        }
    }
}

impl<V> PhraseMap<V> {
    /// Creates an empty map.
    pub fn new() -> PhraseMap<V> {
        PhraseMap::default()
    }

    /// Inserts a phrase (normalized to lower case, single spaces).
    pub fn insert(&mut self, phrase: &str, value: V) {
        let words: Vec<String> = phrase
            .split_whitespace()
            .map(|w| w.to_ascii_lowercase())
            .collect();
        self.max_words = self.max_words.max(words.len());
        self.entries.insert(words.join(" "), value);
    }

    /// Number of phrases.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Longest phrase match starting at `pos` in the token stream.
    /// Returns the number of tokens consumed and the value.
    pub fn match_at<'a>(&'a self, tokens: &[Token], pos: usize) -> Option<(usize, &'a V)> {
        let available = tokens.len().saturating_sub(pos);
        let longest = self.max_words.min(available);
        for len in (1..=longest).rev() {
            let candidate = tokens[pos..pos + len]
                .iter()
                .map(|t| t.text.as_str())
                .collect::<Vec<_>>()
                .join(" ");
            if let Some(v) = self.entries.get(&candidate) {
                return Some((len, v));
            }
        }
        None
    }

    /// Exact lookup of a full phrase.
    pub fn get(&self, phrase: &str) -> Option<&V> {
        let normalized = phrase
            .split_whitespace()
            .map(|w| w.to_ascii_lowercase())
            .collect::<Vec<_>>()
            .join(" ");
        self.entries.get(&normalized)
    }
}

/// What a state phrase ("dark", "turned on", "unlocked") means.
#[derive(Clone, Debug, PartialEq)]
pub enum StatePhrase {
    /// A boolean device state variable having a value
    /// ("turned on" → `power == true`, "unlocked" → `locked == false`).
    Bool {
        /// The state variable name.
        variable: String,
        /// The value the phrase asserts.
        value: bool,
    },
    /// An ambient numeric condition of a place
    /// ("dark" → illuminance < 150 lx).
    Ambient {
        /// The ambient quantity kind ("illuminance", "noise", …).
        kind: String,
        /// Comparison direction.
        op: RelOp,
        /// Threshold.
        threshold: Quantity,
    },
}

/// The full vocabulary consulted by the parser.
#[derive(Clone, Debug)]
pub struct Lexicon {
    verbs: PhraseMap<Verb>,
    comparisons: PhraseMap<RelOp>,
    states: PhraseMap<StatePhrase>,
    person_events: PhraseMap<String>,
    broadcast_predicates: PhraseMap<()>,
    presence_predicates: PhraseMap<()>,
}

impl Lexicon {
    /// The English CADEL vocabulary used throughout the paper.
    pub fn english() -> Lexicon {
        let mut b = LexiconBuilder::new();
        // <Verb>
        for (phrase, verb) in [
            ("turn on", Verb::TurnOn),
            ("switch on", Verb::TurnOn),
            ("turn off", Verb::TurnOff),
            ("switch off", Verb::TurnOff),
            ("record", Verb::Record),
            ("play", Verb::Play),
            ("play back", Verb::Play),
            ("stop", Verb::Stop),
            ("lock", Verb::Lock),
            ("unlock", Verb::Unlock),
            ("dim", Verb::Dim),
            ("brighten", Verb::Brighten),
            ("show", Verb::Show),
            ("notify", Verb::Notify),
            ("set", Verb::Set),
        ] {
            b = b.verb(phrase, verb);
        }
        // <State> comparison forms; optional "is"/"are" variants are added
        // by the builder.
        for (phrase, op) in [
            ("higher than", RelOp::Gt),
            ("hotter than", RelOp::Gt),
            ("more than", RelOp::Gt),
            ("greater than", RelOp::Gt),
            ("over", RelOp::Gt),
            ("above", RelOp::Gt),
            ("lower than", RelOp::Lt),
            ("colder than", RelOp::Lt),
            ("less than", RelOp::Lt),
            ("under", RelOp::Lt),
            ("below", RelOp::Lt),
            ("at least", RelOp::Ge),
            ("at most", RelOp::Le),
            ("exactly", RelOp::Eq),
        ] {
            b = b.comparison(phrase, op);
        }
        // <State> word forms.
        for (phrase, var, value) in [
            ("turned on", "power", true),
            ("turned off", "power", false),
            ("running", "power", true),
            ("locked", "locked", true),
            ("unlocked", "locked", false),
            ("open", "open", true),
            ("opened", "open", true),
            ("closed", "open", false),
        ] {
            b = b.bool_state(phrase, var, value);
        }
        b = b.ambient_state(
            "dark",
            "illuminance",
            RelOp::Lt,
            Quantity::from_integer(150, Unit::Lux),
        );
        b = b.ambient_state(
            "bright",
            "illuminance",
            RelOp::Gt,
            Quantity::from_integer(300, Unit::Lux),
        );
        b = b.ambient_state(
            "quiet",
            "noise",
            RelOp::Lt,
            Quantity::from_integer(40, Unit::Decibel),
        );
        b = b.ambient_state(
            "noisy",
            "noise",
            RelOp::Gt,
            Quantity::from_integer(70, Unit::Decibel),
        );
        // Person events (the canonical event name is the phrase itself).
        for phrase in [
            "returns home",
            "return home",
            "comes back",
            "come back",
            "comes home",
            "got home from work",
            "got home from shopping",
            "gets home",
            "arrives",
            "leaves home",
            "leave home",
            "wakes up",
            "goes to bed",
        ] {
            b = b.person_event(phrase, phrase);
        }
        // Broadcast predicates ("a baseball game is on air").
        for phrase in [
            "is on air",
            "is on the air",
            "are on air",
            "is being broadcast",
        ] {
            b = b.broadcast_predicate(phrase);
        }
        // Presence predicates ("Tom is at/in the living room").
        for phrase in [
            "is at", "is in", "am at", "am in", "are at", "are in", "stays at", "stays in",
        ] {
            b = b.presence_predicate(phrase);
        }
        b.build()
    }

    /// Starts building a custom (e.g. translated) lexicon.
    pub fn builder() -> LexiconBuilder {
        LexiconBuilder::new()
    }

    /// Verb phrases.
    pub fn verbs(&self) -> &PhraseMap<Verb> {
        &self.verbs
    }

    /// Comparison phrases (with and without leading "is"/"are").
    pub fn comparisons(&self) -> &PhraseMap<RelOp> {
        &self.comparisons
    }

    /// State phrases ("turned on", "dark", …), with and without leading
    /// "is"/"are".
    pub fn states(&self) -> &PhraseMap<StatePhrase> {
        &self.states
    }

    /// Person event predicates ("returns home", …).
    pub fn person_events(&self) -> &PhraseMap<String> {
        &self.person_events
    }

    /// Broadcast predicates ("is on air").
    pub fn broadcast_predicates(&self) -> &PhraseMap<()> {
        &self.broadcast_predicates
    }

    /// Presence predicates ("is at", "am in", …).
    pub fn presence_predicates(&self) -> &PhraseMap<()> {
        &self.presence_predicates
    }
}

impl Default for Lexicon {
    fn default() -> Self {
        Lexicon::english()
    }
}

/// Builds a [`Lexicon`] phrase by phrase (C-BUILDER). Every method returns
/// `self` for chaining.
#[derive(Clone, Debug, Default)]
pub struct LexiconBuilder {
    lexicon: LexiconParts,
}

#[derive(Clone, Debug, Default)]
struct LexiconParts {
    verbs: PhraseMap<Verb>,
    comparisons: PhraseMap<RelOp>,
    states: PhraseMap<StatePhrase>,
    person_events: PhraseMap<String>,
    broadcast_predicates: PhraseMap<()>,
    presence_predicates: PhraseMap<()>,
}

impl LexiconBuilder {
    /// Creates an empty builder.
    pub fn new() -> LexiconBuilder {
        LexiconBuilder::default()
    }

    /// Adds a verb phrase.
    #[must_use]
    pub fn verb(mut self, phrase: &str, verb: Verb) -> Self {
        self.lexicon.verbs.insert(phrase, verb);
        self
    }

    /// Adds a comparison phrase; "is"/"are"-prefixed variants are derived
    /// automatically.
    #[must_use]
    pub fn comparison(mut self, phrase: &str, op: RelOp) -> Self {
        self.lexicon.comparisons.insert(phrase, op);
        self.lexicon.comparisons.insert(&format!("is {phrase}"), op);
        self.lexicon
            .comparisons
            .insert(&format!("are {phrase}"), op);
        self
    }

    /// Adds a boolean state phrase; "is"/"are"-prefixed variants are
    /// derived automatically.
    #[must_use]
    pub fn bool_state(mut self, phrase: &str, variable: &str, value: bool) -> Self {
        let state = StatePhrase::Bool {
            variable: variable.to_owned(),
            value,
        };
        self.lexicon.states.insert(phrase, state.clone());
        self.lexicon
            .states
            .insert(&format!("is {phrase}"), state.clone());
        self.lexicon.states.insert(&format!("are {phrase}"), state);
        self
    }

    /// Adds an ambient state phrase ("dark"); "is"/"are" variants derived.
    #[must_use]
    pub fn ambient_state(
        mut self,
        phrase: &str,
        kind: &str,
        op: RelOp,
        threshold: Quantity,
    ) -> Self {
        let state = StatePhrase::Ambient {
            kind: kind.to_owned(),
            op,
            threshold,
        };
        self.lexicon.states.insert(phrase, state.clone());
        self.lexicon
            .states
            .insert(&format!("is {phrase}"), state.clone());
        self.lexicon.states.insert(&format!("are {phrase}"), state);
        self
    }

    /// Adds a person event predicate mapping to a canonical event name.
    #[must_use]
    pub fn person_event(mut self, phrase: &str, event_name: &str) -> Self {
        self.lexicon
            .person_events
            .insert(phrase, event_name.to_owned());
        self
    }

    /// Adds a broadcast ("on air") predicate.
    #[must_use]
    pub fn broadcast_predicate(mut self, phrase: &str) -> Self {
        self.lexicon.broadcast_predicates.insert(phrase, ());
        self
    }

    /// Adds a presence ("is at") predicate.
    #[must_use]
    pub fn presence_predicate(mut self, phrase: &str) -> Self {
        self.lexicon.presence_predicates.insert(phrase, ());
        self
    }

    /// Finalizes the lexicon.
    pub fn build(self) -> Lexicon {
        Lexicon {
            verbs: self.lexicon.verbs,
            comparisons: self.lexicon.comparisons,
            states: self.lexicon.states,
            person_events: self.lexicon.person_events,
            broadcast_predicates: self.lexicon.broadcast_predicates,
            presence_predicates: self.lexicon.presence_predicates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::tokenize;

    #[test]
    fn phrase_map_prefers_longest_match() {
        let mut map = PhraseMap::new();
        map.insert("turn", 1);
        map.insert("turn on", 2);
        let tokens = tokenize("turn on the light").unwrap();
        let (len, v) = map.match_at(&tokens, 0).unwrap();
        assert_eq!((len, *v), (2, 2));
    }

    #[test]
    fn phrase_map_match_at_offsets() {
        let mut map = PhraseMap::new();
        map.insert("on air", true);
        let tokens = tokenize("a baseball game is on air").unwrap();
        assert!(map.match_at(&tokens, 0).is_none());
        let (len, _) = map.match_at(&tokens, 4).unwrap();
        assert_eq!(len, 2);
    }

    #[test]
    fn phrase_map_is_case_insensitive() {
        let mut map = PhraseMap::new();
        map.insert("Turn On", 1);
        assert!(map.get("turn on").is_some());
        assert!(map.get("TURN  ON").is_some());
    }

    #[test]
    fn english_lexicon_has_paper_verbs() {
        let lex = Lexicon::english();
        let tokens = tokenize("turn on the air conditioner").unwrap();
        let (len, verb) = lex.verbs().match_at(&tokens, 0).unwrap();
        assert_eq!(len, 2);
        assert_eq!(verb, &Verb::TurnOn);
        assert!(lex.verbs().get("record").is_some());
    }

    #[test]
    fn comparisons_cover_is_variants() {
        let lex = Lexicon::english();
        assert_eq!(lex.comparisons().get("is higher than"), Some(&RelOp::Gt));
        assert_eq!(lex.comparisons().get("higher than"), Some(&RelOp::Gt));
        assert_eq!(lex.comparisons().get("is over"), Some(&RelOp::Gt));
        assert_eq!(lex.comparisons().get("is under"), Some(&RelOp::Lt));
        assert_eq!(lex.comparisons().get("at least"), Some(&RelOp::Ge));
    }

    #[test]
    fn state_phrases_resolve() {
        let lex = Lexicon::english();
        assert_eq!(
            lex.states().get("is turned on"),
            Some(&StatePhrase::Bool {
                variable: "power".into(),
                value: true
            })
        );
        match lex.states().get("is dark") {
            Some(StatePhrase::Ambient { kind, op, .. }) => {
                assert_eq!(kind, "illuminance");
                assert_eq!(*op, RelOp::Lt);
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(
            lex.states().get("unlocked"),
            Some(&StatePhrase::Bool {
                variable: "locked".into(),
                value: false
            })
        );
    }

    #[test]
    fn person_events_present() {
        let lex = Lexicon::english();
        assert!(lex.person_events().get("returns home").is_some());
        assert!(lex.person_events().get("got home from work").is_some());
    }

    #[test]
    fn custom_lexicon_for_another_language() {
        // A miniature Japanese (romaji) CADEL — demonstrates §4.2's claim
        // that non-English versions are definable as data.
        let lex = Lexicon::builder()
            .verb("tsukete", Verb::TurnOn)
            .verb("keshite", Verb::TurnOff)
            .comparison("yori takai", RelOp::Gt)
            .presence_predicate("ni iru")
            .build();
        assert_eq!(lex.verbs().get("tsukete"), Some(&Verb::TurnOn));
        assert_eq!(lex.comparisons().get("yori takai"), Some(&RelOp::Gt));
        assert_eq!(lex.comparisons().get("is yori takai"), Some(&RelOp::Gt));
        assert!(lex.states().is_empty());
    }
}
