//! Errors of the CADEL front end.

use cadel_rule::RuleError;
use std::error::Error;
use std::fmt;

/// A syntax error with the token position where parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
    position: usize,
    near: String,
}

impl ParseError {
    pub(crate) fn new(
        message: impl Into<String>,
        position: usize,
        near: impl Into<String>,
    ) -> Self {
        ParseError {
            message: message.into(),
            position,
            near: near.into(),
        }
    }

    /// What the parser expected or rejected.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The index of the offending token.
    pub fn position(&self) -> usize {
        self.position
    }

    /// The text around the failure, for display to the user.
    pub fn near(&self) -> &str {
        &self.near
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.near.is_empty() {
            write!(f, "{} (at end of input)", self.message)
        } else {
            write!(
                f,
                "{} (near {:?}, token {})",
                self.message, self.near, self.position
            )
        }
    }
}

impl Error for ParseError {}

/// A semantic error raised while compiling a parsed sentence into a rule
/// object — typically a name that the environment cannot resolve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    message: String,
}

impl CompileError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        CompileError {
            message: message.into(),
        }
    }

    /// Description of the failure.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for CompileError {}

/// Any error the CADEL front end can produce.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LangError {
    /// Tokenization or parsing failed.
    Parse(ParseError),
    /// Name resolution or atom construction failed.
    Compile(CompileError),
    /// The rule layer rejected the compiled output.
    Rule(RuleError),
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Parse(e) => write!(f, "parse error: {e}"),
            LangError::Compile(e) => write!(f, "compile error: {e}"),
            LangError::Rule(e) => write!(f, "rule error: {e}"),
        }
    }
}

impl Error for LangError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LangError::Parse(e) => Some(e),
            LangError::Compile(e) => Some(e),
            LangError::Rule(e) => Some(e),
        }
    }
}

impl From<ParseError> for LangError {
    fn from(e: ParseError) -> Self {
        LangError::Parse(e)
    }
}

impl From<CompileError> for LangError {
    fn from(e: CompileError) -> Self {
        LangError::Compile(e)
    }
}

impl From<RuleError> for LangError {
    fn from(e: RuleError) -> Self {
        LangError::Rule(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_well_behaved() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ParseError>();
        assert_error::<CompileError>();
        assert_error::<LangError>();
    }

    #[test]
    fn parse_error_display_mentions_position() {
        let e = ParseError::new("expected a verb", 4, "banana");
        let s = e.to_string();
        assert!(s.contains("expected a verb"));
        assert!(s.contains("banana"));
        assert!(s.contains('4'));
        let eof = ParseError::new("unexpected end", 9, "");
        assert!(eof.to_string().contains("end of input"));
    }

    #[test]
    fn lang_error_sources() {
        let e = LangError::from(CompileError::new("unknown device"));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("unknown device"));
    }
}
