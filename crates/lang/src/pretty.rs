//! Rendering parsed CADEL back to text.
//!
//! The export half of paper §4.3(iv): a rule stored in the database can be
//! shown to (and customized by) another user as a CADEL sentence. The
//! renderer produces canonical English CADEL from the AST; round-tripping
//! `parse → render → parse` yields the same AST (tested below), so the
//! exported text is faithful.

use crate::ast::*;
use crate::lexicon::StatePhrase;
use cadel_simplex::RelOp;
use cadel_types::{SimDuration, TimeOfDay, Unit};
use std::fmt::Write as _;

/// Renders a parsed command as canonical CADEL text.
pub fn render_command(command: &Command) -> String {
    match command {
        Command::Rule(rule) => render_rule(rule),
        Command::CondDef(def) => format!(
            "Let's call the condition that {} {}",
            render_expr(&def.expr),
            def.word
        ),
        Command::ConfDef(def) => format!(
            "Let's call the configuration that {} {}",
            render_settings(&def.settings),
            def.word
        ),
    }
}

/// Renders a rule sentence.
pub fn render_rule(rule: &RuleSentence) -> String {
    let mut out = String::new();
    if let Some(pre) = &rule.pre {
        let _ = write!(out, "{}, ", render_clause(pre, true));
    }
    let _ = write!(out, "{}", verb_phrase(rule));
    if !rule.config.is_empty() {
        let _ = write!(out, " with {}", render_settings(&rule.config));
    }
    if let Some(post) = &rule.post {
        let _ = write!(out, " {}", render_clause(post, false));
    }
    if let Some(until) = &rule.until {
        if let Some(TimeSpecAst::Before(p)) = until.time.first() {
            let _ = write!(out, " until {}", render_point(p));
        } else if let Some(expr) = &until.expr {
            let _ = write!(out, " until {}", render_expr(expr));
        }
    }
    out.push('.');
    out
}

fn verb_phrase(rule: &RuleSentence) -> String {
    match &rule.content {
        Some(content) => format!(
            "{} {} on the {}",
            rule.verb.phrase(),
            content.join(" "),
            render_object(&rule.object)
        ),
        None => format!("{} the {}", rule.verb.phrase(), render_object(&rule.object)),
    }
}

fn render_object(object: &ObjectPhrase) -> String {
    match &object.location {
        Some(loc) => format!("{} at the {}", object.name.join(" "), loc.join(" ")),
        None => object.name.join(" "),
    }
}

fn render_clause(clause: &CondClause, leading: bool) -> String {
    let mut parts: Vec<String> = clause.time.iter().map(render_time_spec).collect();
    if let Some(expr) = &clause.expr {
        let keyword = if leading { "if" } else { "when" };
        parts.push(format!("{keyword} {}", render_expr(expr)));
    }
    parts.join(", ")
}

fn render_expr(expr: &CondExprAst) -> String {
    match expr {
        CondExprAst::Or(terms) => terms
            .iter()
            .map(render_or_term)
            .collect::<Vec<_>>()
            .join(" or "),
        CondExprAst::And(terms) => terms
            .iter()
            .map(render_and_term)
            .collect::<Vec<_>>()
            .join(" and "),
        CondExprAst::Leaf(cond) => render_cond(cond),
    }
}

fn render_or_term(term: &CondExprAst) -> String {
    render_expr(term)
}

fn render_and_term(term: &CondExprAst) -> String {
    match term {
        // Nested disjunctions need parentheses to survive a round trip.
        CondExprAst::Or(_) => format!("({})", render_expr(term)),
        other => render_expr(other),
    }
}

fn render_cond(cond: &CondAst) -> String {
    let mut out = match &cond.kind {
        CondKind::Compare {
            subject,
            op,
            quantity,
        } => format!(
            "{} {} {}",
            render_subject(subject),
            comparison_phrase(*op),
            render_quantity(quantity)
        ),
        CondKind::State { subject, state } => {
            format!("{} {}", render_subject(subject), state_phrase(state))
        }
        CondKind::Presence { who, place } => {
            format!("{} is at the {}", render_who(who), place.join(" "))
        }
        CondKind::PersonEvent { who, event } => {
            format!("{} {}", render_who(who), event)
        }
        CondKind::Broadcast { program } => format!("{} is on air", program.join(" ")),
        CondKind::UserWord(word) => word.clone(),
    };
    if let Some(period) = cond.period {
        let _ = write!(out, " for {}", render_duration(period));
    }
    if let Some(time) = &cond.time {
        let _ = write!(out, " {}", render_time_spec(time));
    }
    out
}

fn render_who(who: &PresenceSubject) -> String {
    match who {
        PresenceSubject::Me => "I".to_owned(),
        PresenceSubject::Named(name) => name.join(" "),
        PresenceSubject::Somebody => "someone".to_owned(),
        PresenceSubject::Nobody => "nobody".to_owned(),
    }
}

fn render_subject(subject: &SubjectPhrase) -> String {
    match &subject.location {
        Some(loc) => format!("the {} at the {}", subject.name.join(" "), loc.join(" ")),
        None => format!("the {}", subject.name.join(" ")),
    }
}

fn comparison_phrase(op: RelOp) -> &'static str {
    match op {
        RelOp::Gt => "is higher than",
        RelOp::Lt => "is lower than",
        RelOp::Ge => "is at least",
        RelOp::Le => "is at most",
        RelOp::Eq => "is exactly",
    }
}

fn state_phrase(state: &StatePhrase) -> String {
    match state {
        StatePhrase::Bool { variable, value } => match (variable.as_str(), value) {
            ("power", true) => "is turned on".to_owned(),
            ("power", false) => "is turned off".to_owned(),
            ("locked", true) => "is locked".to_owned(),
            ("locked", false) => "is unlocked".to_owned(),
            ("open", true) => "is open".to_owned(),
            ("open", false) => "is closed".to_owned(),
            (var, v) => format!("is {var}={v}"),
        },
        StatePhrase::Ambient { kind, op, .. } => match (kind.as_str(), op) {
            ("illuminance", RelOp::Lt) => "is dark".to_owned(),
            ("illuminance", RelOp::Gt) => "is bright".to_owned(),
            ("noise", RelOp::Lt) => "is quiet".to_owned(),
            ("noise", RelOp::Gt) => "is noisy".to_owned(),
            (kind, op) => format!("is {kind} {op}"),
        },
    }
}

fn render_quantity(q: &QuantityAst) -> String {
    match q.unit {
        Some(Unit::Celsius) => format!("{} degrees", q.value),
        Some(Unit::Fahrenheit) => format!("{} degrees fahrenheit", q.value),
        Some(Unit::Percent) => format!("{} percent", q.value),
        Some(Unit::Lux) => format!("{} lux", q.value),
        Some(Unit::Decibel) => format!("{} decibels", q.value),
        Some(Unit::Seconds) => format!("{} seconds", q.value),
        _ => q.value.to_string(),
    }
}

fn render_settings(settings: &[SettingAst]) -> String {
    settings
        .iter()
        .map(|s| match s {
            SettingAst::Explicit { parameter, value } => {
                let value = match value {
                    SettingValueAst::Quantity(q) => render_quantity(q),
                    SettingValueAst::Word(words) => words.join(" "),
                };
                format!("{} of {} setting", value, parameter.join(" "))
            }
            SettingAst::UserWord(word) => word.clone(),
        })
        .collect::<Vec<_>>()
        .join(" and ")
}

fn render_time_spec(spec: &TimeSpecAst) -> String {
    match spec {
        TimeSpecAst::After(p) => format!("after {}", render_point(p)),
        TimeSpecAst::Before(p) => format!("before {}", render_point(p)),
        TimeSpecAst::At(p) => format!("at {}", render_point(p)),
        TimeSpecAst::Between(a, b) => {
            format!("from {} to {}", render_point(a), render_point(b))
        }
        TimeSpecAst::During(part) => format!("in {}", format!("{part:?}").to_lowercase()),
        TimeSpecAst::Every(day) => format!("every {}", format!("{day:?}").to_lowercase()),
        TimeSpecAst::On(date) => {
            let month = [
                "january",
                "february",
                "march",
                "april",
                "may",
                "june",
                "july",
                "august",
                "september",
                "october",
                "november",
                "december",
            ][(date.month() - 1) as usize];
            format!("on {month} {} {}", date.day(), date.year())
        }
    }
}

fn render_point(p: &TimePointAst) -> String {
    match p {
        TimePointAst::Clock(t) if *t == TimeOfDay::NOON => "noon".to_owned(),
        TimePointAst::Clock(t) if *t == TimeOfDay::MIDNIGHT => "midnight".to_owned(),
        TimePointAst::Clock(t) => format!("{}:{:02}", t.hour(), t.minute()),
        TimePointAst::DayPart(part) => format!("{part:?}").to_lowercase(),
    }
}

fn render_duration(d: SimDuration) -> String {
    let minutes = d.as_minutes();
    if minutes >= 60 && minutes.is_multiple_of(60) {
        let hours = minutes / 60;
        format!("{hours} {}", if hours == 1 { "hour" } else { "hours" })
    } else if minutes > 0 {
        format!(
            "{minutes} {}",
            if minutes == 1 { "minute" } else { "minutes" }
        )
    } else {
        format!("{} seconds", d.as_secs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dictionary::Dictionary;
    use crate::lexicon::Lexicon;
    use crate::parser::parse_command;

    /// parse → render → parse must be a fixed point.
    fn assert_round_trip(sentence: &str) {
        let lexicon = Lexicon::english();
        let mut dictionary = Dictionary::new();
        dictionary.define_condition(
            "hot and stuffy",
            CondExprAst::Leaf(CondAst {
                kind: CondKind::UserWord("hot and stuffy".into()),
                period: None,
                time: None,
            }),
        );
        let first = parse_command(sentence, &lexicon, &dictionary)
            .unwrap_or_else(|e| panic!("{sentence:?} failed to parse: {e}"));
        let rendered = render_command(&first);
        let second = parse_command(&rendered, &lexicon, &dictionary)
            .unwrap_or_else(|e| panic!("rendered {rendered:?} failed to parse: {e}"));
        assert_eq!(first, second, "round trip changed the AST via {rendered:?}");
    }

    #[test]
    fn round_trips_paper_examples() {
        assert_round_trip(
            "If humidity is higher than 80 percent and temperature is higher than \
             28 degrees, turn on the air conditioner with 25 degrees of temperature setting.",
        );
        assert_round_trip(
            "After evening, if someone returns home and the hall is dark, \
             turn on the light at the hall.",
        );
        assert_round_trip("At night, if entrance door is unlocked for 1 hour, turn on the alarm.");
    }

    #[test]
    fn round_trips_content_and_until_forms() {
        assert_round_trip("When I'm in the living room in evening, play jazz music on the stereo.");
        assert_round_trip("Turn on the light at the hall until 10 pm.");
        assert_round_trip("Play jazz music on the stereo until Alan returns home.");
    }

    #[test]
    fn round_trips_time_specs() {
        assert_round_trip("Every monday at 8 pm, turn on the TV with 4 of channel setting.");
        assert_round_trip("On june 6 2005, turn on the TV.");
        assert_round_trip("From 9 am to 5 pm, turn off the stereo.");
        assert_round_trip("At 18:30, turn on the light at the hall.");
    }

    #[test]
    fn round_trips_disjunctions_with_parentheses() {
        assert_round_trip(
            "If (temperature is higher than 30 degrees or humidity is over 80 percent) \
             and the TV is turned off, turn on the fan.",
        );
    }

    #[test]
    fn round_trips_word_definitions() {
        assert_round_trip(
            "Let's call the condition that humidity is higher than 60 percent and \
             temperature is higher than 28 degrees muggy",
        );
        assert_round_trip(
            "Let's call the configuration that 50 percent of brightness setting half lighting",
        );
    }

    #[test]
    fn round_trips_user_words_in_rules() {
        assert_round_trip(
            "If hot and stuffy, turn on the air conditioner with 25 degrees of \
             temperature setting.",
        );
    }

    #[test]
    fn rendering_is_stable() {
        // render(parse(render(x))) == render(x): canonical form is fixed.
        let lexicon = Lexicon::english();
        let dictionary = Dictionary::new();
        let sentence = "After evening, if someone returns home and the hall is dark, \
                        turn on the light at the hall.";
        let once = render_command(&parse_command(sentence, &lexicon, &dictionary).unwrap());
        let twice = render_command(&parse_command(&once, &lexicon, &dictionary).unwrap());
        assert_eq!(once, twice);
    }
}
