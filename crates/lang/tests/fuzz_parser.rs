//! Robustness: the CADEL front end must never panic, whatever the input —
//! users type sentences, and a typo must surface as a positioned
//! [`ParseError`](cadel_lang::ParseError), not a crash.

// Requires the `proptest` feature (and its dev-dependency); the default
// build is offline and compiles this file to nothing.
#![cfg(feature = "proptest")]

use cadel_lang::{parse_command, Dictionary, Lexicon};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary Unicode soup: parse returns Ok or Err, never panics.
    #[test]
    fn parser_never_panics_on_arbitrary_input(input in ".{0,200}") {
        let lexicon = Lexicon::english();
        let dictionary = Dictionary::new();
        let _ = parse_command(&input, &lexicon, &dictionary);
    }

    /// Word salad from the grammar's own vocabulary — the adversarial
    /// case, since every token is meaningful somewhere.
    #[test]
    fn parser_never_panics_on_keyword_salad(
        words in proptest::collection::vec(
            prop_oneof![
                Just("if"), Just("when"), Just("then"), Just("and"), Just("or"),
                Just("turn"), Just("on"), Just("off"), Just("the"), Just("a"),
                Just("is"), Just("higher"), Just("than"), Just("at"), Just("in"),
                Just("for"), Just("with"), Just("of"), Just("setting"), Just("until"),
                Just("after"), Just("every"), Just("percent"), Just("degrees"),
                Just("28"), Just("60"), Just("pm"), Just("night"), Just("evening"),
                Just("someone"), Just("nobody"), Just("returns"), Just("home"),
                Just("dark"), Just("unlocked"), Just("let"), Just("us"), Just("call"),
                Just("that"), Just("condition"), Just("configuration"), Just(","),
                Just("."), Just("("), Just(")"),
            ],
            0..25,
        )
    ) {
        let input = words.join(" ");
        let lexicon = Lexicon::english();
        let dictionary = Dictionary::new();
        let _ = parse_command(&input, &lexicon, &dictionary);
    }

    /// Truncations of a valid sentence: every prefix parses or errors
    /// cleanly (the interactive-editing case).
    #[test]
    fn parser_never_panics_on_truncated_sentences(cut in 0usize..160) {
        let sentence = "If humidity is higher than 80 percent and temperature is \
                        higher than 28 degrees, turn on the air conditioner with \
                        25 degrees of temperature setting.";
        let cut = cut.min(sentence.len());
        // Stay on a char boundary (ASCII here, but be safe).
        let mut end = cut;
        while !sentence.is_char_boundary(end) {
            end -= 1;
        }
        let lexicon = Lexicon::english();
        let dictionary = Dictionary::new();
        let _ = parse_command(&sentence[..end], &lexicon, &dictionary);
    }
}
