//! A tiny deterministic PRNG for tests and benchmarks.
//!
//! The workspace builds offline with no external crates, so randomized
//! tests and benchmark workload generation use this SplitMix64 generator
//! (Steele, Lea & Flood, OOPSLA 2014) instead of the `rand` crate. It is
//! deterministic by construction: the same seed always produces the same
//! sequence, which keeps failures reproducible.

/// A SplitMix64 pseudo-random generator.
///
/// # Example
///
/// ```
/// use cadel_types::Rng;
///
/// let mut rng = Rng::new(42);
/// let a = rng.next_u64();
/// let b = rng.next_u64();
/// assert_ne!(a, b);
/// assert_eq!(Rng::new(42).next_u64(), a); // reproducible
/// ```
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniformly distributed value in `[0, bound)`; 0 when `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// A uniformly distributed value in `[lo, hi]` (inclusive).
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi as i128 - lo as i128 + 1) as u64;
        lo.wrapping_add(self.below(span) as i64)
    }

    /// A random boolean, true with probability `numer / denom`.
    pub fn chance(&mut self, numer: u64, denom: u64) -> bool {
        self.below(denom) < numer
    }

    /// Picks a random element of a slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Rng::new(1);
        for _ in 0..1000 {
            assert!(rng.below(10) < 10);
        }
        assert_eq!(rng.below(0), 0);
        assert_eq!(rng.below(1), 0);
    }

    #[test]
    fn range_covers_endpoints() {
        let mut rng = Rng::new(3);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = rng.range_i64(-2, 2);
            assert!((-2..=2).contains(&v));
            seen_lo |= v == -2;
            seen_hi |= v == 2;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn pick_returns_member() {
        let mut rng = Rng::new(9);
        let items = ["a", "b", "c"];
        for _ in 0..50 {
            assert!(items.contains(rng.pick(&items)));
        }
    }
}
