//! Dynamic values observed from sensors and device state variables.

use crate::{PlaceId, Quantity, TimeOfDay};
use std::fmt;

/// A value carried by a sensor reading, device state variable or event
/// payload.
///
/// The context store in `cadel-engine` maps every
/// [`SensorKey`](crate::SensorKey) to its latest `Value`; condition atoms
/// then compare these against rule thresholds.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum Value {
    /// A numeric reading with unit (temperature, humidity, volume, …).
    Number(Quantity),
    /// A boolean state (power on/off, door locked, …).
    Bool(bool),
    /// Free text (current TV program title, mode names, …).
    Text(String),
    /// A place (where a person currently is).
    Place(PlaceId),
    /// A wall-clock time of day.
    Time(TimeOfDay),
}

/// The coarse type of a [`Value`], used in error messages and in device
/// state-variable declarations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum ValueKind {
    /// [`Value::Number`].
    Number,
    /// [`Value::Bool`].
    Bool,
    /// [`Value::Text`].
    Text,
    /// [`Value::Place`].
    Place,
    /// [`Value::Time`].
    Time,
}

impl Value {
    /// The kind of this value.
    pub fn kind(&self) -> ValueKind {
        match self {
            Value::Number(_) => ValueKind::Number,
            Value::Bool(_) => ValueKind::Bool,
            Value::Text(_) => ValueKind::Text,
            Value::Place(_) => ValueKind::Place,
            Value::Time(_) => ValueKind::Time,
        }
    }

    /// The numeric quantity, if this is a number.
    pub fn as_number(&self) -> Option<&Quantity> {
        match self {
            Value::Number(q) => Some(q),
            _ => None,
        }
    }

    /// The boolean, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The text, if this is text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(t) => Some(t),
            _ => None,
        }
    }

    /// The place, if this is a place.
    pub fn as_place(&self) -> Option<&PlaceId> {
        match self {
            Value::Place(p) => Some(p),
            _ => None,
        }
    }

    /// The time of day, if this is a time.
    pub fn as_time(&self) -> Option<TimeOfDay> {
        match self {
            Value::Time(t) => Some(*t),
            _ => None,
        }
    }

    /// Case-insensitive text equality — "Baseball Game" matches
    /// "baseball game". Non-text values return `false`.
    pub fn text_matches(&self, other: &str) -> bool {
        self.as_text()
            .map(|t| t.eq_ignore_ascii_case(other.trim()))
            .unwrap_or(false)
    }
}

impl From<Quantity> for Value {
    fn from(q: Quantity) -> Self {
        Value::Number(q)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

impl From<PlaceId> for Value {
    fn from(p: PlaceId) -> Self {
        Value::Place(p)
    }
}

impl From<TimeOfDay> for Value {
    fn from(t: TimeOfDay) -> Self {
        Value::Time(t)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Number(q) => write!(f, "{q}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Text(t) => write!(f, "{t:?}"),
            Value::Place(p) => write!(f, "@{p}"),
            Value::Time(t) => write!(f, "{t}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Unit;

    #[test]
    fn accessors_are_type_safe() {
        let v = Value::Number(Quantity::from_integer(25, Unit::Celsius));
        assert!(v.as_number().is_some());
        assert!(v.as_bool().is_none());
        assert_eq!(v.kind(), ValueKind::Number);

        let v = Value::Bool(true);
        assert_eq!(v.as_bool(), Some(true));
        assert_eq!(v.kind(), ValueKind::Bool);
    }

    #[test]
    fn text_matching_is_case_insensitive() {
        let v = Value::from("Baseball Game");
        assert!(v.text_matches("baseball game"));
        assert!(v.text_matches("  BASEBALL GAME "));
        assert!(!v.text_matches("movie"));
        assert!(!Value::Bool(true).text_matches("true"));
    }

    #[test]
    fn conversions_via_from() {
        assert_eq!(Value::from(true).kind(), ValueKind::Bool);
        assert_eq!(Value::from("tv").kind(), ValueKind::Text);
        assert_eq!(Value::from(PlaceId::new("hall")).kind(), ValueKind::Place);
        assert_eq!(
            Value::from(TimeOfDay::hm(9, 0).unwrap()).kind(),
            ValueKind::Time
        );
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(
            Value::Number(Quantity::from_integer(60, Unit::Percent)).to_string(),
            "60%"
        );
        assert_eq!(Value::from(PlaceId::new("hall")).to_string(), "@hall");
    }

    #[test]
    #[cfg(feature = "serde")]
    fn serde_round_trip() {
        let vals = [
            Value::Number(Quantity::from_integer(25, Unit::Celsius)),
            Value::Bool(false),
            Value::from("jazz"),
            Value::from(PlaceId::new("living room")),
        ];
        for v in vals {
            let json = serde_json::to_string(&v).unwrap();
            assert_eq!(serde_json::from_str::<Value>(&json).unwrap(), v);
        }
    }
}
