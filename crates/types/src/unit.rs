//! Physical units understood by CADEL rules.

use crate::Rational;
use std::fmt;

/// The unit attached to a [`crate::Quantity`].
///
/// CADEL's grammar mentions temperatures (Celsius and Fahrenheit) and
/// percentages explicitly; the remaining units cover the sensors shipped in
/// `cadel-devices` (illuminance, loudness, elapsed time, counts).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
#[derive(Default)]
pub enum Unit {
    /// Degrees Celsius.
    Celsius,
    /// Degrees Fahrenheit.
    Fahrenheit,
    /// Percentage (relative humidity, brightness, volume, …).
    Percent,
    /// Illuminance in lux.
    Lux,
    /// Sound level in decibels.
    Decibel,
    /// Elapsed time in seconds.
    Seconds,
    /// A dimensionless count (channel numbers, number of people, …).
    Count,
    /// No unit information.
    #[default]
    Unitless,
}

/// The physical dimension a unit measures. Quantities are only comparable
/// when their dimensions match.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum Dimension {
    /// Temperature.
    Temperature,
    /// A ratio in percent.
    Ratio,
    /// Illuminance.
    Illuminance,
    /// Sound level.
    SoundLevel,
    /// Elapsed time.
    Time,
    /// Dimensionless numbers.
    Dimensionless,
}

impl Unit {
    /// The dimension this unit measures.
    pub fn dimension(self) -> Dimension {
        match self {
            Unit::Celsius | Unit::Fahrenheit => Dimension::Temperature,
            Unit::Percent => Dimension::Ratio,
            Unit::Lux => Dimension::Illuminance,
            Unit::Decibel => Dimension::SoundLevel,
            Unit::Seconds => Dimension::Time,
            Unit::Count | Unit::Unitless => Dimension::Dimensionless,
        }
    }

    /// The canonical unit used when comparing quantities of this unit's
    /// dimension (Celsius for temperatures, and otherwise the unit itself).
    pub fn canonical(self) -> Unit {
        match self {
            Unit::Fahrenheit => Unit::Celsius,
            Unit::Count => Unit::Unitless,
            other => other,
        }
    }

    /// Converts a value expressed in `self` to the canonical unit of its
    /// dimension.
    pub fn to_canonical(self, value: Rational) -> Rational {
        match self {
            // C = (F - 32) * 5/9, exact in rationals.
            Unit::Fahrenheit => (value - Rational::from_integer(32)) * Rational::new(5, 9),
            _ => value,
        }
    }

    /// Converts a value expressed in the canonical unit back to `self`.
    pub fn from_canonical(self, value: Rational) -> Rational {
        match self {
            Unit::Fahrenheit => value * Rational::new(9, 5) + Rational::from_integer(32),
            _ => value,
        }
    }

    /// The conventional symbol used when displaying quantities.
    pub fn symbol(self) -> &'static str {
        match self {
            Unit::Celsius => "°C",
            Unit::Fahrenheit => "°F",
            Unit::Percent => "%",
            Unit::Lux => "lx",
            Unit::Decibel => "dB",
            Unit::Seconds => "s",
            Unit::Count => "",
            Unit::Unitless => "",
        }
    }

    /// Parses the unit words accepted by the CADEL grammar
    /// (`degrees`, `degrees Celsius`, `percent`, …). Returns `None` for
    /// unknown words. Matching is case-insensitive.
    pub fn from_word(word: &str) -> Option<Unit> {
        match word.to_ascii_lowercase().as_str() {
            "degrees" | "degree" | "celsius" | "c" | "°c" => Some(Unit::Celsius),
            "fahrenheit" | "f" | "°f" => Some(Unit::Fahrenheit),
            "percent" | "%" => Some(Unit::Percent),
            "lux" | "lx" => Some(Unit::Lux),
            "decibels" | "decibel" | "db" => Some(Unit::Decibel),
            "seconds" | "second" | "s" => Some(Unit::Seconds),
            _ => None,
        }
    }
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fahrenheit_converts_exactly() {
        let f = Rational::from_integer(77);
        assert_eq!(Unit::Fahrenheit.to_canonical(f), Rational::from_integer(25));
        let c = Rational::from_integer(25);
        assert_eq!(
            Unit::Fahrenheit.from_canonical(c),
            Rational::from_integer(77)
        );
    }

    #[test]
    fn conversion_round_trips() {
        let v = Rational::new(987, 10);
        let canon = Unit::Fahrenheit.to_canonical(v);
        assert_eq!(Unit::Fahrenheit.from_canonical(canon), v);
    }

    #[test]
    fn dimensions_partition_units() {
        assert_eq!(Unit::Celsius.dimension(), Unit::Fahrenheit.dimension());
        assert_ne!(Unit::Celsius.dimension(), Unit::Percent.dimension());
        assert_eq!(Unit::Count.dimension(), Unit::Unitless.dimension());
    }

    #[test]
    fn canonical_is_idempotent() {
        for u in [
            Unit::Celsius,
            Unit::Fahrenheit,
            Unit::Percent,
            Unit::Lux,
            Unit::Decibel,
            Unit::Seconds,
            Unit::Count,
            Unit::Unitless,
        ] {
            assert_eq!(u.canonical().canonical(), u.canonical());
        }
    }

    #[test]
    fn word_parsing_is_case_insensitive() {
        assert_eq!(Unit::from_word("Degrees"), Some(Unit::Celsius));
        assert_eq!(Unit::from_word("FAHRENHEIT"), Some(Unit::Fahrenheit));
        assert_eq!(Unit::from_word("percent"), Some(Unit::Percent));
        assert_eq!(Unit::from_word("martian"), None);
    }
}
