//! Core domain types for the CADEL context-aware computing framework.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: exact rational numbers ([`Rational`]), physical quantities with
//! units ([`Quantity`], [`Unit`]), wall-clock and simulated time
//! ([`TimeOfDay`], [`SimTime`], [`TimeWindow`]), the home topology
//! ([`Topology`], [`PlaceId`]), identifiers for users, devices, sensors and
//! rules, and the dynamic [`Value`] type observed from sensors.
//!
//! The types here deliberately contain no behaviour specific to rule
//! parsing, conflict checking or device simulation — those live in the
//! downstream crates (`cadel-lang`, `cadel-conflict`, `cadel-devices`).
//!
//! # Example
//!
//! ```
//! use cadel_types::{Quantity, Unit, Rational};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let setpoint: Quantity = "25 degrees".parse()?;
//! let limit = Quantity::new(Rational::from_integer(86), Unit::Fahrenheit);
//! // Comparisons convert units where a canonical conversion exists: 86°F = 30°C.
//! assert!(setpoint < limit);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod id;
pub mod json;
pub mod location;
pub mod quantity;
pub mod rational;
pub mod rng;
pub mod time;
pub mod unit;
pub mod value;

pub use error::{ParseQuantityError, ParseRationalError, ParseTimeError, TopologyError};
pub use id::{DeviceId, PersonId, RuleId, SensorKey, ServiceId, UserDefinedWord};
pub use location::{LocationSelector, PlaceId, PlaceKind, Topology};
pub use quantity::Quantity;
pub use rational::Rational;
pub use rng::Rng;
pub use time::{Date, DayPart, SimDuration, SimTime, TimeOfDay, TimeWindow, Weekday};
pub use unit::Unit;
pub use value::{Value, ValueKind};
