//! Identifier newtypes.
//!
//! Every entity in the framework — people, devices, services, rules,
//! sensor-observable variables and user-defined vocabulary words — gets a
//! distinct newtype so identifiers cannot be mixed up across subsystems
//! (C-NEWTYPE).

use std::fmt;

macro_rules! string_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize), serde(transparent))]
        pub struct $name(String);

        impl $name {
            /// Creates a new identifier from any string-like value.
            pub fn new(value: impl Into<String>) -> Self {
                $name(value.into())
            }

            /// The identifier as a string slice.
            pub fn as_str(&self) -> &str {
                &self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:?})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl From<&str> for $name {
            fn from(value: &str) -> Self {
                $name(value.to_owned())
            }
        }

        impl From<String> for $name {
            fn from(value: String) -> Self {
                $name(value)
            }
        }

        impl AsRef<str> for $name {
            fn as_ref(&self) -> &str {
                &self.0
            }
        }
    };
}

string_id! {
    /// Identifies a person (home occupant) — in the paper, the holder of an
    /// RFID tag ("Tom", "Alan", "Emily").
    PersonId
}

string_id! {
    /// Identifies a concrete device instance. In the UPnP substrate this is
    /// the device's UDN; friendly names map to it through the registry.
    DeviceId
}

string_id! {
    /// Identifies a service hosted by a device (UPnP service id).
    ServiceId
}

string_id! {
    /// A word a user defined through CADEL's `<CondDef>` / `<ConfDef>`
    /// ("hot and stuffy", "half-lighting"). Stored lower-cased by the
    /// dictionary so lookups are case-insensitive.
    UserDefinedWord
}

/// Identifies a registered rule. Allocated sequentially by the rule
/// database.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(
    feature = "serde",
    derive(serde::Serialize, serde::Deserialize),
    serde(transparent)
)]
pub struct RuleId(u64);

impl RuleId {
    /// Creates a rule id from its raw integer.
    pub const fn new(raw: u64) -> RuleId {
        RuleId(raw)
    }

    /// The raw integer value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The next sequential id.
    pub const fn next(self) -> RuleId {
        RuleId(self.0 + 1)
    }
}

impl fmt::Debug for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RuleId({})", self.0)
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule#{}", self.0)
    }
}

/// A sensor-observable variable: a `(device, variable)` pair such as
/// `(thermometer-livingroom, temperature)`.
///
/// Conditions in rule objects constrain `SensorKey`s; the engine's context
/// store maps each key to its latest [`crate::Value`].
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SensorKey {
    device: DeviceId,
    variable: String,
}

impl SensorKey {
    /// Creates a sensor key for `variable` exposed by `device`.
    pub fn new(device: DeviceId, variable: impl Into<String>) -> SensorKey {
        SensorKey {
            device,
            variable: variable.into(),
        }
    }

    /// The device exposing the variable.
    pub fn device(&self) -> &DeviceId {
        &self.device
    }

    /// The variable name within the device.
    pub fn variable(&self) -> &str {
        &self.variable
    }
}

impl fmt::Debug for SensorKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SensorKey({}.{})", self.device, self.variable)
    }
}

impl fmt::Display for SensorKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.device, self.variable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn string_ids_compare_by_content() {
        assert_eq!(PersonId::new("tom"), PersonId::from("tom"));
        assert_ne!(PersonId::new("tom"), PersonId::new("alan"));
    }

    #[test]
    fn ids_are_hashable() {
        let mut set = HashSet::new();
        set.insert(DeviceId::new("tv"));
        set.insert(DeviceId::new("tv"));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn rule_id_sequencing() {
        let id = RuleId::new(7);
        assert_eq!(id.next().raw(), 8);
        assert_eq!(id.to_string(), "rule#7");
    }

    #[test]
    fn sensor_key_accessors() {
        let key = SensorKey::new(DeviceId::new("thermo-1"), "temperature");
        assert_eq!(key.device().as_str(), "thermo-1");
        assert_eq!(key.variable(), "temperature");
        assert_eq!(key.to_string(), "thermo-1.temperature");
    }

    #[test]
    #[cfg(feature = "serde")]
    fn serde_round_trip() {
        let key = SensorKey::new(DeviceId::new("hygro"), "humidity");
        let json = serde_json::to_string(&key).unwrap();
        assert_eq!(serde_json::from_str::<SensorKey>(&json).unwrap(), key);
        let id = PersonId::new("emily");
        let json = serde_json::to_string(&id).unwrap();
        assert_eq!(json, "\"emily\"");
    }

    #[test]
    fn debug_is_never_empty() {
        assert!(!format!("{:?}", DeviceId::new("")).is_empty());
        assert!(!format!("{:?}", RuleId::default()).is_empty());
    }
}
