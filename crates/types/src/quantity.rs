//! Quantities: exact numeric values paired with a [`Unit`].

use crate::error::ParseQuantityError;
use crate::unit::Dimension;
use crate::{Rational, Unit};
use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// An exact numeric value with a unit, e.g. `25 °C`, `60 %`, `500 lx`.
///
/// Quantities of the same [`Dimension`] compare by converting both sides to
/// the dimension's canonical unit (Celsius for temperatures), so
/// `77 °F == 25 °C` holds exactly.
///
/// # Example
///
/// ```
/// use cadel_types::{Quantity, Unit, Rational};
///
/// let c = Quantity::new(Rational::from_integer(25), Unit::Celsius);
/// let f: Quantity = "77 fahrenheit".parse().unwrap();
/// assert_eq!(c, f);
/// ```
#[derive(Clone, Copy, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Quantity {
    value: Rational,
    unit: Unit,
}

impl Quantity {
    /// Creates a quantity from an exact value and unit.
    pub fn new(value: Rational, unit: Unit) -> Quantity {
        Quantity { value, unit }
    }

    /// Convenience constructor for integer-valued quantities.
    pub fn from_integer(value: i64, unit: Unit) -> Quantity {
        Quantity::new(Rational::from_integer(value), unit)
    }

    /// A dimensionless quantity.
    pub fn unitless(value: Rational) -> Quantity {
        Quantity::new(value, Unit::Unitless)
    }

    /// The numeric value in the quantity's own unit.
    pub fn value(&self) -> Rational {
        self.value
    }

    /// The quantity's unit.
    pub fn unit(&self) -> Unit {
        self.unit
    }

    /// The dimension of the quantity's unit.
    pub fn dimension(&self) -> Dimension {
        self.unit.dimension()
    }

    /// The value converted to the canonical unit of its dimension
    /// (temperatures in Celsius). This is the representation used by the
    /// constraint solver so that Fahrenheit and Celsius thresholds land in
    /// one coordinate system.
    pub fn canonical_value(&self) -> Rational {
        self.unit.to_canonical(self.value)
    }

    /// Converts to another unit of the same dimension.
    ///
    /// Returns `None` when the dimensions differ.
    pub fn to_unit(&self, unit: Unit) -> Option<Quantity> {
        if self.dimension() != unit.dimension() {
            return None;
        }
        Some(Quantity::new(
            unit.from_canonical(self.canonical_value()),
            unit,
        ))
    }

    /// Whether two quantities can be compared (same dimension).
    pub fn is_comparable_to(&self, other: &Quantity) -> bool {
        self.dimension() == other.dimension()
    }

    /// Approximate `f64` value in the quantity's own unit (simulation and
    /// display only).
    pub fn to_f64(&self) -> f64 {
        self.value.to_f64()
    }
}

impl PartialEq for Quantity {
    fn eq(&self, other: &Quantity) -> bool {
        self.is_comparable_to(other) && self.canonical_value() == other.canonical_value()
    }
}

impl Eq for Quantity {}

impl PartialOrd for Quantity {
    /// Quantities of different dimensions are incomparable and return
    /// `None`.
    fn partial_cmp(&self, other: &Quantity) -> Option<Ordering> {
        if !self.is_comparable_to(other) {
            return None;
        }
        Some(self.canonical_value().cmp(&other.canonical_value()))
    }
}

impl fmt::Display for Quantity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let symbol = self.unit.symbol();
        if symbol.is_empty() {
            write!(f, "{}", self.value)
        } else {
            write!(f, "{}{}", self.value, symbol)
        }
    }
}

impl FromStr for Quantity {
    type Err = ParseQuantityError;

    /// Parses `"25 degrees"`, `"77 fahrenheit"`, `"60 percent"`, `"25°C"`,
    /// or a bare number (unitless).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() {
            return Err(ParseQuantityError::new(s, "empty input"));
        }
        // Try "number unit-word(s)" split on first whitespace.
        if let Some((num, rest)) = s.split_once(char::is_whitespace) {
            let value: Rational = num
                .parse()
                .map_err(|_| ParseQuantityError::new(s, "invalid number"))?;
            let rest = rest.trim();
            // "degrees Celsius" / "degrees Fahrenheit" two-word forms.
            let unit = match rest.to_ascii_lowercase().as_str() {
                "degrees celsius" | "degree celsius" => Unit::Celsius,
                "degrees fahrenheit" | "degree fahrenheit" => Unit::Fahrenheit,
                other => Unit::from_word(other)
                    .ok_or_else(|| ParseQuantityError::new(s, "unknown unit"))?,
            };
            return Ok(Quantity::new(value, unit));
        }
        // Suffixed symbol forms like "25°C" / "60%".
        for (suffix, unit) in [
            ("°c", Unit::Celsius),
            ("°f", Unit::Fahrenheit),
            ("%", Unit::Percent),
            ("lx", Unit::Lux),
            ("db", Unit::Decibel),
        ] {
            let lower = s.to_ascii_lowercase();
            if let Some(num) = lower.strip_suffix(suffix) {
                let value: Rational = num
                    .trim()
                    .parse()
                    .map_err(|_| ParseQuantityError::new(s, "invalid number"))?;
                return Ok(Quantity::new(value, unit));
            }
        }
        let value: Rational = s
            .parse()
            .map_err(|_| ParseQuantityError::new(s, "invalid number"))?;
        Ok(Quantity::unitless(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn cross_unit_equality() {
        let c = Quantity::from_integer(25, Unit::Celsius);
        let f = Quantity::from_integer(77, Unit::Fahrenheit);
        assert_eq!(c, f);
        assert_eq!(f.partial_cmp(&c), Some(Ordering::Equal));
    }

    #[test]
    fn cross_unit_ordering() {
        let c = Quantity::from_integer(26, Unit::Celsius);
        let f = Quantity::from_integer(77, Unit::Fahrenheit); // 25 C
        assert!(c > f);
    }

    #[test]
    fn different_dimensions_are_incomparable() {
        let c = Quantity::from_integer(25, Unit::Celsius);
        let p = Quantity::from_integer(25, Unit::Percent);
        assert_ne!(c, p);
        assert_eq!(c.partial_cmp(&p), None);
        assert!(c.to_unit(Unit::Percent).is_none());
    }

    #[test]
    fn unit_conversion() {
        let c = Quantity::from_integer(100, Unit::Celsius);
        let f = c.to_unit(Unit::Fahrenheit).unwrap();
        assert_eq!(f.value(), Rational::from_integer(212));
        assert_eq!(f.unit(), Unit::Fahrenheit);
    }

    #[test]
    fn parse_word_forms() {
        assert_eq!(
            "25 degrees".parse::<Quantity>().unwrap(),
            Quantity::from_integer(25, Unit::Celsius)
        );
        assert_eq!(
            "77 degrees Fahrenheit".parse::<Quantity>().unwrap(),
            Quantity::from_integer(77, Unit::Fahrenheit)
        );
        assert_eq!(
            "60 percent".parse::<Quantity>().unwrap(),
            Quantity::from_integer(60, Unit::Percent)
        );
        assert_eq!(
            "500 lux".parse::<Quantity>().unwrap(),
            Quantity::from_integer(500, Unit::Lux)
        );
    }

    #[test]
    fn parse_symbol_forms() {
        assert_eq!(
            "25°C".parse::<Quantity>().unwrap(),
            Quantity::from_integer(25, Unit::Celsius)
        );
        assert_eq!(
            "60%".parse::<Quantity>().unwrap(),
            Quantity::from_integer(60, Unit::Percent)
        );
    }

    #[test]
    fn parse_bare_number_is_unitless() {
        let q = "42".parse::<Quantity>().unwrap();
        assert_eq!(q.unit(), Unit::Unitless);
        assert_eq!(q.value(), Rational::from_integer(42));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<Quantity>().is_err());
        assert!("hot".parse::<Quantity>().is_err());
        assert!("12 bananas".parse::<Quantity>().is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            Quantity::from_integer(25, Unit::Celsius).to_string(),
            "25°C"
        );
        assert_eq!(Quantity::from_integer(60, Unit::Percent).to_string(), "60%");
        assert_eq!(
            Quantity::unitless(Rational::from_integer(3)).to_string(),
            "3"
        );
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn prop_celsius_fahrenheit_round_trip(n in -1000i64..1000) {
            let c = Quantity::from_integer(n, Unit::Celsius);
            let f = c.to_unit(Unit::Fahrenheit).unwrap();
            let back = f.to_unit(Unit::Celsius).unwrap();
            prop_assert_eq!(back.value(), c.value());
        }

        #[test]
        fn prop_comparison_is_unit_invariant(a in -500i64..500, b in -500i64..500) {
            let ca = Quantity::from_integer(a, Unit::Celsius);
            let cb = Quantity::from_integer(b, Unit::Celsius);
            let fa = ca.to_unit(Unit::Fahrenheit).unwrap();
            prop_assert_eq!(fa.partial_cmp(&cb), ca.partial_cmp(&cb));
        }
    }
}
