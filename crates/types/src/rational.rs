//! Exact rational arithmetic.
//!
//! Conflict detection in the CADEL framework decides satisfiability of
//! conjunctions of linear inequalities (paper §4.4). Floating point would
//! make those verdicts tolerance-dependent, so every numeric literal parsed
//! from a rule is kept as an exact [`Rational`] and the simplex solver in
//! `cadel-simplex` computes over rationals end to end.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

use crate::error::ParseRationalError;

/// An exact rational number `numer / denom` stored in lowest terms with a
/// strictly positive denominator.
///
/// Arithmetic uses `i128` intermediates and reduces aggressively; the range
/// is far beyond anything a home-automation rule can produce (sensor
/// readings, set-points, percentages).
///
/// # Example
///
/// ```
/// use cadel_types::Rational;
///
/// let third: Rational = "1/3".parse().unwrap();
/// let dec: Rational = "0.5".parse().unwrap();
/// assert_eq!(third + dec, Rational::new(5, 6));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Rational {
    numer: i128,
    denom: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    /// The rational number zero.
    pub const ZERO: Rational = Rational { numer: 0, denom: 1 };
    /// The rational number one.
    pub const ONE: Rational = Rational { numer: 1, denom: 1 };

    /// Creates a rational from a numerator and denominator, reducing to
    /// lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `denom == 0`.
    pub fn new(numer: i128, denom: i128) -> Rational {
        assert!(denom != 0, "rational denominator must be non-zero");
        let g = gcd(numer, denom);
        let sign = if denom < 0 { -1 } else { 1 };
        if g == 0 {
            return Rational::ZERO;
        }
        Rational {
            numer: sign * numer / g,
            denom: sign * denom / g,
        }
    }

    /// Creates a rational from an integer.
    pub const fn from_integer(n: i64) -> Rational {
        Rational {
            numer: n as i128,
            denom: 1,
        }
    }

    /// The numerator in lowest terms (sign-carrying).
    pub fn numer(&self) -> i128 {
        self.numer
    }

    /// The denominator in lowest terms (always positive).
    pub fn denom(&self) -> i128 {
        self.denom
    }

    /// Returns `true` when the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.numer == 0
    }

    /// Returns `true` when the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.numer > 0
    }

    /// Returns `true` when the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.numer < 0
    }

    /// Returns `true` when the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.denom == 1
    }

    /// The sign of the value: `-1`, `0` or `1`.
    pub fn signum(&self) -> i32 {
        match self.numer.cmp(&0) {
            Ordering::Less => -1,
            Ordering::Equal => 0,
            Ordering::Greater => 1,
        }
    }

    /// Absolute value.
    pub fn abs(self) -> Rational {
        Rational {
            numer: self.numer.abs(),
            denom: self.denom,
        }
    }

    /// The multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(self) -> Rational {
        assert!(self.numer != 0, "cannot invert zero");
        Rational::new(self.denom, self.numer)
    }

    /// Converts to the nearest `f64` (for display and simulation only —
    /// never used in satisfiability decisions).
    pub fn to_f64(&self) -> f64 {
        self.numer as f64 / self.denom as f64
    }

    /// Approximates an `f64` as a rational with denominator up to `10^6`.
    ///
    /// Used when a simulated sensor reading (an `f64`) must be compared
    /// against exact rule thresholds. Returns `None` for non-finite input.
    pub fn approximate_f64(x: f64) -> Option<Rational> {
        if !x.is_finite() {
            return None;
        }
        const SCALE: f64 = 1_000_000.0;
        let scaled = (x * SCALE).round();
        if scaled.abs() >= i128::MAX as f64 / 2.0 {
            return None;
        }
        Some(Rational::new(scaled as i128, 1_000_000))
    }

    /// Checked addition, returning `None` on `i128` overflow.
    pub fn checked_add(self, other: Rational) -> Option<Rational> {
        let n = self
            .numer
            .checked_mul(other.denom)?
            .checked_add(other.numer.checked_mul(self.denom)?)?;
        let d = self.denom.checked_mul(other.denom)?;
        Some(Rational::new(n, d))
    }

    /// Checked subtraction, returning `None` on `i128` overflow.
    pub fn checked_sub(self, other: Rational) -> Option<Rational> {
        self.checked_add(-other)
    }

    /// Checked multiplication, returning `None` on `i128` overflow.
    pub fn checked_mul(self, other: Rational) -> Option<Rational> {
        // Cross-reduce first to keep the intermediates small.
        let g1 = gcd(self.numer, other.denom).max(1);
        let g2 = gcd(other.numer, self.denom).max(1);
        let n = (self.numer / g1).checked_mul(other.numer / g2)?;
        let d = (self.denom / g2).checked_mul(other.denom / g1)?;
        Some(Rational::new(n, d))
    }

    /// Checked division, returning `None` on overflow or division by zero.
    pub fn checked_div(self, other: Rational) -> Option<Rational> {
        if other.is_zero() {
            return None;
        }
        self.checked_mul(other.recip())
    }

    /// Minimum of two rationals.
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two rationals.
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::from_integer(n)
    }
}

impl From<i32> for Rational {
    fn from(n: i32) -> Self {
        Rational::from_integer(n as i64)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, other: Rational) -> Rational {
        self.checked_add(other).expect("rational addition overflow")
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, other: Rational) -> Rational {
        self.checked_sub(other)
            .expect("rational subtraction overflow")
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, other: Rational) -> Rational {
        self.checked_mul(other)
            .expect("rational multiplication overflow")
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, other: Rational) -> Rational {
        self.checked_div(other)
            .expect("rational division overflow or by zero")
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            numer: -self.numer,
            denom: self.denom,
        }
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, other: Rational) {
        *self = *self + other;
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, other: Rational) {
        *self = *self - other;
    }
}

impl MulAssign for Rational {
    fn mul_assign(&mut self, other: Rational) {
        *self = *self * other;
    }
}

impl DivAssign for Rational {
    fn div_assign(&mut self, other: Rational) {
        *self = *self / other;
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Rational) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Rational) -> Ordering {
        // denom > 0 invariant makes cross-multiplication order-preserving.
        let lhs = self.numer.checked_mul(other.denom);
        let rhs = other.numer.checked_mul(self.denom);
        match (lhs, rhs) {
            (Some(l), Some(r)) => l.cmp(&r),
            // Fall back to f64 comparison only on overflow, which the
            // reduced representations of rule constants cannot reach.
            _ => self
                .to_f64()
                .partial_cmp(&other.to_f64())
                .unwrap_or(Ordering::Equal),
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.denom == 1 {
            write!(f, "{}", self.numer)
        } else {
            write!(f, "{}/{}", self.numer, self.denom)
        }
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromStr for Rational {
    type Err = ParseRationalError;

    /// Parses `"3"`, `"-3"`, `"3/4"` or decimal `"3.25"` forms.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() {
            return Err(ParseRationalError::new(s));
        }
        if let Some((n, d)) = s.split_once('/') {
            let numer: i128 = n.trim().parse().map_err(|_| ParseRationalError::new(s))?;
            let denom: i128 = d.trim().parse().map_err(|_| ParseRationalError::new(s))?;
            if denom == 0 {
                return Err(ParseRationalError::new(s));
            }
            return Ok(Rational::new(numer, denom));
        }
        if let Some((int_part, frac_part)) = s.split_once('.') {
            let negative = int_part.trim_start().starts_with('-');
            let int: i128 = if int_part == "-" || int_part.is_empty() {
                0
            } else {
                int_part.parse().map_err(|_| ParseRationalError::new(s))?
            };
            if frac_part.is_empty() || !frac_part.bytes().all(|b| b.is_ascii_digit()) {
                return Err(ParseRationalError::new(s));
            }
            if frac_part.len() > 18 {
                return Err(ParseRationalError::new(s));
            }
            let frac: i128 = frac_part.parse().map_err(|_| ParseRationalError::new(s))?;
            let scale = 10i128.pow(frac_part.len() as u32);
            let magnitude = int.abs() * scale + frac;
            let numer = if negative { -magnitude } else { magnitude };
            return Ok(Rational::new(numer, scale));
        }
        let n: i128 = s.parse().map_err(|_| ParseRationalError::new(s))?;
        Ok(Rational::new(n, 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn reduces_to_lowest_terms() {
        let r = Rational::new(4, 8);
        assert_eq!(r.numer(), 1);
        assert_eq!(r.denom(), 2);
    }

    #[test]
    fn normalizes_negative_denominator() {
        let r = Rational::new(3, -6);
        assert_eq!(r.numer(), -1);
        assert_eq!(r.denom(), 2);
    }

    #[test]
    fn zero_has_canonical_form() {
        let r = Rational::new(0, -17);
        assert_eq!(r, Rational::ZERO);
        assert_eq!(r.denom(), 1);
    }

    #[test]
    fn arithmetic_basics() {
        let a = Rational::new(1, 3);
        let b = Rational::new(1, 6);
        assert_eq!(a + b, Rational::new(1, 2));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 18));
        assert_eq!(a / b, Rational::from_integer(2));
        assert_eq!(-a, Rational::new(-1, 3));
    }

    #[test]
    fn ordering_matches_real_numbers() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::ZERO);
        assert!(Rational::new(7, 2) > Rational::from_integer(3));
    }

    #[test]
    fn parses_integer_fraction_and_decimal() {
        assert_eq!(
            "42".parse::<Rational>().unwrap(),
            Rational::from_integer(42)
        );
        assert_eq!(
            "-7".parse::<Rational>().unwrap(),
            Rational::from_integer(-7)
        );
        assert_eq!("3/4".parse::<Rational>().unwrap(), Rational::new(3, 4));
        assert_eq!("0.25".parse::<Rational>().unwrap(), Rational::new(1, 4));
        assert_eq!("-1.5".parse::<Rational>().unwrap(), Rational::new(-3, 2));
        assert_eq!(".5".parse::<Rational>().unwrap(), Rational::new(1, 2));
    }

    #[test]
    fn rejects_malformed_strings() {
        for bad in ["", "abc", "1/0", "1.2.3", "1.", "--3", "1/ a"] {
            assert!(bad.parse::<Rational>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn display_round_trips() {
        for s in ["5", "-5", "1/3", "-2/7"] {
            let r: Rational = s.parse().unwrap();
            assert_eq!(r.to_string(), s);
            assert_eq!(r.to_string().parse::<Rational>().unwrap(), r);
        }
    }

    #[test]
    fn recip_inverts() {
        assert_eq!(Rational::new(3, 4).recip(), Rational::new(4, 3));
    }

    #[test]
    #[should_panic(expected = "cannot invert zero")]
    fn recip_of_zero_panics() {
        let _ = Rational::ZERO.recip();
    }

    #[test]
    fn approximate_f64_is_close() {
        let r = Rational::approximate_f64(0.1).unwrap();
        assert!((r.to_f64() - 0.1).abs() < 1e-6);
        assert!(Rational::approximate_f64(f64::NAN).is_none());
        assert!(Rational::approximate_f64(f64::INFINITY).is_none());
    }

    #[test]
    #[cfg(feature = "serde")]
    fn serde_round_trip() {
        let r = Rational::new(22, 7);
        let json = serde_json::to_string(&r).unwrap();
        let back: Rational = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[cfg(feature = "proptest")]
    fn small_rational() -> impl Strategy<Value = Rational> {
        (-1000i128..1000, 1i128..1000).prop_map(|(n, d)| Rational::new(n, d))
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn prop_add_commutative(a in small_rational(), b in small_rational()) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn prop_add_associative(a in small_rational(), b in small_rational(), c in small_rational()) {
            prop_assert_eq!((a + b) + c, a + (b + c));
        }

        #[test]
        fn prop_mul_distributes(a in small_rational(), b in small_rational(), c in small_rational()) {
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn prop_sub_add_inverse(a in small_rational(), b in small_rational()) {
            prop_assert_eq!(a + b - b, a);
        }

        #[test]
        fn prop_ordering_consistent_with_f64(a in small_rational(), b in small_rational()) {
            if (a.to_f64() - b.to_f64()).abs() > 1e-9 {
                prop_assert_eq!(a < b, a.to_f64() < b.to_f64());
            }
        }

        #[test]
        fn prop_always_lowest_terms(a in small_rational()) {
            let g = super::gcd(a.numer(), a.denom());
            prop_assert!(g == 1 || a.numer() == 0);
            prop_assert!(a.denom() > 0);
        }
    }
}
