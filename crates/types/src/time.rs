//! Time: wall-clock concepts used by CADEL's `<TimeSpec>` / `<PeriodSpec>`
//! grammar (times of day, dates, weekdays, named day-parts) and the
//! simulated clock driving the discrete-event substrate.

use crate::error::ParseTimeError;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::str::FromStr;

/// Minutes in a day.
const DAY_MINUTES: u32 = 24 * 60;

/// A time of day with minute resolution, `00:00 ..= 23:59`.
///
/// # Example
///
/// ```
/// use cadel_types::TimeOfDay;
///
/// let t: TimeOfDay = "18:30".parse().unwrap();
/// assert_eq!(t, TimeOfDay::hm(18, 30).unwrap());
/// assert_eq!("6 pm".parse::<TimeOfDay>().unwrap(), TimeOfDay::hm(18, 0).unwrap());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(
    feature = "serde",
    derive(serde::Serialize, serde::Deserialize),
    serde(transparent)
)]
pub struct TimeOfDay {
    minutes: u16,
}

impl TimeOfDay {
    /// Midnight (`00:00`).
    pub const MIDNIGHT: TimeOfDay = TimeOfDay { minutes: 0 };
    /// Noon (`12:00`).
    pub const NOON: TimeOfDay = TimeOfDay { minutes: 12 * 60 };

    /// Creates a time of day from hour and minute.
    ///
    /// Returns `None` if `hour > 23` or `minute > 59`.
    pub fn hm(hour: u8, minute: u8) -> Option<TimeOfDay> {
        if hour > 23 || minute > 59 {
            return None;
        }
        Some(TimeOfDay {
            minutes: hour as u16 * 60 + minute as u16,
        })
    }

    /// Creates a time of day from minutes since midnight, wrapping past
    /// 24 h (so `25 * 60` is `01:00`).
    pub fn from_minutes(minutes: u32) -> TimeOfDay {
        TimeOfDay {
            minutes: (minutes % DAY_MINUTES) as u16,
        }
    }

    /// Minutes since midnight.
    pub fn minutes(self) -> u16 {
        self.minutes
    }

    /// The hour component (0–23).
    pub fn hour(self) -> u8 {
        (self.minutes / 60) as u8
    }

    /// The minute component (0–59).
    pub fn minute(self) -> u8 {
        (self.minutes % 60) as u8
    }
}

impl fmt::Debug for TimeOfDay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02}:{:02}", self.hour(), self.minute())
    }
}

impl fmt::Display for TimeOfDay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromStr for TimeOfDay {
    type Err = ParseTimeError;

    /// Accepts `"18:30"`, `"6 pm"`, `"6:30 am"`, `"noon"`, `"midnight"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let raw = s.trim().to_ascii_lowercase();
        match raw.as_str() {
            "noon" => return Ok(TimeOfDay::NOON),
            "midnight" => return Ok(TimeOfDay::MIDNIGHT),
            _ => {}
        }
        let (body, meridiem) = if let Some(b) = raw.strip_suffix("am") {
            (b.trim(), Some(false))
        } else if let Some(b) = raw.strip_suffix("pm") {
            (b.trim(), Some(true))
        } else {
            (raw.as_str(), None)
        };
        let (h_str, m_str) = match body.split_once(':') {
            Some((h, m)) => (h, m),
            None => (body, "0"),
        };
        let hour: u8 = h_str.trim().parse().map_err(|_| ParseTimeError::new(s))?;
        let minute: u8 = m_str.trim().parse().map_err(|_| ParseTimeError::new(s))?;
        let hour = match meridiem {
            Some(pm) => {
                if hour == 0 || hour > 12 {
                    return Err(ParseTimeError::new(s));
                }
                match (pm, hour) {
                    (false, 12) => 0,
                    (false, h) => h,
                    (true, 12) => 12,
                    (true, h) => h + 12,
                }
            }
            None => hour,
        };
        TimeOfDay::hm(hour, minute).ok_or_else(|| ParseTimeError::new(s))
    }
}

/// Days of the week for `"every Monday"` date specs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum Weekday {
    Monday,
    Tuesday,
    Wednesday,
    Thursday,
    Friday,
    Saturday,
    Sunday,
}

impl Weekday {
    /// All weekdays in order, Monday first.
    pub const ALL: [Weekday; 7] = [
        Weekday::Monday,
        Weekday::Tuesday,
        Weekday::Wednesday,
        Weekday::Thursday,
        Weekday::Friday,
        Weekday::Saturday,
        Weekday::Sunday,
    ];

    /// Index with Monday = 0 … Sunday = 6.
    pub fn index(self) -> u8 {
        Weekday::ALL.iter().position(|w| *w == self).unwrap() as u8
    }

    /// The weekday `days` after `self`.
    pub fn advance(self, days: u64) -> Weekday {
        Weekday::ALL[((self.index() as u64 + days) % 7) as usize]
    }

    /// Parses an English weekday name, case-insensitive, full or
    /// three-letter form. Returns `None` for unknown words.
    pub fn from_word(word: &str) -> Option<Weekday> {
        match word.to_ascii_lowercase().as_str() {
            "monday" | "mon" => Some(Weekday::Monday),
            "tuesday" | "tue" => Some(Weekday::Tuesday),
            "wednesday" | "wed" => Some(Weekday::Wednesday),
            "thursday" | "thu" => Some(Weekday::Thursday),
            "friday" | "fri" => Some(Weekday::Friday),
            "saturday" | "sat" => Some(Weekday::Saturday),
            "sunday" | "sun" => Some(Weekday::Sunday),
            _ => None,
        }
    }
}

impl fmt::Display for Weekday {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A calendar date (proleptic Gregorian).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    year: i32,
    month: u8,
    day: u8,
}

impl Date {
    /// Creates a date, validating month and day-of-month.
    pub fn new(year: i32, month: u8, day: u8) -> Option<Date> {
        if month == 0 || month > 12 || day == 0 {
            return None;
        }
        if day > days_in_month(year, month) {
            return None;
        }
        Some(Date { year, month, day })
    }

    /// The year.
    pub fn year(self) -> i32 {
        self.year
    }

    /// The month (1–12).
    pub fn month(self) -> u8 {
        self.month
    }

    /// The day of month (1–31).
    pub fn day(self) -> u8 {
        self.day
    }

    /// The weekday of this date (Zeller's congruence).
    pub fn weekday(self) -> Weekday {
        let (mut y, mut m) = (self.year, self.month as i32);
        if m < 3 {
            m += 12;
            y -= 1;
        }
        let k = y.rem_euclid(100);
        let j = y.div_euclid(100);
        let q = self.day as i32;
        let h = (q + (13 * (m + 1)) / 5 + k + k / 4 + j / 4 + 5 * j).rem_euclid(7);
        // h: 0 = Saturday, 1 = Sunday, 2 = Monday, ...
        match h {
            0 => Weekday::Saturday,
            1 => Weekday::Sunday,
            2 => Weekday::Monday,
            3 => Weekday::Tuesday,
            4 => Weekday::Wednesday,
            5 => Weekday::Thursday,
            _ => Weekday::Friday,
        }
    }

    /// The date `days` after `self`.
    pub fn advance(self, mut days: u64) -> Date {
        let mut d = self;
        while days > 0 {
            let dim = days_in_month(d.year, d.month);
            let remaining_in_month = (dim - d.day) as u64;
            if days <= remaining_in_month {
                d.day += days as u8;
                return d;
            }
            days -= remaining_in_month + 1;
            d.day = 1;
            if d.month == 12 {
                d.month = 1;
                d.year += 1;
            } else {
                d.month += 1;
            }
        }
        d
    }
}

fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

impl fmt::Debug for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromStr for Date {
    type Err = ParseTimeError;

    /// Parses ISO `YYYY-MM-DD`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.trim().splitn(3, '-');
        let year = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| ParseTimeError::new(s))?;
        let month = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| ParseTimeError::new(s))?;
        let day = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| ParseTimeError::new(s))?;
        Date::new(year, month, day).ok_or_else(|| ParseTimeError::new(s))
    }
}

/// Named parts of the day used by CADEL phrases such as "in evening" or
/// "at night".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum DayPart {
    Morning,
    Afternoon,
    Evening,
    Night,
}

impl DayPart {
    /// The wall-clock window conventionally covered by this day part.
    ///
    /// Morning 06:00–12:00, afternoon 12:00–17:00, evening 17:00–22:00,
    /// night 22:00–06:00 (wrapping midnight).
    pub fn window(self) -> TimeWindow {
        let hm = |h: u8| TimeOfDay::hm(h, 0).expect("static hour is valid");
        match self {
            DayPart::Morning => TimeWindow::new(hm(6), hm(12)),
            DayPart::Afternoon => TimeWindow::new(hm(12), hm(17)),
            DayPart::Evening => TimeWindow::new(hm(17), hm(22)),
            DayPart::Night => TimeWindow::new(hm(22), hm(6)),
        }
    }

    /// Parses "morning" / "afternoon" / "evening" / "night",
    /// case-insensitive.
    pub fn from_word(word: &str) -> Option<DayPart> {
        match word.to_ascii_lowercase().as_str() {
            "morning" => Some(DayPart::Morning),
            "afternoon" => Some(DayPart::Afternoon),
            "evening" => Some(DayPart::Evening),
            "night" => Some(DayPart::Night),
            _ => None,
        }
    }
}

impl fmt::Display for DayPart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A half-open daily window `[start, end)` of wall-clock time, possibly
/// wrapping midnight (`22:00 → 06:00`).
///
/// A window with `start == end` covers the whole day.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TimeWindow {
    start: TimeOfDay,
    end: TimeOfDay,
}

impl TimeWindow {
    /// The window covering the entire day.
    pub const ALL_DAY: TimeWindow = TimeWindow {
        start: TimeOfDay::MIDNIGHT,
        end: TimeOfDay::MIDNIGHT,
    };

    /// Creates the window `[start, end)`; wraps midnight when
    /// `end <= start` (except that `start == end` means all day).
    pub fn new(start: TimeOfDay, end: TimeOfDay) -> TimeWindow {
        TimeWindow { start, end }
    }

    /// The inclusive start of the window.
    pub fn start(self) -> TimeOfDay {
        self.start
    }

    /// The exclusive end of the window.
    pub fn end(self) -> TimeOfDay {
        self.end
    }

    /// Whether the window wraps past midnight.
    pub fn wraps(self) -> bool {
        self.end < self.start
    }

    /// Whether the window covers the whole day.
    pub fn is_all_day(self) -> bool {
        self.start == self.end
    }

    /// Whether `t` falls inside the window.
    pub fn contains(self, t: TimeOfDay) -> bool {
        if self.is_all_day() {
            return true;
        }
        if self.wraps() {
            t >= self.start || t < self.end
        } else {
            t >= self.start && t < self.end
        }
    }

    /// Decomposes into non-wrapping `[start, end)` minute intervals.
    fn segments(self) -> Vec<(u32, u32)> {
        let s = self.start.minutes() as u32;
        let e = self.end.minutes() as u32;
        if self.is_all_day() {
            vec![(0, DAY_MINUTES)]
        } else if self.wraps() {
            vec![(s, DAY_MINUTES), (0, e)]
        } else {
            vec![(s, e)]
        }
    }

    /// Whether two windows share at least one minute of the day.
    ///
    /// Used by the conflict checker: two rules guarded by disjoint time
    /// windows can never fire together.
    pub fn intersects(self, other: TimeWindow) -> bool {
        for (a0, a1) in self.segments() {
            for (b0, b1) in other.segments() {
                if a0 < b1 && b0 < a1 {
                    return true;
                }
            }
        }
        false
    }

    /// Total minutes covered by the window.
    pub fn duration_minutes(self) -> u32 {
        self.segments().iter().map(|(a, b)| b - a).sum()
    }
}

impl Default for TimeWindow {
    fn default() -> Self {
        TimeWindow::ALL_DAY
    }
}

impl fmt::Display for TimeWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}–{}", self.start, self.end)
    }
}

/// A point on the simulated timeline: milliseconds since the simulation
/// epoch (midnight of day zero).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(
    feature = "serde",
    derive(serde::Serialize, serde::Deserialize),
    serde(transparent)
)]
pub struct SimTime {
    millis: u64,
}

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const EPOCH: SimTime = SimTime { millis: 0 };

    /// Creates a time from raw milliseconds since the epoch.
    pub const fn from_millis(millis: u64) -> SimTime {
        SimTime { millis }
    }

    /// Milliseconds since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.millis
    }

    /// Whole days elapsed since the epoch.
    pub fn day_index(self) -> u64 {
        self.millis / (DAY_MINUTES as u64 * 60_000)
    }

    /// The wall-clock time of day at this instant.
    pub fn time_of_day(self) -> TimeOfDay {
        let minutes = (self.millis / 60_000) % DAY_MINUTES as u64;
        TimeOfDay::from_minutes(minutes as u32)
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is in
    /// the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration::from_millis(self.millis.saturating_sub(earlier.millis))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime::from_millis(self.millis + d.as_millis())
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.millis += d.as_millis();
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        self.since(other)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}+{}", self.day_index(), self.time_of_day())
    }
}

/// A span of simulated time with millisecond resolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(
    feature = "serde",
    derive(serde::Serialize, serde::Deserialize),
    serde(transparent)
)]
pub struct SimDuration {
    millis: u64,
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration { millis: 0 };

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> SimDuration {
        SimDuration { millis }
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> SimDuration {
        SimDuration {
            millis: secs * 1000,
        }
    }

    /// Creates a duration from whole minutes.
    pub const fn from_minutes(minutes: u64) -> SimDuration {
        SimDuration {
            millis: minutes * 60_000,
        }
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(hours: u64) -> SimDuration {
        SimDuration {
            millis: hours * 3_600_000,
        }
    }

    /// The duration in milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.millis
    }

    /// The duration in whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.millis / 1000
    }

    /// The duration in whole minutes (truncating).
    pub const fn as_minutes(self) -> u64 {
        self.millis / 60_000
    }

    /// Whether this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.millis == 0
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration::from_millis(self.millis + other.millis)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration::from_millis(self.millis.saturating_sub(other.millis))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.millis.is_multiple_of(60_000) {
            write!(f, "{}min", self.as_minutes())
        } else if self.millis.is_multiple_of(1000) {
            write!(f, "{}s", self.as_secs())
        } else {
            write!(f, "{}ms", self.millis)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn time_of_day_construction() {
        assert_eq!(TimeOfDay::hm(18, 30).unwrap().minutes(), 18 * 60 + 30);
        assert!(TimeOfDay::hm(24, 0).is_none());
        assert!(TimeOfDay::hm(10, 60).is_none());
    }

    #[test]
    fn time_of_day_parsing() {
        assert_eq!(
            "18:30".parse::<TimeOfDay>().unwrap(),
            TimeOfDay::hm(18, 30).unwrap()
        );
        assert_eq!(
            "6 pm".parse::<TimeOfDay>().unwrap(),
            TimeOfDay::hm(18, 0).unwrap()
        );
        assert_eq!(
            "6:15 am".parse::<TimeOfDay>().unwrap(),
            TimeOfDay::hm(6, 15).unwrap()
        );
        assert_eq!("12 am".parse::<TimeOfDay>().unwrap(), TimeOfDay::MIDNIGHT);
        assert_eq!("12 pm".parse::<TimeOfDay>().unwrap(), TimeOfDay::NOON);
        assert_eq!("noon".parse::<TimeOfDay>().unwrap(), TimeOfDay::NOON);
        assert_eq!(
            "midnight".parse::<TimeOfDay>().unwrap(),
            TimeOfDay::MIDNIGHT
        );
        assert!("25:00".parse::<TimeOfDay>().is_err());
        assert!("13 pm".parse::<TimeOfDay>().is_err());
        assert!("0 pm".parse::<TimeOfDay>().is_err());
        assert!("snack".parse::<TimeOfDay>().is_err());
    }

    #[test]
    fn weekday_arithmetic() {
        assert_eq!(Weekday::Friday.advance(3), Weekday::Monday);
        assert_eq!(Weekday::Monday.advance(0), Weekday::Monday);
        assert_eq!(Weekday::Sunday.advance(7), Weekday::Sunday);
    }

    #[test]
    fn date_validation() {
        assert!(Date::new(2005, 2, 29).is_none());
        assert!(Date::new(2004, 2, 29).is_some()); // leap year
        assert!(Date::new(2005, 13, 1).is_none());
        assert!(Date::new(2005, 4, 31).is_none());
    }

    #[test]
    fn date_weekday_known_values() {
        // ICDCS 2005 ran June 6-10 2005; June 6 2005 was a Monday.
        assert_eq!(Date::new(2005, 6, 6).unwrap().weekday(), Weekday::Monday);
        assert_eq!(Date::new(2000, 1, 1).unwrap().weekday(), Weekday::Saturday);
        assert_eq!(Date::new(2026, 7, 7).unwrap().weekday(), Weekday::Tuesday);
    }

    #[test]
    fn date_advance_crosses_months_and_years() {
        let d = Date::new(2005, 12, 30).unwrap();
        assert_eq!(d.advance(3), Date::new(2006, 1, 2).unwrap());
        let d = Date::new(2004, 2, 28).unwrap();
        assert_eq!(d.advance(1), Date::new(2004, 2, 29).unwrap());
        assert_eq!(d.advance(2), Date::new(2004, 3, 1).unwrap());
    }

    #[test]
    fn date_parse() {
        assert_eq!(
            "2005-06-06".parse::<Date>().unwrap(),
            Date::new(2005, 6, 6).unwrap()
        );
        assert!("2005-13-06".parse::<Date>().is_err());
        assert!("yesterday".parse::<Date>().is_err());
    }

    #[test]
    fn window_contains_non_wrapping() {
        let w = TimeWindow::new(TimeOfDay::hm(17, 0).unwrap(), TimeOfDay::hm(22, 0).unwrap());
        assert!(w.contains(TimeOfDay::hm(17, 0).unwrap()));
        assert!(w.contains(TimeOfDay::hm(21, 59).unwrap()));
        assert!(!w.contains(TimeOfDay::hm(22, 0).unwrap()));
        assert!(!w.contains(TimeOfDay::hm(3, 0).unwrap()));
    }

    #[test]
    fn window_contains_wrapping() {
        let night = DayPart::Night.window();
        assert!(night.wraps());
        assert!(night.contains(TimeOfDay::hm(23, 0).unwrap()));
        assert!(night.contains(TimeOfDay::hm(2, 0).unwrap()));
        assert!(!night.contains(TimeOfDay::hm(6, 0).unwrap()));
        assert!(!night.contains(TimeOfDay::NOON));
    }

    #[test]
    fn all_day_window() {
        assert!(TimeWindow::ALL_DAY.contains(TimeOfDay::hm(13, 37).unwrap()));
        assert_eq!(TimeWindow::ALL_DAY.duration_minutes(), 1440);
    }

    #[test]
    fn window_intersection() {
        let evening = DayPart::Evening.window();
        let night = DayPart::Night.window();
        let morning = DayPart::Morning.window();
        assert!(!evening.intersects(night)); // [17,22) vs [22,6)
        assert!(!night.intersects(morning)); // [22,6) vs [6,12)
        let late = TimeWindow::new(TimeOfDay::hm(21, 0).unwrap(), TimeOfDay::hm(23, 0).unwrap());
        assert!(evening.intersects(late));
        assert!(night.intersects(late));
        assert!(TimeWindow::ALL_DAY.intersects(night));
    }

    #[test]
    fn daypart_windows_cover_the_day() {
        let total: u32 = [
            DayPart::Morning,
            DayPart::Afternoon,
            DayPart::Evening,
            DayPart::Night,
        ]
        .iter()
        .map(|p| p.window().duration_minutes())
        .sum();
        assert_eq!(total, 1440);
    }

    #[test]
    fn sim_time_decomposition() {
        let t = SimTime::EPOCH + SimDuration::from_hours(26) + SimDuration::from_minutes(30);
        assert_eq!(t.day_index(), 1);
        assert_eq!(t.time_of_day(), TimeOfDay::hm(2, 30).unwrap());
    }

    #[test]
    fn sim_duration_display() {
        assert_eq!(SimDuration::from_minutes(90).to_string(), "90min");
        assert_eq!(SimDuration::from_secs(30).to_string(), "30s");
        assert_eq!(SimDuration::from_millis(250).to_string(), "250ms");
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_millis(1000);
        let b = SimTime::from_millis(5000);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b.since(a), SimDuration::from_secs(4));
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn prop_window_contains_agrees_with_intersects(
            s1 in 0u32..1440, e1 in 0u32..1440, t in 0u32..1440
        ) {
            let w = TimeWindow::new(TimeOfDay::from_minutes(s1), TimeOfDay::from_minutes(e1));
            let point = TimeWindow::new(
                TimeOfDay::from_minutes(t),
                TimeOfDay::from_minutes((t + 1) % 1440),
            );
            // A 1-minute window intersects w iff its minute is contained.
            if !point.is_all_day() {
                prop_assert_eq!(w.intersects(point), w.contains(TimeOfDay::from_minutes(t)));
            }
        }

        #[test]
        fn prop_intersects_is_symmetric(
            s1 in 0u32..1440, e1 in 0u32..1440, s2 in 0u32..1440, e2 in 0u32..1440
        ) {
            let a = TimeWindow::new(TimeOfDay::from_minutes(s1), TimeOfDay::from_minutes(e1));
            let b = TimeWindow::new(TimeOfDay::from_minutes(s2), TimeOfDay::from_minutes(e2));
            prop_assert_eq!(a.intersects(b), b.intersects(a));
        }

        #[test]
        fn prop_weekday_advance_cycles(start in 0u8..7, days in 0u64..100) {
            let w = Weekday::ALL[start as usize];
            prop_assert_eq!(w.advance(days).advance(7 - (days % 7)), w);
        }

        #[test]
        fn prop_date_advance_weekday_consistent(days in 0u64..400) {
            let base = Date::new(2005, 6, 6).unwrap(); // a Monday
            let later = base.advance(days);
            prop_assert_eq!(later.weekday(), Weekday::Monday.advance(days));
        }
    }
}
