//! Error types shared across the workspace's foundation layer.

use std::error::Error;
use std::fmt;

/// Error returned when a string cannot be parsed as a [`crate::Rational`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRationalError {
    input: String,
}

impl ParseRationalError {
    pub(crate) fn new(input: &str) -> Self {
        ParseRationalError {
            input: input.to_owned(),
        }
    }

    /// The offending input string.
    pub fn input(&self) -> &str {
        &self.input
    }
}

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational number syntax: {:?}", self.input)
    }
}

impl Error for ParseRationalError {}

/// Error returned when a string cannot be parsed as a [`crate::Quantity`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQuantityError {
    input: String,
    reason: String,
}

impl ParseQuantityError {
    pub(crate) fn new(input: &str, reason: impl Into<String>) -> Self {
        ParseQuantityError {
            input: input.to_owned(),
            reason: reason.into(),
        }
    }

    /// The offending input string.
    pub fn input(&self) -> &str {
        &self.input
    }
}

impl fmt::Display for ParseQuantityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid quantity {:?}: {}", self.input, self.reason)
    }
}

impl Error for ParseQuantityError {}

/// Error returned when a string cannot be parsed as a time of day or date.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTimeError {
    input: String,
}

impl ParseTimeError {
    pub(crate) fn new(input: &str) -> Self {
        ParseTimeError {
            input: input.to_owned(),
        }
    }

    /// The offending input string.
    pub fn input(&self) -> &str {
        &self.input
    }
}

impl fmt::Display for ParseTimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid time syntax: {:?}", self.input)
    }
}

impl Error for ParseTimeError {}

/// Errors raised when building or querying a home [`crate::Topology`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A place name was registered twice.
    DuplicatePlace(String),
    /// A referenced place does not exist in the topology.
    UnknownPlace(String),
    /// A place was attached to a parent of an incompatible kind
    /// (e.g. a floor inside a room).
    InvalidParent {
        /// The child place being attached.
        child: String,
        /// The parent it was attached to.
        parent: String,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::DuplicatePlace(name) => {
                write!(f, "place {name:?} is already registered")
            }
            TopologyError::UnknownPlace(name) => write!(f, "unknown place {name:?}"),
            TopologyError::InvalidParent { child, parent } => {
                write!(f, "place {child:?} cannot be nested inside {parent:?}")
            }
        }
    }
}

impl Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_error_traits<E: Error + Send + Sync + 'static>() {}

    #[test]
    fn error_types_are_well_behaved() {
        assert_error_traits::<ParseRationalError>();
        assert_error_traits::<ParseQuantityError>();
        assert_error_traits::<ParseTimeError>();
        assert_error_traits::<TopologyError>();
    }

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = ParseRationalError::new("xyz");
        assert!(e.to_string().contains("xyz"));
        let e = TopologyError::UnknownPlace("attic".into());
        assert!(e.to_string().contains("attic"));
    }
}
