//! A minimal, dependency-free JSON document model with parser and writer.
//!
//! The workspace builds fully offline, so rule import/export (paper
//! §4.3(iv)) cannot rely on `serde_json`. This module provides the small
//! JSON subset the framework needs: objects, arrays, strings, integers,
//! floats, booleans and null, with standard escape handling.
//!
//! Object member order is preserved so exports are deterministic.

use std::fmt;

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer literal (no fraction or exponent part).
    Int(i64),
    /// Any other numeric literal.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; member order is preserved.
    Obj(Vec<(String, Json)>),
}

/// An error raised while parsing a JSON document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        )
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// The member of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(x) => {
                if x.is_finite() {
                    let s = format!("{x}");
                    // Keep the output re-parseable as a float.
                    if s.contains('.') || s.contains('e') || s.contains('E') {
                        out.push_str(&s);
                    } else {
                        out.push_str(&s);
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a [`JsonError`] describing the first malformed construct.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&code) {
                                // Surrogate pair: expect a trailing \uXXXX.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xd800) << 10)
                                        + (low.wrapping_sub(0xdc00) & 0x3ff);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 code point (input is &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "false", "42", "-7", "3.5", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(parse(&v.to_compact()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse(r#"{"a": [1, {"b": "x"}, null], "c": true}"#).unwrap();
        assert_eq!(doc.get("c"), Some(&Json::Bool(true)));
        let arr = doc.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Json::Str("line\nquote\"back\\slash\ttab\u{8}".to_owned());
        let text = original.to_compact();
        assert_eq!(parse(&text).unwrap(), original);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(parse(r#""é😀""#).unwrap(), Json::Str("é😀".to_owned()));
    }

    #[test]
    fn pretty_output_reparses() {
        let doc = Json::obj(vec![
            ("rules", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("empty", Json::Arr(vec![])),
            ("name", Json::str("home")),
        ]);
        let pretty = doc.to_pretty();
        assert!(pretty.contains('\n'));
        assert_eq!(parse(&pretty).unwrap(), doc);
    }

    #[test]
    fn rejects_malformed_documents() {
        for text in ["", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2"] {
            assert!(parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn large_integers_fall_back_to_float() {
        // Beyond i64 range still parses (as float).
        assert!(matches!(
            parse("99999999999999999999").unwrap(),
            Json::Float(_)
        ));
    }
}
