//! Home topology: floors, rooms and the containment queries used when
//! retrieving "devices within the current room / current floor / the whole
//! home" (paper §3.2, guidance function).

use crate::error::TopologyError;
use std::collections::BTreeMap;
use std::fmt;

/// Identifies a place (the home itself, a floor, or a room). Stored and
/// compared case-insensitively — `PlaceId::new("Living Room")` equals
/// `PlaceId::new("living room")`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(
    feature = "serde",
    derive(serde::Serialize, serde::Deserialize),
    serde(transparent)
)]
pub struct PlaceId(String);

impl PlaceId {
    /// Creates a place id; the name is normalized to lower case.
    pub fn new(name: impl AsRef<str>) -> PlaceId {
        PlaceId(name.as_ref().trim().to_ascii_lowercase())
    }

    /// The normalized name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for PlaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PlaceId({:?})", self.0)
    }
}

impl fmt::Display for PlaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for PlaceId {
    fn from(s: &str) -> Self {
        PlaceId::new(s)
    }
}

/// What kind of place a [`PlaceId`] names.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PlaceKind {
    /// The whole home — the root of the topology.
    Home,
    /// A floor (storey) of the home.
    Floor,
    /// A room on some floor.
    Room,
}

#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
struct PlaceNode {
    kind: PlaceKind,
    parent: Option<PlaceId>,
}

/// The containment tree of a home: one root, floors beneath it, rooms
/// beneath floors.
///
/// # Example
///
/// ```
/// use cadel_types::{Topology, PlaceId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut home = Topology::new("home");
/// home.add_floor("first floor")?;
/// home.add_room("living room", "first floor")?;
/// assert!(home.contains(&PlaceId::new("first floor"), &PlaceId::new("living room"))?);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Topology {
    root: PlaceId,
    places: BTreeMap<PlaceId, PlaceNode>,
}

impl Topology {
    /// Creates a topology with a single root place of kind
    /// [`PlaceKind::Home`].
    pub fn new(home_name: impl AsRef<str>) -> Topology {
        let root = PlaceId::new(home_name);
        let mut places = BTreeMap::new();
        places.insert(
            root.clone(),
            PlaceNode {
                kind: PlaceKind::Home,
                parent: None,
            },
        );
        Topology { root, places }
    }

    /// The root (home) place.
    pub fn root(&self) -> &PlaceId {
        &self.root
    }

    /// Adds a floor directly under the home root.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::DuplicatePlace`] if the name is taken.
    pub fn add_floor(&mut self, name: impl AsRef<str>) -> Result<PlaceId, TopologyError> {
        let id = PlaceId::new(name);
        if self.places.contains_key(&id) {
            return Err(TopologyError::DuplicatePlace(id.as_str().to_owned()));
        }
        self.places.insert(
            id.clone(),
            PlaceNode {
                kind: PlaceKind::Floor,
                parent: Some(self.root.clone()),
            },
        );
        Ok(id)
    }

    /// Adds a room under an existing floor (or directly under the home for
    /// single-storey setups).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::DuplicatePlace`] if the name is taken,
    /// [`TopologyError::UnknownPlace`] if the parent does not exist, and
    /// [`TopologyError::InvalidParent`] if the parent is itself a room.
    pub fn add_room(
        &mut self,
        name: impl AsRef<str>,
        parent: impl AsRef<str>,
    ) -> Result<PlaceId, TopologyError> {
        let id = PlaceId::new(name);
        let parent_id = PlaceId::new(parent);
        if self.places.contains_key(&id) {
            return Err(TopologyError::DuplicatePlace(id.as_str().to_owned()));
        }
        let parent_node = self
            .places
            .get(&parent_id)
            .ok_or_else(|| TopologyError::UnknownPlace(parent_id.as_str().to_owned()))?;
        if parent_node.kind == PlaceKind::Room {
            return Err(TopologyError::InvalidParent {
                child: id.as_str().to_owned(),
                parent: parent_id.as_str().to_owned(),
            });
        }
        self.places.insert(
            id.clone(),
            PlaceNode {
                kind: PlaceKind::Room,
                parent: Some(parent_id),
            },
        );
        Ok(id)
    }

    /// Whether `place` is known to this topology.
    pub fn knows(&self, place: &PlaceId) -> bool {
        self.places.contains_key(place)
    }

    /// The kind of a place.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownPlace`] for unregistered places.
    pub fn kind(&self, place: &PlaceId) -> Result<PlaceKind, TopologyError> {
        self.places
            .get(place)
            .map(|n| n.kind)
            .ok_or_else(|| TopologyError::UnknownPlace(place.as_str().to_owned()))
    }

    /// The parent of a place (`None` for the root).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownPlace`] for unregistered places.
    pub fn parent(&self, place: &PlaceId) -> Result<Option<&PlaceId>, TopologyError> {
        self.places
            .get(place)
            .map(|n| n.parent.as_ref())
            .ok_or_else(|| TopologyError::UnknownPlace(place.as_str().to_owned()))
    }

    /// Whether `descendant` equals or lies inside `ancestor`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownPlace`] if either place is
    /// unregistered.
    pub fn contains(
        &self,
        ancestor: &PlaceId,
        descendant: &PlaceId,
    ) -> Result<bool, TopologyError> {
        if !self.knows(ancestor) {
            return Err(TopologyError::UnknownPlace(ancestor.as_str().to_owned()));
        }
        let mut cursor = Some(descendant.clone());
        while let Some(place) = cursor {
            if &place == ancestor {
                return Ok(true);
            }
            cursor = self.parent(&place)?.cloned();
        }
        Ok(false)
    }

    /// All places of the given kind, in name order.
    pub fn places_of_kind(&self, kind: PlaceKind) -> Vec<&PlaceId> {
        self.places
            .iter()
            .filter(|(_, n)| n.kind == kind)
            .map(|(id, _)| id)
            .collect()
    }

    /// All rooms of the home, in name order.
    pub fn rooms(&self) -> Vec<&PlaceId> {
        self.places_of_kind(PlaceKind::Room)
    }

    /// The floor a room sits on, or the room's direct parent if it hangs
    /// off the home root.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownPlace`] for unregistered places.
    pub fn floor_of(&self, room: &PlaceId) -> Result<Option<&PlaceId>, TopologyError> {
        let parent = self.parent(room)?;
        Ok(match parent {
            Some(p) if self.kind(p)? == PlaceKind::Floor => Some(p),
            _ => None,
        })
    }

    /// Whether a place (given by a location fact about a device/person)
    /// matches a retrieval scope.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownPlace`] if the scope names an
    /// unregistered place.
    pub fn matches(
        &self,
        scope: &LocationSelector,
        place: &PlaceId,
    ) -> Result<bool, TopologyError> {
        match scope {
            LocationSelector::Anywhere => Ok(true),
            LocationSelector::Within(ancestor) => self.contains(ancestor, place),
        }
    }
}

/// A retrieval scope for the guidance/lookup service — "within the current
/// room", "within the first floor", or anywhere in the home.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Default)]
pub enum LocationSelector {
    /// No location restriction.
    #[default]
    Anywhere,
    /// Restrict to places equal to or inside the named place.
    Within(PlaceId),
}

impl LocationSelector {
    /// Convenience constructor for `Within`.
    pub fn within(place: impl AsRef<str>) -> LocationSelector {
        LocationSelector::Within(PlaceId::new(place))
    }
}

impl fmt::Display for LocationSelector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LocationSelector::Anywhere => f.write_str("anywhere"),
            LocationSelector::Within(p) => write!(f, "within {p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_home() -> Topology {
        let mut t = Topology::new("Home");
        t.add_floor("First Floor").unwrap();
        t.add_floor("Second Floor").unwrap();
        t.add_room("Living Room", "First Floor").unwrap();
        t.add_room("Kitchen", "First Floor").unwrap();
        t.add_room("Bedroom", "Second Floor").unwrap();
        t
    }

    #[test]
    fn place_ids_are_case_insensitive() {
        assert_eq!(PlaceId::new("Living Room"), PlaceId::new("living room"));
        assert_eq!(PlaceId::new("  Hall  ").as_str(), "hall");
    }

    #[test]
    fn containment_works_transitively() {
        let t = sample_home();
        let home = PlaceId::new("home");
        let first = PlaceId::new("first floor");
        let living = PlaceId::new("living room");
        let bedroom = PlaceId::new("bedroom");
        assert!(t.contains(&home, &living).unwrap());
        assert!(t.contains(&first, &living).unwrap());
        assert!(!t.contains(&first, &bedroom).unwrap());
        assert!(t.contains(&living, &living).unwrap());
        assert!(!t.contains(&living, &first).unwrap());
    }

    #[test]
    fn duplicate_and_unknown_places_error() {
        let mut t = sample_home();
        assert!(matches!(
            t.add_room("Living Room", "First Floor"),
            Err(TopologyError::DuplicatePlace(_))
        ));
        assert!(matches!(
            t.add_room("Den", "Basement"),
            Err(TopologyError::UnknownPlace(_))
        ));
        assert!(matches!(
            t.add_room("Closet", "Living Room"),
            Err(TopologyError::InvalidParent { .. })
        ));
    }

    #[test]
    fn room_under_home_root_is_allowed() {
        let mut t = Topology::new("studio");
        let id = t.add_room("main room", "studio").unwrap();
        assert_eq!(t.kind(&id).unwrap(), PlaceKind::Room);
        assert!(t.floor_of(&id).unwrap().is_none());
    }

    #[test]
    fn floor_of_resolves() {
        let t = sample_home();
        let living = PlaceId::new("living room");
        assert_eq!(
            t.floor_of(&living).unwrap().unwrap(),
            &PlaceId::new("first floor")
        );
    }

    #[test]
    fn enumeration_is_ordered() {
        let t = sample_home();
        let rooms: Vec<_> = t.rooms().iter().map(|p| p.as_str().to_owned()).collect();
        assert_eq!(rooms, ["bedroom", "kitchen", "living room"]);
        assert_eq!(t.places_of_kind(PlaceKind::Floor).len(), 2);
    }

    #[test]
    fn location_selector_matching() {
        let t = sample_home();
        let living = PlaceId::new("living room");
        assert!(t.matches(&LocationSelector::Anywhere, &living).unwrap());
        assert!(t
            .matches(&LocationSelector::within("first floor"), &living)
            .unwrap());
        assert!(!t
            .matches(&LocationSelector::within("second floor"), &living)
            .unwrap());
        assert!(t
            .matches(&LocationSelector::within("attic"), &living)
            .is_err());
    }

    #[test]
    #[cfg(feature = "serde")]
    fn serde_round_trip() {
        let t = sample_home();
        let json = serde_json::to_string(&t).unwrap();
        let back: Topology = serde_json::from_str(&json).unwrap();
        assert_eq!(back.rooms().len(), 3);
        assert!(back
            .contains(&PlaceId::new("home"), &PlaceId::new("kitchen"))
            .unwrap());
    }
}
