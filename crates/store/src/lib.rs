//! # cadel-store — durable state for the CADEL home server
//!
//! The paper's home server is a long-lived appliance controller: rules,
//! priority orders, and user-defined words accumulate over months, and
//! the engine holds mid-flight runtime state (active `until` holds,
//! retry/dead-letter queues, breaker states). This crate gives that
//! state a disk life: an append-only, CRC-checksummed, length-prefixed
//! **write-ahead log** plus a **snapshot-and-compact** cycle.
//!
//! The store is deliberately payload-agnostic: records are opaque
//! [`Json`] documents (the server layers its record schema on top, see
//! `docs/PERSISTENCE.md`). What this crate owns is the framing:
//!
//! ```text
//! wal.log       = header · record*          snapshot.bin = header · record
//! header        = magic(8) · version(u32)   magic = "CADELWAL" / "CADELSNP"
//! record        = len(u32) · crc32(u32) · payload(len bytes)
//! ```
//!
//! All integers are little-endian; the CRC is CRC-32 (IEEE) over the
//! payload bytes only. On [`Store::open`] the log is scanned from the
//! front: the first record whose length prefix overruns the file, whose
//! checksum mismatches, or whose payload fails to parse as JSON marks
//! the *torn tail* — the file is truncated back to the last good record
//! boundary and the damage is reported (never propagated as an error)
//! via [`RecoveryReport::bytes_truncated`]. A snapshot that fails its
//! own checksum is ignored entirely (the WAL alone must then rebuild
//! state), which keeps snapshot corruption strictly non-fatal.
//!
//! Durability is crash-consistent rather than synchronous by default:
//! appends buffer in the OS page cache unless
//! [`Store::set_sync_on_append`] is enabled or [`Store::sync`] is
//! called. Snapshots are written to a temp file and atomically renamed
//! over the old one before the WAL is truncated, so a crash at any
//! point during [`Store::compact`] leaves either the old or the new
//! snapshot intact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cadel_obs::{LazyCounter, LazyHistogram, Level, Span, Stopwatch};
use cadel_types::json::{self, Json};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

mod crc;

pub use crc::crc32;

static APPENDS: LazyCounter = LazyCounter::new("store_wal_appends_total");
static APPEND_BYTES: LazyCounter = LazyCounter::new("store_wal_append_bytes_total");
static RECOVERIES: LazyCounter = LazyCounter::new("store_recoveries_total");
static RECORDS_REPLAYED: LazyCounter = LazyCounter::new("store_records_replayed_total");
static BYTES_TRUNCATED: LazyCounter = LazyCounter::new("store_bytes_truncated_total");
static SNAPSHOTS_WRITTEN: LazyCounter = LazyCounter::new("store_snapshots_total");
static SNAPSHOTS_USED: LazyCounter = LazyCounter::new("store_snapshots_used_total");
static SNAPSHOTS_CORRUPT: LazyCounter = LazyCounter::new("store_snapshots_corrupt_total");
static RECOVER_NS: LazyHistogram = LazyHistogram::new("store_recover_duration_ns");
static REPLAY_SKIPPED: LazyCounter = LazyCounter::new("store_replay_skipped_total");
static APPEND_FAILURES: LazyCounter = LazyCounter::new("store_append_failures_total");

/// Counts WAL records that decoded cleanly but could not be re-applied by
/// the replaying layer (warn-and-skip recovery). The store frames and
/// checksums records but cannot interpret them, so the layer that owns
/// the record schema reports its skips here — one shared counter keeps
/// "lossy recovery" a single alarmable number fleet-wide.
pub fn note_replay_skipped(count: u64) {
    REPLAY_SKIPPED.add(count);
}

/// Magic bytes opening the write-ahead log file.
const WAL_MAGIC: &[u8; 8] = b"CADELWAL";
/// Magic bytes opening the snapshot file.
const SNAP_MAGIC: &[u8; 8] = b"CADELSNP";
/// On-disk format version for both files.
const FORMAT_VERSION: u32 = 1;
/// Header size: 8 bytes of magic plus a little-endian `u32` version.
const HEADER_LEN: u64 = 12;
/// Sanity cap on a single record's payload. A length prefix above this
/// is treated as corruption (truncate here) rather than an allocation.
const MAX_RECORD_LEN: u32 = 64 * 1024 * 1024;

/// Name of the write-ahead log file inside the store directory.
pub const WAL_FILE: &str = "wal.log";
/// Name of the snapshot file inside the store directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";

/// Errors from the durable store.
///
/// Note what is *not* here: corruption. Torn or corrupt log tails are
/// repaired (truncated) during [`Store::open`] and surfaced through the
/// [`RecoveryReport`], never as an error.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io {
        /// What the store was doing when the I/O failed.
        context: &'static str,
        /// The operating-system error.
        source: std::io::Error,
    },
    /// The file on disk declares a format version this build cannot
    /// read. Refusing to guess beats silently mangling newer data.
    UnsupportedVersion {
        /// Which file declared the version.
        file: &'static str,
        /// The version found on disk.
        found: u32,
    },
    /// Appending a record to the WAL failed — disk full (`ENOSPC`),
    /// quota, a yanked volume. Distinguished from [`StoreError::Io`] so
    /// callers can degrade (flip read-only, quarantine the tenant)
    /// instead of treating it like an unreadable store: everything
    /// already on disk is still intact and recoverable.
    Append {
        /// The operating-system error (or an injected fault).
        source: std::io::Error,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { context, source } => {
                write!(f, "store i/o failed while {context}: {source}")
            }
            StoreError::UnsupportedVersion { file, found } => write!(
                f,
                "{file} declares format version {found}, this build reads version {FORMAT_VERSION}"
            ),
            StoreError::Append { source } => {
                write!(f, "wal append failed: {source}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::UnsupportedVersion { .. } => None,
            StoreError::Append { source } => Some(source),
        }
    }
}

fn io_err(context: &'static str) -> impl FnOnce(std::io::Error) -> StoreError {
    move |source| StoreError::Io { context, source }
}

/// What [`Store::open`] found and repaired on the way up.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// CRC-valid, JSON-valid records decoded from the log, in order.
    pub records_replayed: u64,
    /// Bytes cut from the torn/corrupt tail of the log (0 for a clean
    /// shutdown). Includes a header rewrite if the header itself was
    /// damaged.
    pub bytes_truncated: u64,
    /// Whether a valid snapshot was loaded before the log records.
    pub snapshot_used: bool,
    /// Records that decoded cleanly but were skipped (warn-and-skip) by
    /// the replaying layer. The store itself always leaves this 0 — the
    /// layer interpreting the records (e.g. the home server) fills it in
    /// and reports the same number via [`note_replay_skipped`], so a
    /// quarantine-restart can alarm on lossy recovery instead of
    /// silently dropping records.
    pub records_skipped: u64,
}

impl RecoveryReport {
    /// Whether recovery dropped anything: torn-tail bytes or records the
    /// replaying layer could not re-apply.
    pub fn is_lossy(&self) -> bool {
        self.bytes_truncated > 0 || self.records_skipped > 0
    }
}

/// Everything recovered by [`Store::open`]: the snapshot (if any), the
/// decoded log records in append order, and the repair report.
#[derive(Debug)]
pub struct Recovered {
    /// The last snapshot written by [`Store::compact`], if one exists
    /// and passed its checksum.
    pub snapshot: Option<Json>,
    /// Log records appended after that snapshot, oldest first.
    pub records: Vec<Json>,
    /// What was replayed and what was repaired.
    pub report: RecoveryReport,
}

/// An append-only, checksummed write-ahead log with snapshot-compaction,
/// rooted in one directory.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    wal: File,
    wal_len: u64,
    sync_on_append: bool,
    /// Fault injection: when set, every append fails as if the disk were
    /// full. See [`Store::set_fail_appends`].
    fail_appends: bool,
}

/// Name of the per-tenant segment directory inside a shared fleet store
/// root. See [`segment_dir`].
pub const SEGMENTS_DIR: &str = "tenants";

/// The canonical per-tenant segment directory under a shared fleet store
/// root: `<root>/tenants/<name>/`. Each segment is a complete,
/// self-contained [`Store`] (its own `wal.log` + `snapshot.bin`), so one
/// tenant's corruption, disk-full state, or recovery never touches its
/// neighbours, and a single tenant can be recovered (or discarded) by
/// pointing [`Store::open`] at its segment alone. The layout is pinned by
/// the crash-matrix tests; changing it is a format change.
pub fn segment_dir(root: impl AsRef<Path>, name: &str) -> PathBuf {
    root.as_ref().join(SEGMENTS_DIR).join(name)
}

impl Store {
    /// Opens (creating if absent) the store rooted at `dir`, scanning
    /// and repairing the log. Returns the store handle plus everything
    /// recovered from disk.
    pub fn open(dir: impl AsRef<Path>) -> Result<(Store, Recovered), StoreError> {
        let sw = Stopwatch::start();
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(io_err("creating store directory"))?;

        let (snapshot, snapshot_corrupt) = read_snapshot(&dir.join(SNAPSHOT_FILE))?;
        let wal_path = dir.join(WAL_FILE);
        let mut wal = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&wal_path)
            .map_err(io_err("opening write-ahead log"))?;

        let mut bytes = Vec::new();
        wal.read_to_end(&mut bytes)
            .map_err(io_err("reading write-ahead log"))?;
        let scan = scan_wal(&bytes)?;

        let valid_len = scan.valid_len;
        if valid_len != bytes.len() as u64 || scan.rewrite_header {
            if scan.rewrite_header {
                wal.set_len(0).map_err(io_err("truncating damaged log"))?;
                wal.seek(SeekFrom::Start(0))
                    .map_err(io_err("rewinding log"))?;
                wal.write_all(&header_bytes(WAL_MAGIC))
                    .map_err(io_err("writing log header"))?;
            } else {
                wal.set_len(valid_len)
                    .map_err(io_err("truncating torn log tail"))?;
            }
            wal.sync_data().map_err(io_err("syncing repaired log"))?;
        }
        wal.seek(SeekFrom::End(0))
            .map_err(io_err("seeking to log end"))?;

        let report = RecoveryReport {
            records_replayed: scan.records.len() as u64,
            bytes_truncated: scan.bytes_truncated,
            snapshot_used: snapshot.is_some(),
            records_skipped: 0,
        };
        RECOVERIES.inc();
        RECORDS_REPLAYED.add(report.records_replayed);
        BYTES_TRUNCATED.add(report.bytes_truncated);
        if report.snapshot_used {
            SNAPSHOTS_USED.inc();
        }
        if snapshot_corrupt {
            SNAPSHOTS_CORRUPT.inc();
        }
        let mut span = Span::with_level("store.recover", Level::Info);
        span.add_field("records", report.records_replayed);
        span.add_field("bytes_truncated", report.bytes_truncated);
        span.add_field("snapshot_used", report.snapshot_used);
        RECOVER_NS.record(&sw);
        drop(span);

        let store = Store {
            dir,
            wal,
            wal_len: valid_len.max(HEADER_LEN),
            sync_on_append: false,
            fail_appends: false,
        };
        let recovered = Recovered {
            snapshot,
            records: scan.records,
            report,
        };
        Ok((store, recovered))
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current byte length of the write-ahead log, including header.
    ///
    /// Exposed so crash-injection harnesses can mark record boundaries.
    pub fn wal_len(&self) -> u64 {
        self.wal_len
    }

    /// When enabled, every [`Store::append`] is followed by an fdatasync.
    /// Off by default: the tests and soak harness favour throughput, and
    /// crash-consistency (prefix durability) holds either way.
    pub fn set_sync_on_append(&mut self, on: bool) {
        self.sync_on_append = on;
    }

    /// Fault injection: when enabled, every [`Store::append`] fails with
    /// [`StoreError::Append`] as if the disk were full (`ENOSPC`). The
    /// store stays otherwise healthy — reads, syncs of already-buffered
    /// data and recovery keep working — which is exactly the shape of a
    /// real out-of-space condition. Used by the fleet soak and the
    /// read-only-flip tests; a sibling of `cadel-upnp`'s `FaultPlan`.
    pub fn set_fail_appends(&mut self, on: bool) {
        self.fail_appends = on;
    }

    /// Appends one record to the log. The payload is the compact JSON
    /// encoding of `record`; framing and checksum are added here.
    ///
    /// # Errors
    ///
    /// A failed write (disk full, quota, injected fault) returns the
    /// typed [`StoreError::Append`] so callers can degrade to read-only
    /// instead of treating the store as lost.
    pub fn append(&mut self, record: &Json) -> Result<(), StoreError> {
        if self.fail_appends {
            APPEND_FAILURES.inc();
            return Err(StoreError::Append {
                source: std::io::Error::new(
                    std::io::ErrorKind::StorageFull,
                    "injected append fault (simulated ENOSPC)",
                ),
            });
        }
        let payload = record.to_compact();
        let bytes = payload.as_bytes();
        let mut frame = Vec::with_capacity(8 + bytes.len());
        frame.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(bytes).to_le_bytes());
        frame.extend_from_slice(bytes);
        if let Err(source) = self.wal.write_all(&frame) {
            APPEND_FAILURES.inc();
            return Err(StoreError::Append { source });
        }
        if let Err(source) = self
            .sync_on_append
            .then(|| self.wal.sync_data())
            .transpose()
        {
            APPEND_FAILURES.inc();
            return Err(StoreError::Append { source });
        }
        self.wal_len += frame.len() as u64;
        APPENDS.inc();
        APPEND_BYTES.add(frame.len() as u64);
        Ok(())
    }

    /// Forces buffered appends to stable storage.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.wal.sync_data().map_err(io_err("syncing log"))
    }

    /// Writes `snapshot` atomically (temp file + rename) and truncates
    /// the log back to an empty header. After this, recovery loads the
    /// snapshot and replays only records appended later.
    pub fn compact(&mut self, snapshot: &Json) -> Result<(), StoreError> {
        let payload = snapshot.to_compact();
        let bytes = payload.as_bytes();
        let mut frame = header_bytes(SNAP_MAGIC);
        frame.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(bytes).to_le_bytes());
        frame.extend_from_slice(bytes);

        let tmp_path = self.dir.join("snapshot.tmp");
        let final_path = self.dir.join(SNAPSHOT_FILE);
        let mut tmp = File::create(&tmp_path).map_err(io_err("creating snapshot temp file"))?;
        tmp.write_all(&frame)
            .map_err(io_err("writing snapshot payload"))?;
        tmp.sync_all().map_err(io_err("syncing snapshot"))?;
        drop(tmp);
        fs::rename(&tmp_path, &final_path).map_err(io_err("publishing snapshot"))?;

        // Only truncate the log once the snapshot is durably in place.
        self.wal
            .set_len(HEADER_LEN)
            .map_err(io_err("compacting log"))?;
        self.wal
            .seek(SeekFrom::Start(HEADER_LEN))
            .map_err(io_err("rewinding compacted log"))?;
        self.wal
            .sync_data()
            .map_err(io_err("syncing compacted log"))?;
        self.wal_len = HEADER_LEN;
        SNAPSHOTS_WRITTEN.inc();
        Ok(())
    }
}

fn header_bytes(magic: &[u8; 8]) -> Vec<u8> {
    let mut h = Vec::with_capacity(HEADER_LEN as usize);
    h.extend_from_slice(magic);
    h.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    h
}

struct WalScan {
    records: Vec<Json>,
    /// Byte offset of the end of the last good record (file should be
    /// truncated here if shorter than the raw length).
    valid_len: u64,
    bytes_truncated: u64,
    /// The header itself was missing/damaged: reset the whole file.
    rewrite_header: bool,
}

fn scan_wal(bytes: &[u8]) -> Result<WalScan, StoreError> {
    let total = bytes.len() as u64;
    if bytes.is_empty() {
        // Fresh file: stamp a header.
        return Ok(WalScan {
            records: Vec::new(),
            valid_len: 0,
            bytes_truncated: 0,
            rewrite_header: true,
        });
    }
    if total < HEADER_LEN || &bytes[0..8] != WAL_MAGIC {
        // Unreadable header: everything after it is unattributable.
        return Ok(WalScan {
            records: Vec::new(),
            valid_len: 0,
            bytes_truncated: total,
            rewrite_header: true,
        });
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion {
            file: WAL_FILE,
            found: version,
        });
    }

    let mut records = Vec::new();
    let mut offset = HEADER_LEN as usize;
    loop {
        let remaining = bytes.len() - offset;
        if remaining == 0 {
            break; // clean end
        }
        if remaining < 8 {
            break; // torn length/crc prefix
        }
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap());
        if len > MAX_RECORD_LEN || (len as usize) > remaining - 8 {
            break; // implausible or torn payload
        }
        let payload = &bytes[offset + 8..offset + 8 + len as usize];
        if crc32(payload) != crc {
            break; // bit rot or torn write inside the payload
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            break;
        };
        let Ok(doc) = json::parse(text) else {
            break; // checksummed garbage: a writer bug, stop trusting the tail
        };
        records.push(doc);
        offset += 8 + len as usize;
    }
    Ok(WalScan {
        records,
        valid_len: offset as u64,
        bytes_truncated: total - offset as u64,
        rewrite_header: false,
    })
}

/// Reads and validates the snapshot file. Returns `(snapshot, corrupt)`
/// where `corrupt` notes a present-but-invalid snapshot (ignored).
fn read_snapshot(path: &Path) -> Result<(Option<Json>, bool), StoreError> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((None, false)),
        Err(e) => return Err(io_err("reading snapshot")(e)),
    };
    if bytes.len() < (HEADER_LEN as usize) + 8 || &bytes[0..8] != SNAP_MAGIC {
        return Ok((None, true));
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion {
            file: SNAPSHOT_FILE,
            found: version,
        });
    }
    let start = HEADER_LEN as usize;
    let len = u32::from_le_bytes(bytes[start..start + 4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[start + 4..start + 8].try_into().unwrap());
    let Some(payload) = bytes.get(start + 8..start + 8 + len) else {
        return Ok((None, true));
    };
    if crc32(payload) != crc {
        return Ok((None, true));
    }
    let Ok(text) = std::str::from_utf8(payload) else {
        return Ok((None, true));
    };
    match json::parse(text) {
        Ok(doc) => Ok((Some(doc), false)),
        Err(_) => Ok((None, true)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cadel-store-{}-{}", std::process::id(), tag));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn rec(n: i64) -> Json {
        Json::obj(vec![("type", Json::str("test")), ("n", Json::Int(n))])
    }

    #[test]
    fn round_trips_records_across_reopen() {
        let dir = temp_dir("roundtrip");
        {
            let (mut store, recovered) = Store::open(&dir).unwrap();
            assert_eq!(recovered.report, RecoveryReport::default());
            for n in 0..5 {
                store.append(&rec(n)).unwrap();
            }
            store.sync().unwrap();
        }
        let (_store, recovered) = Store::open(&dir).unwrap();
        assert_eq!(recovered.report.records_replayed, 5);
        assert_eq!(recovered.report.bytes_truncated, 0);
        assert!(!recovered.report.snapshot_used);
        let ns: Vec<i64> = recovered
            .records
            .iter()
            .map(|r| r.get("n").and_then(Json::as_int).unwrap())
            .collect();
        assert_eq!(ns, vec![0, 1, 2, 3, 4]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_at_last_good_boundary() {
        let dir = temp_dir("torn");
        let boundary;
        {
            let (mut store, _) = Store::open(&dir).unwrap();
            store.append(&rec(1)).unwrap();
            store.append(&rec(2)).unwrap();
            boundary = store.wal_len();
            store.append(&rec(3)).unwrap();
        }
        // Tear the last record: keep its frame minus the final 3 bytes.
        let path = dir.join(WAL_FILE);
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 3]).unwrap();

        let (store, recovered) = Store::open(&dir).unwrap();
        assert_eq!(recovered.report.records_replayed, 2);
        assert_eq!(
            recovered.report.bytes_truncated,
            full.len() as u64 - 3 - boundary
        );
        assert_eq!(store.wal_len(), boundary);
        assert_eq!(fs::metadata(&path).unwrap().len(), boundary);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_payload_byte_truncates_from_that_record() {
        let dir = temp_dir("corrupt");
        let boundary;
        {
            let (mut store, _) = Store::open(&dir).unwrap();
            store.append(&rec(1)).unwrap();
            boundary = store.wal_len();
            store.append(&rec(2)).unwrap();
            store.append(&rec(3)).unwrap();
        }
        let path = dir.join(WAL_FILE);
        let mut full = fs::read(&path).unwrap();
        // Flip a byte inside record 2's payload (just past its 8-byte
        // frame prefix).
        let idx = boundary as usize + 8;
        full[idx] ^= 0xFF;
        fs::write(&path, &full).unwrap();

        let (_store, recovered) = Store::open(&dir).unwrap();
        assert_eq!(recovered.report.records_replayed, 1);
        // Record 3 is unreachable past the corrupt record: both go.
        assert_eq!(
            recovered.report.bytes_truncated,
            full.len() as u64 - boundary
        );
        assert_eq!(fs::metadata(&path).unwrap().len(), boundary);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_compact_then_recover_uses_snapshot() {
        let dir = temp_dir("snapshot");
        {
            let (mut store, _) = Store::open(&dir).unwrap();
            store.append(&rec(1)).unwrap();
            store.append(&rec(2)).unwrap();
            store
                .compact(&Json::obj(vec![("state", Json::Int(42))]))
                .unwrap();
            store.append(&rec(3)).unwrap();
        }
        let (store, recovered) = Store::open(&dir).unwrap();
        assert!(recovered.report.snapshot_used);
        assert_eq!(recovered.report.records_replayed, 1);
        let snap = recovered.snapshot.unwrap();
        assert_eq!(snap.get("state").and_then(Json::as_int), Some(42));
        assert_eq!(
            recovered.records[0].get("n").and_then(Json::as_int),
            Some(3)
        );
        assert_eq!(
            store.wal_len(),
            fs::metadata(dir.join(WAL_FILE)).unwrap().len()
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_is_ignored_not_fatal() {
        let dir = temp_dir("badsnap");
        {
            let (mut store, _) = Store::open(&dir).unwrap();
            store.append(&rec(1)).unwrap();
            store
                .compact(&Json::obj(vec![("state", Json::Int(7))]))
                .unwrap();
            store.append(&rec(2)).unwrap();
        }
        let snap_path = dir.join(SNAPSHOT_FILE);
        let mut bytes = fs::read(&snap_path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&snap_path, &bytes).unwrap();

        let (_store, recovered) = Store::open(&dir).unwrap();
        assert!(!recovered.report.snapshot_used);
        assert!(recovered.snapshot.is_none());
        // The post-snapshot record still replays.
        assert_eq!(recovered.report.records_replayed, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damaged_header_resets_the_log() {
        let dir = temp_dir("header");
        {
            let (mut store, _) = Store::open(&dir).unwrap();
            store.append(&rec(1)).unwrap();
        }
        let path = dir.join(WAL_FILE);
        let mut bytes = fs::read(&path).unwrap();
        bytes[0] = b'X';
        let total = bytes.len() as u64;
        fs::write(&path, &bytes).unwrap();

        let (mut store, recovered) = Store::open(&dir).unwrap();
        assert_eq!(recovered.report.records_replayed, 0);
        assert_eq!(recovered.report.bytes_truncated, total);
        // The reset store is usable again.
        store.append(&rec(9)).unwrap();
        drop(store);
        let (_s, recovered) = Store::open(&dir).unwrap();
        assert_eq!(recovered.report.records_replayed, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unsupported_version_is_an_error() {
        let dir = temp_dir("version");
        {
            let (_store, _) = Store::open(&dir).unwrap();
        }
        let path = dir.join(WAL_FILE);
        let mut bytes = fs::read(&path).unwrap();
        bytes[8] = 99;
        fs::write(&path, &bytes).unwrap();
        match Store::open(&dir) {
            Err(StoreError::UnsupportedVersion { file, found }) => {
                assert_eq!(file, WAL_FILE);
                assert_eq!(found, 99);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_fault_is_typed_and_leaves_the_store_recoverable() {
        let dir = temp_dir("enospc");
        {
            let (mut store, _) = Store::open(&dir).unwrap();
            store.append(&rec(1)).unwrap();
            store.set_fail_appends(true);
            match store.append(&rec(2)) {
                Err(StoreError::Append { source }) => {
                    assert_eq!(source.kind(), std::io::ErrorKind::StorageFull);
                }
                other => panic!("expected StoreError::Append, got {other:?}"),
            }
            // The store is not poisoned: syncing buffered data still works
            // and clearing the fault resumes appends.
            store.sync().unwrap();
            store.set_fail_appends(false);
            store.append(&rec(3)).unwrap();
        }
        let (_store, recovered) = Store::open(&dir).unwrap();
        assert_eq!(recovered.report.records_replayed, 2);
        assert_eq!(recovered.report.bytes_truncated, 0);
        let ns: Vec<i64> = recovered
            .records
            .iter()
            .map(|r| r.get("n").and_then(Json::as_int).unwrap())
            .collect();
        assert_eq!(ns, vec![1, 3]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_dirs_are_disjoint_stores_under_one_root() {
        let root = temp_dir("segments");
        let a_dir = segment_dir(&root, "t0");
        let b_dir = segment_dir(&root, "t1");
        assert_eq!(a_dir, root.join("tenants").join("t0"));
        {
            let (mut a, _) = Store::open(&a_dir).unwrap();
            let (mut b, _) = Store::open(&b_dir).unwrap();
            a.append(&rec(10)).unwrap();
            b.append(&rec(20)).unwrap();
            b.append(&rec(21)).unwrap();
        }
        // Corrupting one segment's log leaves the neighbour untouched.
        let a_wal = a_dir.join(WAL_FILE);
        let bytes = fs::read(&a_wal).unwrap();
        fs::write(&a_wal, &bytes[..bytes.len() - 2]).unwrap();
        let (_sa, ra) = Store::open(&a_dir).unwrap();
        let (_sb, rb) = Store::open(&b_dir).unwrap();
        assert_eq!(ra.report.records_replayed, 0);
        assert!(ra.report.bytes_truncated > 0);
        assert!(ra.report.is_lossy());
        assert_eq!(rb.report.records_replayed, 2);
        assert!(!rb.report.is_lossy());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
