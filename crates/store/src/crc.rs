//! CRC-32 (IEEE 802.3) with a compile-time lookup table.
//!
//! Hand-rolled because the workspace builds fully offline; the table is
//! produced by a `const fn` so there is no init cost or `OnceLock`.

/// Reflected polynomial for CRC-32/ISO-HDLC (zlib, PNG, Ethernet).
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 (IEEE) of `data`, matching zlib's `crc32(0, data)`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}
