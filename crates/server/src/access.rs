//! Per-user device privileges — the paper's §6 future work, implemented:
//! "we are going to implement in our framework some security mechanisms,
//! e.g., for limiting access or allowable operations to each device
//! depending on users' privileges."
//!
//! The model is a small capability ACL:
//!
//! * each user holds a set of [`Privilege`]s per device (or per device
//!   type, or a home-wide default);
//! * [`Privilege::Control`] gates registering rules whose *action*
//!   targets the device;
//! * [`Privilege::Observe`] gates referencing the device's state or
//!   sensors in rule *conditions* and browsing it through guidance;
//! * [`Privilege::Arbitrate`] gates answering priority prompts that
//!   involve the device (parents arbitrate the TV; children do not).
//!
//! Policies are deny-by-default once enabled; a fresh [`AccessControl`]
//! starts in permissive mode so existing deployments keep working until
//! an administrator turns enforcement on.

use cadel_rule::Rule;
use cadel_types::{DeviceId, PersonId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// What a user may do with a device.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Privilege {
    /// Reference the device's state/sensors in conditions and browse it.
    Observe,
    /// Target the device with rule actions.
    Control,
    /// Take part in priority decisions over the device.
    Arbitrate,
}

/// The scope a grant applies to.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Scope {
    /// One concrete device.
    Device(DeviceId),
    /// Every device of a device-type URN (e.g. all lights).
    DeviceType(String),
    /// Every device in the home.
    AllDevices,
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scope::Device(d) => write!(f, "device {d}"),
            Scope::DeviceType(t) => write!(f, "devices of type {t}"),
            Scope::AllDevices => f.write_str("all devices"),
        }
    }
}

/// A denial, explaining exactly what was missing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessDenied {
    user: PersonId,
    device: DeviceId,
    privilege: Privilege,
}

impl AccessDenied {
    /// The user that was denied.
    pub fn user(&self) -> &PersonId {
        &self.user
    }

    /// The device involved.
    pub fn device(&self) -> &DeviceId {
        &self.device
    }

    /// The missing privilege.
    pub fn privilege(&self) -> Privilege {
        self.privilege
    }
}

impl fmt::Display for AccessDenied {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "user {} lacks the {:?} privilege on device {}",
            self.user, self.privilege, self.device
        )
    }
}

impl std::error::Error for AccessDenied {}

/// The access-control policy store.
#[derive(Clone, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AccessControl {
    /// Deny-by-default only when enforcement is on.
    enforcing: bool,
    grants: BTreeMap<PersonId, BTreeMap<Scope, BTreeSet<Privilege>>>,
    /// Device-type lookup: UDN → device type URN (lower case). Populated
    /// by the server from registry descriptions.
    device_types: BTreeMap<DeviceId, String>,
}

impl AccessControl {
    /// Creates a permissive (non-enforcing) policy store.
    pub fn new() -> AccessControl {
        AccessControl::default()
    }

    /// Turns enforcement on or off. While off, every check passes.
    pub fn set_enforcing(&mut self, enforcing: bool) {
        self.enforcing = enforcing;
    }

    /// Whether enforcement is on.
    pub fn is_enforcing(&self) -> bool {
        self.enforcing
    }

    /// Registers a device's type so type-scoped grants can match it.
    pub fn register_device_type(&mut self, device: DeviceId, device_type: &str) {
        self.device_types
            .insert(device, device_type.to_ascii_lowercase());
    }

    /// Grants a privilege to a user within a scope.
    pub fn grant(&mut self, user: &PersonId, scope: Scope, privilege: Privilege) {
        self.grants
            .entry(user.clone())
            .or_default()
            .entry(scope)
            .or_default()
            .insert(privilege);
    }

    /// Grants every privilege on every device (an administrator).
    pub fn grant_all(&mut self, user: &PersonId) {
        for p in [Privilege::Observe, Privilege::Control, Privilege::Arbitrate] {
            self.grant(user, Scope::AllDevices, p);
        }
    }

    /// Revokes a privilege within a scope (no-op when absent).
    pub fn revoke(&mut self, user: &PersonId, scope: &Scope, privilege: Privilege) {
        if let Some(scopes) = self.grants.get_mut(user) {
            if let Some(privileges) = scopes.get_mut(scope) {
                privileges.remove(&privilege);
                if privileges.is_empty() {
                    scopes.remove(scope);
                }
            }
        }
    }

    /// Whether `user` holds `privilege` on `device` (always `true` while
    /// not enforcing).
    pub fn allows(&self, user: &PersonId, device: &DeviceId, privilege: Privilege) -> bool {
        if !self.enforcing {
            return true;
        }
        let Some(scopes) = self.grants.get(user) else {
            return false;
        };
        if let Some(ps) = scopes.get(&Scope::AllDevices) {
            if ps.contains(&privilege) {
                return true;
            }
        }
        if let Some(device_type) = self.device_types.get(device) {
            if let Some(ps) = scopes.get(&Scope::DeviceType(device_type.clone())) {
                if ps.contains(&privilege) {
                    return true;
                }
            }
        }
        scopes
            .get(&Scope::Device(device.clone()))
            .map(|ps| ps.contains(&privilege))
            .unwrap_or(false)
    }

    /// Checks a privilege, returning the explanatory denial on failure.
    ///
    /// # Errors
    ///
    /// Returns [`AccessDenied`] naming the user, device and privilege.
    pub fn check(
        &self,
        user: &PersonId,
        device: &DeviceId,
        privilege: Privilege,
    ) -> Result<(), AccessDenied> {
        if self.allows(user, device, privilege) {
            Ok(())
        } else {
            Err(AccessDenied {
                user: user.clone(),
                device: device.clone(),
                privilege,
            })
        }
    }

    /// Checks everything a rule registration requires of its owner:
    /// [`Privilege::Control`] on the action's device and
    /// [`Privilege::Observe`] on every device referenced by the condition.
    ///
    /// # Errors
    ///
    /// Returns the first [`AccessDenied`] encountered.
    pub fn check_rule(&self, rule: &Rule) -> Result<(), AccessDenied> {
        if !self.enforcing {
            return Ok(());
        }
        self.check(rule.owner(), rule.action().device(), Privilege::Control)?;
        let mut observed: BTreeSet<DeviceId> = BTreeSet::new();
        for atom in rule.condition().atoms() {
            if let Some(key) = atom.sensor_key() {
                observed.insert(key.device().clone());
            }
        }
        for device in observed {
            self.check(rule.owner(), &device, Privilege::Observe)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadel_rule::{ActionSpec, Atom, Condition, ConstraintAtom, Verb};
    use cadel_simplex::RelOp;
    use cadel_types::{Quantity, RuleId, SensorKey, Unit};

    fn tv() -> DeviceId {
        DeviceId::new("tv-lr")
    }

    fn sample_rule(owner: &str) -> Rule {
        Rule::builder(PersonId::new(owner))
            .condition(Condition::Atom(Atom::Constraint(ConstraintAtom::new(
                SensorKey::new(DeviceId::new("thermo-lr"), "temperature"),
                RelOp::Gt,
                Quantity::from_integer(26, Unit::Celsius),
            ))))
            .action(ActionSpec::new(tv(), Verb::TurnOn))
            .build(RuleId::new(1))
            .unwrap()
    }

    #[test]
    fn permissive_until_enforcing() {
        let acl = AccessControl::new();
        assert!(acl.allows(&PersonId::new("kid"), &tv(), Privilege::Control));
        assert!(acl.check_rule(&sample_rule("kid")).is_ok());
    }

    #[test]
    fn deny_by_default_once_enforcing() {
        let mut acl = AccessControl::new();
        acl.set_enforcing(true);
        assert!(!acl.allows(&PersonId::new("kid"), &tv(), Privilege::Control));
        let err = acl
            .check(&PersonId::new("kid"), &tv(), Privilege::Control)
            .unwrap_err();
        assert_eq!(err.privilege(), Privilege::Control);
        assert!(err.to_string().contains("kid"));
        assert!(err.to_string().contains("tv-lr"));
    }

    #[test]
    fn device_scoped_grant() {
        let mut acl = AccessControl::new();
        acl.set_enforcing(true);
        let kid = PersonId::new("kid");
        acl.grant(&kid, Scope::Device(tv()), Privilege::Observe);
        assert!(acl.allows(&kid, &tv(), Privilege::Observe));
        assert!(!acl.allows(&kid, &tv(), Privilege::Control));
        assert!(!acl.allows(&kid, &DeviceId::new("stereo-lr"), Privilege::Observe));
    }

    #[test]
    fn type_scoped_grant_covers_registered_devices() {
        let mut acl = AccessControl::new();
        acl.set_enforcing(true);
        let kid = PersonId::new("kid");
        acl.register_device_type(DeviceId::new("light-hall"), "urn:cadel:device:light:1");
        acl.register_device_type(DeviceId::new("lamp-lr"), "urn:cadel:device:light:1");
        acl.grant(
            &kid,
            Scope::DeviceType("urn:cadel:device:light:1".into()),
            Privilege::Control,
        );
        assert!(acl.allows(&kid, &DeviceId::new("light-hall"), Privilege::Control));
        assert!(acl.allows(&kid, &DeviceId::new("lamp-lr"), Privilege::Control));
        assert!(!acl.allows(&kid, &tv(), Privilege::Control));
    }

    #[test]
    fn grant_all_and_revoke() {
        let mut acl = AccessControl::new();
        acl.set_enforcing(true);
        let parent = PersonId::new("alan");
        acl.grant_all(&parent);
        assert!(acl.allows(&parent, &tv(), Privilege::Arbitrate));
        acl.revoke(&parent, &Scope::AllDevices, Privilege::Arbitrate);
        assert!(!acl.allows(&parent, &tv(), Privilege::Arbitrate));
        assert!(acl.allows(&parent, &tv(), Privilege::Control));
    }

    #[test]
    fn rule_check_requires_control_and_observe() {
        let mut acl = AccessControl::new();
        acl.set_enforcing(true);
        let kid = PersonId::new("kid");
        let rule = sample_rule("kid");
        // Control alone is not enough: the condition observes the
        // thermometer.
        acl.grant(&kid, Scope::Device(tv()), Privilege::Control);
        let err = acl.check_rule(&rule).unwrap_err();
        assert_eq!(err.device().as_str(), "thermo-lr");
        assert_eq!(err.privilege(), Privilege::Observe);
        // Observe on the thermometer completes the requirement.
        acl.grant(
            &kid,
            Scope::Device(DeviceId::new("thermo-lr")),
            Privilege::Observe,
        );
        assert!(acl.check_rule(&rule).is_ok());
    }

    #[test]
    #[cfg(feature = "serde")]
    fn serde_round_trip() {
        let mut acl = AccessControl::new();
        acl.set_enforcing(true);
        acl.grant(&PersonId::new("tom"), Scope::AllDevices, Privilege::Observe);
        let json = serde_json::to_string(&acl).unwrap();
        let back: AccessControl = serde_json::from_str(&json).unwrap();
        assert!(back.is_enforcing());
        assert!(back.allows(&PersonId::new("tom"), &tv(), Privilege::Observe));
    }
}
