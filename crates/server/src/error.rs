//! Home-server errors.

use crate::access::AccessDenied;
use cadel_conflict::ConflictError;
use cadel_engine::EngineError;
use cadel_lang::LangError;
use cadel_rule::RuleError;
use cadel_types::{PersonId, RuleId};
use cadel_upnp::UpnpError;
use std::error::Error;
use std::fmt;

/// Errors raised by the home server's workflows.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServerError {
    /// Parsing or compiling a CADEL sentence failed.
    Lang(LangError),
    /// The rule layer failed.
    Rule(RuleError),
    /// Consistency/conflict checking failed.
    Conflict(ConflictError),
    /// The execution engine failed.
    Engine(EngineError),
    /// A device interaction failed.
    Upnp(UpnpError),
    /// The referenced user is not registered.
    UnknownUser(PersonId),
    /// A user with this id already exists.
    DuplicateUser(PersonId),
    /// No pending registration with this ticket exists.
    UnknownPending(RuleId),
    /// The access-control policy denied the operation.
    AccessDenied(AccessDenied),
    /// The durable store failed (WAL append/recovery/snapshot I/O, or a
    /// malformed persisted record). Carries the rendered store error so
    /// this enum stays cheaply clonable and comparable.
    Store(String),
    /// The server is read-only: a WAL append failed (disk full or other
    /// append I/O error) and durable mutations are rejected until the
    /// tenant is restarted against a healthy store. In-memory state is
    /// still consistent — the failed mutation was never applied.
    ReadOnly,
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Lang(e) => write!(f, "{e}"),
            ServerError::Rule(e) => write!(f, "rule error: {e}"),
            ServerError::Conflict(e) => write!(f, "conflict error: {e}"),
            ServerError::Engine(e) => write!(f, "engine error: {e}"),
            ServerError::Upnp(e) => write!(f, "device error: {e}"),
            ServerError::UnknownUser(p) => write!(f, "unknown user {p}"),
            ServerError::DuplicateUser(p) => write!(f, "user {p} already exists"),
            ServerError::UnknownPending(id) => {
                write!(f, "no pending registration for {id}")
            }
            ServerError::AccessDenied(d) => write!(f, "access denied: {d}"),
            ServerError::Store(message) => write!(f, "store error: {message}"),
            ServerError::ReadOnly => {
                write!(f, "server is read-only after a failed wal append")
            }
        }
    }
}

impl Error for ServerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServerError::Lang(e) => Some(e),
            ServerError::Rule(e) => Some(e),
            ServerError::Conflict(e) => Some(e),
            ServerError::Engine(e) => Some(e),
            ServerError::Upnp(e) => Some(e),
            ServerError::AccessDenied(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LangError> for ServerError {
    fn from(e: LangError) -> Self {
        ServerError::Lang(e)
    }
}

impl From<RuleError> for ServerError {
    fn from(e: RuleError) -> Self {
        ServerError::Rule(e)
    }
}

impl From<ConflictError> for ServerError {
    fn from(e: ConflictError) -> Self {
        ServerError::Conflict(e)
    }
}

impl From<EngineError> for ServerError {
    fn from(e: EngineError) -> Self {
        ServerError::Engine(e)
    }
}

impl From<UpnpError> for ServerError {
    fn from(e: UpnpError) -> Self {
        ServerError::Upnp(e)
    }
}

impl From<AccessDenied> for ServerError {
    fn from(e: AccessDenied) -> Self {
        ServerError::AccessDenied(e)
    }
}

impl From<cadel_store::StoreError> for ServerError {
    fn from(e: cadel_store::StoreError) -> Self {
        ServerError::Store(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_well_behaved() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ServerError>();
        let e = ServerError::UnknownUser(PersonId::new("ghost"));
        assert!(e.to_string().contains("ghost"));
        assert!(e.source().is_none());
    }
}
