//! WAL record and snapshot codecs for the home server's durable state.
//!
//! Every durable mutation the server performs appends exactly **one**
//! JSON record to the write-ahead log before it is applied (see
//! `docs/PERSISTENCE.md`). Records reuse the stable rule/condition JSON
//! schema from `cadel_rule::codec` for their payloads, so a log written
//! by one build replays on another as long as that schema holds.
//!
//! Record set (`"type"` discriminator):
//!
//! | type              | payload                                    |
//! |-------------------|--------------------------------------------|
//! | `user_added`      | `name` (display name)                      |
//! | `word_defined`    | `user`, `sentence` (original CADEL text)   |
//! | `rule_registered` | `rule`                                     |
//! | `rule_arbitrated` | `rule`, `priority`                         |
//! | `rule_removed`    | `id`                                       |
//! | `rule_customized` | `rule` (full replacement, same id)         |
//! | `priority_added`  | `priority`                                 |
//! | `freshness`       | `policy`                                   |
//! | `runtime`         | `state` (full engine runtime checkpoint)   |
//!
//! Replay applies records as *post-decision* semantic mutations: a
//! replayed `rule_registered` goes straight into the engine without
//! re-running the consistency/conflict workflow (the decision was
//! already made and logged), while a replayed `word_defined` re-runs
//! the original sentence through `submit` so the private dictionary is
//! rebuilt by the same code that built it live.

use crate::error::ServerError;
use cadel_conflict::PriorityOrder;
use cadel_engine::{freshness_policy_to_json, FreshnessPolicy};
use cadel_rule::codec::{condition_from_json, condition_to_json, rule_from_json, rule_to_json};
use cadel_rule::Rule;
use cadel_types::json::Json;
use cadel_types::{DeviceId, PersonId, RuleId};

pub(crate) fn user_added(name: &str) -> Json {
    Json::obj(vec![
        ("type", Json::str("user_added")),
        ("name", Json::str(name)),
    ])
}

pub(crate) fn word_defined(user: &PersonId, sentence: &str) -> Json {
    Json::obj(vec![
        ("type", Json::str("word_defined")),
        ("user", Json::str(user.as_str())),
        ("sentence", Json::str(sentence)),
    ])
}

pub(crate) fn rule_registered(rule: &Rule) -> Json {
    Json::obj(vec![
        ("type", Json::str("rule_registered")),
        ("rule", rule_to_json(rule)),
    ])
}

pub(crate) fn rule_arbitrated(rule: &Rule, priority: &PriorityOrder) -> Json {
    Json::obj(vec![
        ("type", Json::str("rule_arbitrated")),
        ("rule", rule_to_json(rule)),
        ("priority", priority_to_json(priority)),
    ])
}

pub(crate) fn rule_removed(id: RuleId) -> Json {
    Json::obj(vec![
        ("type", Json::str("rule_removed")),
        ("id", Json::Int(id.raw() as i64)),
    ])
}

pub(crate) fn rule_customized(rule: &Rule) -> Json {
    Json::obj(vec![
        ("type", Json::str("rule_customized")),
        ("rule", rule_to_json(rule)),
    ])
}

pub(crate) fn priority_added(priority: &PriorityOrder) -> Json {
    Json::obj(vec![
        ("type", Json::str("priority_added")),
        ("priority", priority_to_json(priority)),
    ])
}

pub(crate) fn freshness(policy: &FreshnessPolicy) -> Json {
    Json::obj(vec![
        ("type", Json::str("freshness")),
        ("policy", freshness_policy_to_json(policy)),
    ])
}

pub(crate) fn runtime(state: Json) -> Json {
    Json::obj(vec![("type", Json::str("runtime")), ("state", state)])
}

/// Serializes a priority order: device, ranking (highest first), and the
/// optional context condition and label.
pub(crate) fn priority_to_json(order: &PriorityOrder) -> Json {
    let mut members = vec![
        ("device", Json::str(order.device().as_str())),
        (
            "ranking",
            Json::Arr(
                order
                    .ranking()
                    .iter()
                    .map(|id| Json::Int(id.raw() as i64))
                    .collect(),
            ),
        ),
    ];
    if let Some(context) = order.context() {
        members.push(("context", condition_to_json(context)));
    }
    if let Some(label) = order.label() {
        members.push(("label", Json::str(label)));
    }
    Json::obj(members)
}

pub(crate) fn priority_from_json(doc: &Json) -> Result<PriorityOrder, ServerError> {
    let device = DeviceId::new(get_str(doc, "device")?);
    let ranking = doc
        .get("ranking")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("priority record: 'ranking' must be an array"))?
        .iter()
        .map(|id| {
            id.as_int()
                .map(|raw| RuleId::new(raw as u64))
                .ok_or_else(|| bad("priority record: ranking entries must be integers"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let mut order = PriorityOrder::new(device, ranking);
    if let Some(context) = doc.get("context") {
        order = order.in_context(condition_from_json(context).map_err(ServerError::Rule)?);
    }
    if let Some(label) = doc.get("label") {
        let label = label
            .as_str()
            .ok_or_else(|| bad("priority record: 'label' must be a string"))?;
        order = order.with_label(label);
    }
    Ok(order)
}

pub(crate) fn rule_of(doc: &Json, key: &str) -> Result<Rule, ServerError> {
    let payload = doc
        .get(key)
        .ok_or_else(|| bad(format!("record missing field '{key}'")))?;
    rule_from_json(payload).map_err(ServerError::Rule)
}

pub(crate) fn get_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, ServerError> {
    doc.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| bad(format!("record field '{key}' must be a string")))
}

pub(crate) fn get_field<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, ServerError> {
    doc.get(key)
        .ok_or_else(|| bad(format!("record missing field '{key}'")))
}

pub(crate) fn bad(message: impl Into<String>) -> ServerError {
    ServerError::Store(message.into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadel_rule::{Atom, Condition, EventAtom};

    #[test]
    fn priority_order_round_trips() {
        let order = PriorityOrder::new(
            DeviceId::new("aircon-lr"),
            vec![RuleId::new(2), RuleId::new(1)],
        )
        .in_context(Condition::Atom(Atom::Event(EventAtom::new(
            "person:alan",
            "got home from work",
        ))))
        .with_label("Alan got home");
        let doc = priority_to_json(&order);
        let restored = priority_from_json(&doc).unwrap();
        assert_eq!(restored.device(), order.device());
        assert_eq!(restored.ranking(), order.ranking());
        assert_eq!(restored.context(), order.context());
        assert_eq!(restored.label(), order.label());

        let bare = PriorityOrder::new(DeviceId::new("tv-lr"), vec![RuleId::new(7)]);
        let doc = priority_to_json(&bare);
        assert!(doc.get("context").is_none());
        assert!(doc.get("label").is_none());
        let restored = priority_from_json(&doc).unwrap();
        assert!(restored.context().is_none());
        assert!(restored.label().is_none());
    }

    #[test]
    fn malformed_records_name_the_field() {
        let doc = Json::obj(vec![("device", Json::Int(3))]);
        let err = priority_from_json(&doc).unwrap_err();
        assert!(err.to_string().contains("device"));
    }
}
