//! The CADEL home server.
//!
//! "We suppose that most functionalities of the proposed framework are
//! implemented in a home server(s). Any PC or set-top box can be a home
//! server." (paper §4.1)
//!
//! This crate assembles the framework's modules into that server:
//!
//! * [`HomeServer`] — the rule registration workflow (parse → compile →
//!   consistency check → conflict check → priority prompt → store), rule
//!   import/export, and the engine step loop.
//! * [`GuidanceService`] — the retrieval/lookup service behind the rule
//!   description GUI of Figs 4–6 (devices by keyword/action/name/type/
//!   location; sensors by category, location, or user-defined word; the
//!   allowed actions of a device).
//! * [`UserRegistry`] — occupants and their private vocabularies layered
//!   over the shared household dictionary.
//! * [`RegistryResolver`] — the compiler's name environment backed by the
//!   live UPnP registry and the home topology.
//! * [`AccessControl`] — per-user device privileges (the paper's §6
//!   future work): observe/control/arbitrate capabilities scoped to a
//!   device, a device type, or the whole home.
//!
//! Observability for the whole pipeline lives in [`obs`] (re-exported
//! `cadel-obs`): install a collector with [`obs::install`], then query
//! [`HomeServer::metrics_snapshot`] for counters and latency histograms
//! from every stage. See `docs/OBSERVABILITY.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod error;
pub mod guidance;
mod persist;
pub mod resolver;
pub mod server;
pub mod users;

pub use access::{AccessControl, AccessDenied, Privilege, Scope};
pub use error::ServerError;
pub use guidance::{DeviceQuery, GuidanceService, SensorMatch};
pub use resolver::RegistryResolver;
pub use server::{HomeServer, ImportReport, SubmitOutcome};
pub use users::{UserProfile, UserRegistry};

/// The observability layer (re-export of `cadel-obs`): collectors,
/// structured events, and the metrics registry every pipeline stage
/// records into.
pub use cadel_obs as obs;
pub use cadel_obs::{HistogramSummary, MetricsSnapshot};

/// The durable store (re-export of `cadel-store`): the write-ahead log
/// and snapshot machinery behind [`HomeServer::open_at`]
/// (`server::HomeServer::open_at`). See `docs/PERSISTENCE.md`.
pub use cadel_store as store;
pub use cadel_store::{RecoveryReport, Store, StoreError};
