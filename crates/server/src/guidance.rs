//! The rule-description guidance service (paper §4.3, Figs 4–6).
//!
//! During rule description users "retrieve contexts and related sensors"
//! and "retrieve devices" by combining criteria — keyword, action, sensor
//! type, sensor/device name, location, and user-defined words. This module
//! is the programmatic form of those dialog boxes; the GUI of the paper is
//! replaced by example binaries that render the results as text (see
//! DESIGN.md's substitution table).

use cadel_lang::ast::{CondExprAst, CondKind};
use cadel_lang::Dictionary;
use cadel_types::{LocationSelector, Topology, Value};
use cadel_upnp::{ControlPoint, DeviceDescription};

/// A compound query over the device registry (Fig. 6: retrieval by
/// keyword, action, and location — plus name and device type).
///
/// All populated criteria must match (conjunction); an empty query matches
/// every device.
#[derive(Clone, Debug, Default)]
pub struct DeviceQuery {
    keyword: Option<String>,
    action: Option<String>,
    name: Option<String>,
    device_type: Option<String>,
    location: LocationSelector,
}

impl DeviceQuery {
    /// An unconstrained query.
    pub fn new() -> DeviceQuery {
        DeviceQuery::default()
    }

    /// Requires a retrieval keyword ("temperature", "music", …).
    #[must_use]
    pub fn keyword(mut self, keyword: impl Into<String>) -> DeviceQuery {
        self.keyword = Some(keyword.into().to_ascii_lowercase());
        self
    }

    /// Requires the device to offer an action ("TurnOn", "Record", …).
    #[must_use]
    pub fn action(mut self, action: impl Into<String>) -> DeviceQuery {
        self.action = Some(action.into());
        self
    }

    /// Requires a friendly name.
    #[must_use]
    pub fn name(mut self, name: impl Into<String>) -> DeviceQuery {
        self.name = Some(name.into().to_ascii_lowercase());
        self
    }

    /// Requires a device type URN.
    #[must_use]
    pub fn device_type(mut self, device_type: impl Into<String>) -> DeviceQuery {
        self.device_type = Some(device_type.into().to_ascii_lowercase());
        self
    }

    /// Restricts to a location scope.
    #[must_use]
    pub fn within(mut self, location: LocationSelector) -> DeviceQuery {
        self.location = location;
        self
    }

    fn matches(&self, description: &DeviceDescription, topology: &Topology) -> bool {
        if let Some(keyword) = &self.keyword {
            if !description.keywords().iter().any(|k| k == keyword) {
                return false;
            }
        }
        if let Some(action) = &self.action {
            if description.find_action(action).is_none() {
                return false;
            }
        }
        if let Some(name) = &self.name {
            if !description.friendly_name().eq_ignore_ascii_case(name) {
                return false;
            }
        }
        if let Some(device_type) = &self.device_type {
            if !description.device_type().eq_ignore_ascii_case(device_type) {
                return false;
            }
        }
        match (&self.location, description.location()) {
            (LocationSelector::Anywhere, _) => true,
            (_, None) => false,
            (scope, Some(place)) => topology.matches(scope, place).unwrap_or(false),
        }
    }
}

/// One sensor surfaced by a sensor query: the variable, where it lives,
/// and its current reading (Fig. 5 shows users "the value of a sensor").
#[derive(Clone, Debug, PartialEq)]
pub struct SensorMatch {
    /// The device exposing the variable.
    pub device: cadel_types::DeviceId,
    /// The device's friendly name.
    pub device_name: String,
    /// The variable name ("temperature").
    pub variable: String,
    /// The device's location, if known.
    pub location: Option<cadel_types::PlaceId>,
    /// The current reading, when the device answers.
    pub current_value: Option<Value>,
}

/// The guidance/lookup service.
pub struct GuidanceService<'a> {
    control: &'a ControlPoint,
    topology: &'a Topology,
}

impl<'a> GuidanceService<'a> {
    /// Creates the service over a control point and the home topology.
    pub fn new(control: &'a ControlPoint, topology: &'a Topology) -> GuidanceService<'a> {
        GuidanceService { control, topology }
    }

    /// Retrieves devices matching a query, sorted by friendly name.
    pub fn find_devices(&self, query: &DeviceQuery) -> Vec<DeviceDescription> {
        let mut out: Vec<DeviceDescription> = self
            .control
            .registry()
            .descriptions()
            .into_iter()
            .filter(|d| query.matches(d, self.topology))
            .collect();
        out.sort_by(|a, b| a.friendly_name().cmp(b.friendly_name()));
        out
    }

    /// Retrieves sensors by variable category ("temperature") and
    /// location, with live readings (Fig. 5).
    pub fn find_sensors(&self, variable: &str, location: &LocationSelector) -> Vec<SensorMatch> {
        let mut out = Vec::new();
        for description in self.control.registry().descriptions() {
            let Some((_, var)) = description.find_variable(variable) else {
                continue;
            };
            let in_scope = match (location, description.location()) {
                (LocationSelector::Anywhere, _) => true,
                (_, None) => false,
                (scope, Some(place)) => self.topology.matches(scope, place).unwrap_or(false),
            };
            if !in_scope {
                continue;
            }
            let current_value = self.control.query(description.udn(), var.name()).ok();
            out.push(SensorMatch {
                device: description.udn().clone(),
                device_name: description.friendly_name().to_owned(),
                variable: var.name().to_owned(),
                location: description.location().cloned(),
                current_value,
            });
        }
        out.sort_by(|a, b| a.device.cmp(&b.device));
        out
    }

    /// Retrieves the sensors a user-defined condition word refers to
    /// (Fig. 5: "sensors which can measure temperature and humidity can be
    /// retrieved by the word 'hot and stuffy'").
    pub fn sensors_for_word(
        &self,
        word: &str,
        dictionary: &Dictionary,
        location: &LocationSelector,
    ) -> Vec<SensorMatch> {
        let Some(expr) = dictionary.condition(word) else {
            return Vec::new();
        };
        let mut categories = Vec::new();
        collect_sensor_categories(expr, &mut categories);
        categories.sort();
        categories.dedup();
        let mut out = Vec::new();
        for category in categories {
            out.extend(self.find_sensors(&category, location));
        }
        out
    }

    /// The actions a device allows (Fig. 6's action panel).
    pub fn device_actions(&self, udn: &cadel_types::DeviceId) -> Vec<String> {
        self.control
            .registry()
            .description(udn)
            .map(|d| d.action_names().into_iter().map(str::to_owned).collect())
            .unwrap_or_default()
    }

    /// The user-defined words that mention a sensor category — the reverse
    /// lookup of [`GuidanceService::sensors_for_word`] ("information about
    /// … user defined words can be retrieved by specifying sensors").
    pub fn words_for_sensor(&self, category: &str, dictionary: &Dictionary) -> Vec<String> {
        let category = category.to_ascii_lowercase();
        let mut out = Vec::new();
        for word in dictionary.condition_words() {
            if let Some(expr) = dictionary.condition(word) {
                let mut categories = Vec::new();
                collect_sensor_categories(expr, &mut categories);
                if categories.contains(&category) {
                    out.push(word.to_owned());
                }
            }
        }
        out
    }
}

/// Collects the sensor categories (comparison subjects and ambient kinds)
/// mentioned by a condition expression.
fn collect_sensor_categories(expr: &CondExprAst, out: &mut Vec<String>) {
    match expr {
        CondExprAst::Or(terms) | CondExprAst::And(terms) => {
            for t in terms {
                collect_sensor_categories(t, out);
            }
        }
        CondExprAst::Leaf(cond) => match &cond.kind {
            CondKind::Compare { subject, .. } => {
                out.push(subject.name.join(" ").to_ascii_lowercase());
            }
            CondKind::State {
                state: cadel_lang::StatePhrase::Ambient { kind, .. },
                ..
            } => {
                out.push(kind.to_ascii_lowercase());
            }
            _ => {}
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadel_devices::LivingRoomHome;
    use cadel_lang::{parse_command, Lexicon};
    use cadel_types::PlaceId;
    use cadel_upnp::Registry;

    fn setup() -> (ControlPoint, Topology, LivingRoomHome) {
        let registry = Registry::new();
        let home = LivingRoomHome::install(&registry);
        let mut topology = Topology::new("home");
        topology.add_floor("first floor").unwrap();
        topology.add_room("living room", "first floor").unwrap();
        topology.add_room("hall", "first floor").unwrap();
        (ControlPoint::new(registry), topology, home)
    }

    #[test]
    fn keyword_queries() {
        let (cp, topo, _home) = setup();
        let g = GuidanceService::new(&cp, &topo);
        let results = g.find_devices(&DeviceQuery::new().keyword("temperature"));
        // Air conditioner + thermometer both carry the keyword.
        let names: Vec<&str> = results.iter().map(|d| d.friendly_name()).collect();
        assert_eq!(names, ["Air Conditioner", "Thermometer"]);
    }

    #[test]
    fn action_and_location_queries_compose() {
        let (cp, topo, _home) = setup();
        let g = GuidanceService::new(&cp, &topo);
        // Devices in the hall that can TurnOn: the hall light and alarm.
        let results = g.find_devices(
            &DeviceQuery::new()
                .action("TurnOn")
                .within(LocationSelector::within("hall")),
        );
        let names: Vec<&str> = results.iter().map(|d| d.friendly_name()).collect();
        assert_eq!(names, ["Alarm", "Light"]);
    }

    #[test]
    fn floor_scope_covers_rooms() {
        let (cp, topo, _home) = setup();
        let g = GuidanceService::new(&cp, &topo);
        let all =
            g.find_devices(&DeviceQuery::new().within(LocationSelector::within("first floor")));
        // Everything except the unlocated TV guide.
        assert_eq!(all.len(), 14);
    }

    #[test]
    fn name_and_type_queries() {
        let (cp, topo, _home) = setup();
        let g = GuidanceService::new(&cp, &topo);
        let tv = g.find_devices(&DeviceQuery::new().name("TV"));
        assert_eq!(tv.len(), 1);
        let lights = g.find_devices(&DeviceQuery::new().device_type("urn:cadel:device:light:1"));
        assert_eq!(lights.len(), 3);
    }

    #[test]
    fn sensor_retrieval_reports_live_values() {
        let (cp, topo, home) = setup();
        home.thermometer
            .set_reading(
                cadel_types::Rational::from_integer(28),
                cadel_types::SimTime::EPOCH,
            )
            .unwrap();
        let g = GuidanceService::new(&cp, &topo);
        let sensors = g.find_sensors("temperature", &LocationSelector::Anywhere);
        assert_eq!(sensors.len(), 1);
        assert_eq!(sensors[0].device.as_str(), "thermo-lr");
        assert_eq!(
            sensors[0].current_value,
            Some(Value::Number(cadel_types::Quantity::from_integer(
                28,
                cadel_types::Unit::Celsius
            )))
        );
        // Location scoping.
        let none = g.find_sensors("temperature", &LocationSelector::within("hall"));
        assert!(none.is_empty());
    }

    #[test]
    fn user_word_retrieves_its_sensors() {
        let (cp, topo, _home) = setup();
        let g = GuidanceService::new(&cp, &topo);
        let lexicon = Lexicon::english();
        let mut dictionary = Dictionary::new();
        let cmd = parse_command(
            "Let's call the condition that humidity is higher than 60 percent and \
             temperature is higher than 28 degrees hot and stuffy",
            &lexicon,
            &dictionary,
        )
        .unwrap();
        if let cadel_lang::ast::Command::CondDef(def) = cmd {
            dictionary.define_condition(&def.word, def.expr);
        }
        let sensors =
            g.sensors_for_word("hot and stuffy", &dictionary, &LocationSelector::Anywhere);
        let devices: Vec<&str> = sensors.iter().map(|s| s.device.as_str()).collect();
        assert_eq!(devices, ["hygro-lr", "thermo-lr"]);
        // The reverse lookup finds the word from either sensor category.
        assert_eq!(
            g.words_for_sensor("temperature", &dictionary),
            vec!["hot and stuffy".to_owned()]
        );
        assert_eq!(
            g.words_for_sensor("humidity", &dictionary),
            vec!["hot and stuffy".to_owned()]
        );
        assert!(g.words_for_sensor("illuminance", &dictionary).is_empty());
    }

    #[test]
    fn device_actions_lookup() {
        let (cp, topo, _home) = setup();
        let g = GuidanceService::new(&cp, &topo);
        let actions = g.device_actions(&cadel_types::DeviceId::new("aircon-lr"));
        assert!(actions.contains(&"TurnOn".to_owned()));
        assert!(actions.contains(&"SetTemperature".to_owned()));
        assert!(g
            .device_actions(&cadel_types::DeviceId::new("ghost"))
            .is_empty());
    }

    #[test]
    fn unlocated_devices_excluded_from_scoped_queries() {
        let (cp, topo, _home) = setup();
        let g = GuidanceService::new(&cp, &topo);
        let scoped = g.find_devices(
            &DeviceQuery::new()
                .keyword("epg")
                .within(LocationSelector::within("hall")),
        );
        assert!(scoped.is_empty());
        let anywhere = g.find_devices(&DeviceQuery::new().keyword("epg"));
        assert_eq!(anywhere.len(), 1);
    }

    #[test]
    fn hall_devices_via_place_struct() {
        let (cp, topo, _home) = setup();
        let g = GuidanceService::new(&cp, &topo);
        let q = DeviceQuery::new().within(LocationSelector::Within(PlaceId::new("hall")));
        assert_eq!(g.find_devices(&q).len(), 5);
    }
}
