//! User accounts and per-user vocabulary.
//!
//! Each occupant owns a private [`Dictionary`] of condition/configuration
//! words layered over a shared household dictionary — the personalization
//! mechanism of paper §3.2 ("each user can define and reproduce a
//! favourite environment with a sensory word").

use crate::error::ServerError;
use cadel_lang::Dictionary;
use cadel_types::PersonId;
use std::collections::BTreeMap;

/// One registered occupant.
#[derive(Clone, Debug, Default)]
pub struct UserProfile {
    display_name: String,
    dictionary: Dictionary,
}

impl UserProfile {
    /// The display name.
    pub fn display_name(&self) -> &str {
        &self.display_name
    }

    /// The user's private dictionary.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dictionary
    }

    /// Mutable access to the private dictionary.
    pub fn dictionary_mut(&mut self) -> &mut Dictionary {
        &mut self.dictionary
    }
}

/// The user registry with the shared household dictionary.
#[derive(Clone, Debug, Default)]
pub struct UserRegistry {
    users: BTreeMap<PersonId, UserProfile>,
    shared: Dictionary,
}

impl UserRegistry {
    /// Creates an empty registry.
    pub fn new() -> UserRegistry {
        UserRegistry::default()
    }

    /// Registers a user.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::DuplicateUser`] when the id is taken.
    pub fn add_user(&mut self, name: &str) -> Result<PersonId, ServerError> {
        let id = PersonId::new(name.to_ascii_lowercase());
        if self.users.contains_key(&id) {
            return Err(ServerError::DuplicateUser(id));
        }
        self.users.insert(
            id.clone(),
            UserProfile {
                display_name: name.to_owned(),
                dictionary: Dictionary::new(),
            },
        );
        Ok(id)
    }

    /// Whether a user exists.
    pub fn contains(&self, id: &PersonId) -> bool {
        self.users.contains_key(id)
    }

    /// The profile of a user.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::UnknownUser`] for unregistered users.
    pub fn user(&self, id: &PersonId) -> Result<&UserProfile, ServerError> {
        self.users
            .get(id)
            .ok_or_else(|| ServerError::UnknownUser(id.clone()))
    }

    /// Mutable profile access.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::UnknownUser`] for unregistered users.
    pub fn user_mut(&mut self, id: &PersonId) -> Result<&mut UserProfile, ServerError> {
        self.users
            .get_mut(id)
            .ok_or_else(|| ServerError::UnknownUser(id.clone()))
    }

    /// All user ids, sorted.
    pub fn ids(&self) -> Vec<&PersonId> {
        self.users.keys().collect()
    }

    /// The shared household dictionary.
    pub fn shared_dictionary(&self) -> &Dictionary {
        &self.shared
    }

    /// Mutable access to the shared dictionary.
    pub fn shared_dictionary_mut(&mut self) -> &mut Dictionary {
        &mut self.shared
    }

    /// The *effective* dictionary a user's sentences are parsed with:
    /// shared words overlaid by the user's private words.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::UnknownUser`] for unregistered users.
    pub fn effective_dictionary(&self, id: &PersonId) -> Result<Dictionary, ServerError> {
        let profile = self.user(id)?;
        let mut merged = self.shared.clone();
        merged.extend_from(profile.dictionary());
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadel_lang::ast::{CondAst, CondExprAst, CondKind};

    fn expr(tag: &str) -> CondExprAst {
        CondExprAst::Leaf(CondAst {
            kind: CondKind::Broadcast {
                program: vec![tag.to_owned()],
            },
            period: None,
            time: None,
        })
    }

    #[test]
    fn add_and_lookup_users() {
        let mut reg = UserRegistry::new();
        let tom = reg.add_user("Tom").unwrap();
        assert_eq!(tom.as_str(), "tom");
        assert!(reg.contains(&tom));
        assert_eq!(reg.user(&tom).unwrap().display_name(), "Tom");
        assert!(matches!(
            reg.add_user("TOM"),
            Err(ServerError::DuplicateUser(_))
        ));
        assert!(matches!(
            reg.user(&PersonId::new("ghost")),
            Err(ServerError::UnknownUser(_))
        ));
    }

    #[test]
    fn effective_dictionary_layers_private_over_shared() {
        let mut reg = UserRegistry::new();
        let tom = reg.add_user("tom").unwrap();
        reg.shared_dictionary_mut()
            .define_condition("cozy", expr("shared"));
        reg.user_mut(&tom)
            .unwrap()
            .dictionary_mut()
            .define_condition("cozy", expr("toms"));
        reg.user_mut(&tom)
            .unwrap()
            .dictionary_mut()
            .define_condition("hot and stuffy", expr("t"));

        let dict = reg.effective_dictionary(&tom).unwrap();
        assert_eq!(dict.condition("cozy"), Some(&expr("toms")));
        assert!(dict.condition("hot and stuffy").is_some());

        // Another user only sees the shared meaning.
        let alan = reg.add_user("alan").unwrap();
        let dict = reg.effective_dictionary(&alan).unwrap();
        assert_eq!(dict.condition("cozy"), Some(&expr("shared")));
        assert!(dict.condition("hot and stuffy").is_none());
    }

    #[test]
    fn ids_are_sorted() {
        let mut reg = UserRegistry::new();
        reg.add_user("tom").unwrap();
        reg.add_user("alan").unwrap();
        reg.add_user("emily").unwrap();
        let ids: Vec<&str> = reg.ids().iter().map(|p| p.as_str()).collect();
        assert_eq!(ids, ["alan", "emily", "tom"]);
    }
}
