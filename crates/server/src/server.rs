//! The home server: the registration workflow tying everything together.
//!
//! "Whenever a new rule is described and registered in the system, the
//! module evaluates the condition in the new rule to check whether it can
//! hold … then the module checks whether it can conflict with other rules
//! in the database … When the module detects a conflict, it warns the user
//! to modify the new rule or to specify the priority order among the
//! conflicting rules." (paper §4.4)
//!
//! [`HomeServer::submit`] runs that pipeline for a CADEL sentence:
//! parse → compile (against the live registry) → consistency check →
//! conflict check → either register, reject, or park the rule pending a
//! priority decision ([`SubmitOutcome::ConflictDetected`]), which the
//! caller settles with [`HomeServer::confirm_with_priority`] /
//! [`HomeServer::confirm_pending`] / [`HomeServer::cancel_pending`] — the
//! programmatic form of the Fig. 7 dialog.

use crate::access::{AccessControl, Privilege};
use crate::error::ServerError;
use crate::guidance::GuidanceService;
use crate::persist;
use crate::resolver::RegistryResolver;
use crate::users::UserRegistry;
use cadel_conflict::{
    check_consistency, Conflict, ConflictChecker, ConsistencyReport, PriorityOrder,
};
use cadel_engine::{Engine, FreshnessPolicy, ResilienceStatus, StepReport};
use cadel_lang::ast::Command;
use cadel_lang::{parse_command, Compiler, Lexicon};
use cadel_obs::{Event, LazyCounter, LazyHistogram, Level, MetricsSnapshot, Stopwatch};
use cadel_rule::{Condition, Rule};
use cadel_store::{RecoveryReport, Store, StoreError};
use cadel_types::json::Json;
use cadel_types::{PersonId, RuleId, SimTime, Topology};
use cadel_upnp::ControlPoint;
use std::collections::HashMap;
use std::path::Path;

/// Sentences submitted through [`HomeServer::submit`].
static SUBMITS: LazyCounter = LazyCounter::new("server_submits_total");
/// Wall-clock latency of the full submit workflow (parse → compile →
/// consistency → conflict → store).
static SUBMIT_NS: LazyHistogram = LazyHistogram::new("server_submit_duration_ns");
/// Rules that completed registration (via submit, import or direct
/// [`HomeServer::register_rule`]).
static RULES_REGISTERED: LazyCounter = LazyCounter::new("server_rules_registered_total");
/// Rules rejected because their condition can never hold.
static RULES_INCONSISTENT: LazyCounter = LazyCounter::new("server_rules_inconsistent_total");
/// Rules parked pending a priority decision after a detected conflict.
static RULES_CONFLICTED: LazyCounter = LazyCounter::new("server_rules_conflicted_total");

/// What happened to a submitted CADEL sentence.
#[derive(Debug)]
#[non_exhaustive]
pub enum SubmitOutcome {
    /// The rule was consistent, conflict-free and is now live.
    Registered {
        /// The new rule's id.
        id: RuleId,
        /// Indices of DNF disjuncts that can never hold (worth a warning).
        dead_conjuncts: Vec<usize>,
    },
    /// The rule's condition can never hold; nothing was stored.
    RejectedInconsistent {
        /// The consistency report to show the user.
        report: ConsistencyReport,
    },
    /// The rule conflicts with existing rules; it is parked until the
    /// user answers the priority prompt.
    ConflictDetected {
        /// Ticket for the pending rule (its allocated id).
        ticket: RuleId,
        /// The detected conflicts, with witnesses.
        conflicts: Vec<Conflict>,
    },
    /// A `<CondDef>` sentence defined a condition word.
    ConditionWordDefined {
        /// The new word.
        word: String,
    },
    /// A `<ConfDef>` sentence defined a configuration word.
    ConfigurationWordDefined {
        /// The new word.
        word: String,
    },
}

struct PendingRule {
    rule: Rule,
    conflicts: Vec<Conflict>,
}

/// The outcome of a bulk rule import (paper §4.3(iv)).
#[derive(Debug, Default)]
pub struct ImportReport {
    /// Rules imported and registered, in order.
    pub imported: Vec<RuleId>,
    /// Rules skipped, with the reason.
    pub skipped: Vec<(String, String)>,
}

/// The home server.
pub struct HomeServer {
    engine: Engine,
    topology: Topology,
    users: UserRegistry,
    lexicon: Lexicon,
    pending: HashMap<RuleId, PendingRule>,
    access: AccessControl,
    checker: ConflictChecker,
    /// The durable store, when the server was opened with one
    /// ([`HomeServer::open_at`]). A plain [`HomeServer::new`] server is
    /// ephemeral and logs nothing.
    store: Option<Store>,
    /// True while recovery replays records: suppresses re-logging so a
    /// replayed mutation is not appended a second time.
    replaying: bool,
    /// True once a WAL append has failed (disk full or other append
    /// I/O): every later durable mutation is rejected up front with
    /// [`ServerError::ReadOnly`] instead of retrying the sick disk
    /// mid-step. Reads and non-durable stepping stay available.
    read_only: bool,
    /// Word-definition sentences in submission order, per user — the
    /// replayable source of the private dictionaries (a `Dictionary` has
    /// no codec; the original sentences do).
    word_log: Vec<(PersonId, String)>,
}

impl HomeServer {
    /// Creates an **ephemeral** server over a control point with the
    /// given home topology and the English lexicon. Nothing is persisted;
    /// see [`HomeServer::open_at`] for the durable variant.
    pub fn new(control: ControlPoint, topology: Topology) -> HomeServer {
        let engine = Engine::new(control);
        let mut access = AccessControl::new();
        for description in engine.control().registry().descriptions() {
            access.register_device_type(description.udn().clone(), description.device_type());
        }
        HomeServer {
            engine,
            topology,
            users: UserRegistry::new(),
            lexicon: Lexicon::english(),
            pending: HashMap::new(),
            access,
            checker: ConflictChecker::new(),
            store: None,
            replaying: false,
            read_only: false,
            word_log: Vec::new(),
        }
    }

    /// Opens a **durable** server backed by a write-ahead log and
    /// snapshot in `dir` (created if absent), recovering any state a
    /// previous incarnation persisted there: the snapshot is applied
    /// first (if present and intact), then every surviving WAL record is
    /// replayed in order. Torn or corrupt log tails are truncated at the
    /// last good record boundary — see the [`RecoveryReport`].
    ///
    /// Replay is *post-decision*: rules, priorities and customizations
    /// re-enter the engine directly (their consistency/conflict checks
    /// already ran before they were logged), compiled rule programs are
    /// rebuilt from source rather than read from disk, and word
    /// definitions re-run their original sentences through the submit
    /// pipeline. A record that no longer applies (e.g. its device left
    /// the registry) is skipped with a warning, never a failed recovery.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Store`] when the directory cannot be
    /// opened or written.
    pub fn open_at(
        control: ControlPoint,
        topology: Topology,
        dir: impl AsRef<Path>,
    ) -> Result<(HomeServer, RecoveryReport), ServerError> {
        let (store, recovered) = Store::open(dir)?;
        let mut server = HomeServer::new(control, topology);
        server.replaying = true;
        if let Some(snapshot) = &recovered.snapshot {
            server.apply_snapshot(snapshot);
        }
        let mut skipped = 0u64;
        for record in &recovered.records {
            if !server.apply_record(record) {
                skipped += 1;
            }
        }
        server.replaying = false;
        server.store = Some(store);
        let mut report = recovered.report;
        report.records_skipped = skipped;
        if skipped > 0 {
            cadel_store::note_replay_skipped(skipped);
        }
        if cadel_obs::enabled() {
            cadel_obs::emit(
                Event::new("server.recovered", Level::Info)
                    .with_field("records", report.records_replayed)
                    .with_field("records_skipped", report.records_skipped)
                    .with_field("bytes_truncated", report.bytes_truncated)
                    .with_field("snapshot_used", report.snapshot_used),
            );
        }
        Ok((server, report))
    }

    /// Alias for [`HomeServer::open_at`]: recovery *is* opening the
    /// store — a fresh directory simply recovers to the empty state.
    ///
    /// # Errors
    ///
    /// See [`HomeServer::open_at`].
    pub fn recover(
        control: ControlPoint,
        topology: Topology,
        dir: impl AsRef<Path>,
    ) -> Result<(HomeServer, RecoveryReport), ServerError> {
        HomeServer::open_at(control, topology, dir)
    }

    /// The durable store, when this server was opened with one.
    pub fn store(&self) -> Option<&Store> {
        self.store.as_ref()
    }

    /// Flushes the WAL to stable storage (fsync). No-op on ephemeral
    /// servers.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Store`] on I/O failure.
    pub fn sync(&mut self) -> Result<(), ServerError> {
        match &mut self.store {
            Some(store) => Ok(store.sync()?),
            None => Ok(()),
        }
    }

    /// True once a WAL append has failed and durable mutations are
    /// rejected; see [`ServerError::ReadOnly`]. A restart via
    /// [`HomeServer::open_at`] against a healthy store clears the
    /// condition (the failed mutation was never applied or logged).
    pub fn is_read_only(&self) -> bool {
        self.read_only
    }

    /// Toggles injected WAL append failures (simulated `ENOSPC`) on the
    /// backing store. No-op on ephemeral servers. Fault injection for
    /// soak tests, the sibling of `FaultPlan` at the device layer.
    pub fn inject_append_faults(&mut self, on: bool) {
        if let Some(store) = &mut self.store {
            store.set_fail_appends(on);
        }
    }

    /// Appends one record for a durable mutation, *before* the mutation
    /// is applied. No-op on ephemeral servers and during replay.
    ///
    /// A failed append flips the server read-only: the mutation was not
    /// persisted and must not be applied, and later durable mutations
    /// are rejected up front rather than retrying a failing disk.
    fn log_record(&mut self, record: &Json) -> Result<(), ServerError> {
        if self.replaying {
            return Ok(());
        }
        if self.read_only {
            return Err(ServerError::ReadOnly);
        }
        let Some(store) = &mut self.store else {
            return Ok(());
        };
        match store.append(record) {
            Ok(()) => Ok(()),
            Err(error @ StoreError::Append { .. }) => {
                self.read_only = true;
                if cadel_obs::enabled() {
                    cadel_obs::emit(
                        Event::new("server.read_only", Level::Warn)
                            .with_field("error", error.to_string()),
                    );
                }
                Err(ServerError::ReadOnly)
            }
            Err(error) => Err(error.into()),
        }
    }

    /// Applies one replayed WAL record. Failures are warned and skipped:
    /// recovery always produces a running server. Returns `false` when
    /// the record was skipped.
    fn apply_record(&mut self, record: &Json) -> bool {
        let kind = record.get("type").and_then(Json::as_str).unwrap_or("");
        let result: Result<(), ServerError> = match kind {
            "user_added" => {
                persist::get_str(record, "name").and_then(|name| self.add_user(name).map(|_| ()))
            }
            "word_defined" => {
                let user = persist::get_str(record, "user").map(PersonId::new);
                let sentence = persist::get_str(record, "sentence");
                match (user, sentence) {
                    (Ok(user), Ok(sentence)) => self.submit_inner(&user, sentence).map(|_| ()),
                    (Err(e), _) | (_, Err(e)) => Err(e),
                }
            }
            "rule_registered" => persist::rule_of(record, "rule")
                .and_then(|rule| Ok(self.engine.add_rule(rule).map(|_| ())?)),
            "rule_arbitrated" => {
                let rule = persist::rule_of(record, "rule");
                let priority =
                    persist::get_field(record, "priority").and_then(persist::priority_from_json);
                match (rule, priority) {
                    (Ok(rule), Ok(priority)) => {
                        self.engine.add_priority(priority);
                        self.engine.add_rule(rule).map(|_| ()).map_err(Into::into)
                    }
                    (Err(e), _) | (_, Err(e)) => Err(e),
                }
            }
            "rule_removed" => record
                .get("id")
                .and_then(Json::as_int)
                .ok_or_else(|| persist::bad("rule_removed record: 'id' must be an integer"))
                .and_then(|raw| Ok(self.engine.remove_rule(RuleId::new(raw as u64))?)),
            "rule_customized" => persist::rule_of(record, "rule")
                .and_then(|rule| Ok(self.engine.update_rule(rule)?)),
            "priority_added" => persist::get_field(record, "priority")
                .and_then(persist::priority_from_json)
                .map(|priority| {
                    self.engine.add_priority(priority);
                }),
            "freshness" => persist::get_field(record, "policy").and_then(|doc| {
                let policy =
                    cadel_engine::freshness_policy_from_json(doc).map_err(ServerError::Engine)?;
                self.engine.context_mut().set_freshness_policy(policy);
                Ok(())
            }),
            "runtime" => persist::get_field(record, "state")
                .and_then(|state| Ok(self.engine.import_runtime_json(state)?)),
            other => Err(persist::bad(format!("unknown record type '{other}'"))),
        };
        match result {
            Ok(()) => true,
            Err(error) => {
                if cadel_obs::enabled() {
                    cadel_obs::emit(
                        Event::new("server.replay_record_skipped", Level::Warn)
                            .with_field("kind", kind.to_owned())
                            .with_field("error", error.to_string()),
                    );
                }
                false
            }
        }
    }

    /// The full durable state as one JSON document: users and their word
    /// sentences, rules, priorities, the freshness policy, the rule-id
    /// allocator, and the engine runtime checkpoint. This is the snapshot
    /// payload [`HomeServer::checkpoint`] writes, and — being
    /// deterministically ordered — a byte-stable fingerprint of the
    /// server's durable state for equivalence tests.
    pub fn snapshot_json(&self) -> Json {
        let users = Json::Arr(
            self.users
                .ids()
                .into_iter()
                .map(|id| {
                    let display = self
                        .users
                        .user(id)
                        .map(|p| p.display_name().to_owned())
                        .unwrap_or_else(|_| id.as_str().to_owned());
                    let words = Json::Arr(
                        self.word_log
                            .iter()
                            .filter(|(owner, _)| owner == id)
                            .map(|(_, sentence)| Json::str(sentence))
                            .collect(),
                    );
                    Json::obj(vec![("name", Json::str(&display)), ("words", words)])
                })
                .collect(),
        );
        let mut rules: Vec<&Rule> = self.engine.rules().iter().collect();
        rules.sort_by_key(|r| r.id());
        let rules = Json::Arr(
            rules
                .into_iter()
                .map(cadel_rule::codec::rule_to_json)
                .collect(),
        );
        let priorities = Json::Arr(
            self.engine
                .priorities()
                .orders()
                .iter()
                .map(persist::priority_to_json)
                .collect(),
        );
        Json::obj(vec![
            ("users", users),
            ("rules", rules),
            ("priorities", priorities),
            (
                "freshness",
                cadel_engine::freshness_policy_to_json(&self.engine.context().freshness_policy()),
            ),
            (
                "next_rule_id",
                Json::Int(self.engine.rules().next_id().raw() as i64),
            ),
            ("runtime", self.engine.export_runtime_json()),
        ])
    }

    /// Applies a recovered snapshot. Like record replay, failures are
    /// warned and skipped.
    fn apply_snapshot(&mut self, snapshot: &Json) {
        let warn = |stage: &'static str, error: String| {
            if cadel_obs::enabled() {
                cadel_obs::emit(
                    Event::new("server.snapshot_item_skipped", Level::Warn)
                        .with_field("stage", stage)
                        .with_field("error", error),
                );
            }
        };
        for entry in snapshot
            .get("users")
            .and_then(Json::as_arr)
            .into_iter()
            .flatten()
        {
            let Some(name) = entry.get("name").and_then(Json::as_str) else {
                warn("user", "missing name".to_owned());
                continue;
            };
            let user = match self.add_user(name) {
                Ok(user) => user,
                Err(e) => {
                    warn("user", e.to_string());
                    continue;
                }
            };
            for word in entry
                .get("words")
                .and_then(Json::as_arr)
                .into_iter()
                .flatten()
            {
                let Some(sentence) = word.as_str() else {
                    warn("word", "sentence must be a string".to_owned());
                    continue;
                };
                if let Err(e) = self.submit_inner(&user, sentence) {
                    warn("word", e.to_string());
                }
            }
        }
        for entry in snapshot
            .get("rules")
            .and_then(Json::as_arr)
            .into_iter()
            .flatten()
        {
            match cadel_rule::codec::rule_from_json(entry) {
                Ok(rule) => {
                    if let Err(e) = self.engine.add_rule(rule) {
                        warn("rule", e.to_string());
                    }
                }
                Err(e) => warn("rule", e.to_string()),
            }
        }
        for entry in snapshot
            .get("priorities")
            .and_then(Json::as_arr)
            .into_iter()
            .flatten()
        {
            match persist::priority_from_json(entry) {
                Ok(order) => {
                    self.engine.add_priority(order);
                }
                Err(e) => warn("priority", e.to_string()),
            }
        }
        if let Some(doc) = snapshot.get("freshness") {
            match cadel_engine::freshness_policy_from_json(doc) {
                Ok(policy) => self.engine.context_mut().set_freshness_policy(policy),
                Err(e) => warn("freshness", e.to_string()),
            }
        }
        if let Some(next) = snapshot.get("next_rule_id").and_then(Json::as_int) {
            self.engine
                .rules_mut()
                .ensure_next_id(RuleId::new(next as u64));
        }
        if let Some(runtime) = snapshot.get("runtime") {
            if let Err(e) = self.engine.import_runtime_json(runtime) {
                warn("runtime", e.to_string());
            }
        }
    }

    /// Compacts the durable state: writes a snapshot of everything —
    /// rules, priorities, users and their words, freshness policy, the
    /// rule-id allocator, and the engine's runtime state — then truncates
    /// the WAL. Recovery cost drops to one snapshot read. No-op on
    /// ephemeral servers.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Store`] on I/O failure.
    pub fn checkpoint(&mut self) -> Result<(), ServerError> {
        let snapshot = self.snapshot_json();
        match &mut self.store {
            Some(store) => Ok(store.compact(&snapshot)?),
            None => Ok(()),
        }
    }

    /// Logs a `runtime` record carrying the engine's full runtime
    /// checkpoint (held `until` releases, retry queue, dead letters,
    /// breaker states, context store). Cheaper than a full
    /// [`HomeServer::checkpoint`]; call it at scenario-relevant points so
    /// a recovered server resumes mid-flight rather than from the last
    /// compaction.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Store`] on I/O failure.
    pub fn checkpoint_runtime(&mut self) -> Result<(), ServerError> {
        let record = persist::runtime(self.engine.export_runtime_json());
        self.log_record(&record)
    }

    /// The access-control policy (paper §6 future work). Permissive until
    /// [`AccessControl::set_enforcing`] is turned on.
    pub fn access(&self) -> &AccessControl {
        &self.access
    }

    /// Mutable access-control policy.
    pub fn access_mut(&mut self) -> &mut AccessControl {
        &mut self.access
    }

    /// Replaces the lexicon (e.g. with a translated CADEL vocabulary).
    pub fn set_lexicon(&mut self, lexicon: Lexicon) {
        self.lexicon = lexicon;
    }

    /// Registers an occupant.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::DuplicateUser`] when the name is taken.
    pub fn add_user(&mut self, name: &str) -> Result<PersonId, ServerError> {
        let id = PersonId::new(name.to_ascii_lowercase());
        if self.users.contains(&id) {
            return Err(ServerError::DuplicateUser(id));
        }
        self.log_record(&persist::user_added(name))?;
        self.users.add_user(name)
    }

    /// The user registry.
    pub fn users(&self) -> &UserRegistry {
        &self.users
    }

    /// Mutable user-registry access.
    pub fn users_mut(&mut self) -> &mut UserRegistry {
        &mut self.users
    }

    /// The home topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The execution engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable engine access (priorities, direct rule management).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// The guidance/lookup service.
    pub fn guidance(&self) -> GuidanceService<'_> {
        GuidanceService::new(self.engine.control(), &self.topology)
    }

    /// A point-in-time view of the engine's fault-tolerance state:
    /// per-device circuit breakers, queued retries and dead letters.
    pub fn resilience_status(&self) -> ResilienceStatus {
        self.engine.resilience().status()
    }

    /// Sets the number of worker threads the engine shards rule
    /// evaluation across (1 = fully serial). Purely a throughput knob:
    /// parallel and serial runs produce identical step reports, so this
    /// is not WAL-logged and does not survive recovery.
    pub fn set_eval_threads(&mut self, threads: usize) {
        self.engine.set_eval_threads(threads);
    }

    /// Sets the sensor-staleness policy applied when rule conditions
    /// read sensor values (see [`cadel_engine::FreshnessPolicy`]).
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Store`] when logging the change fails (the
    /// policy is then left unchanged).
    pub fn set_freshness_policy(&mut self, policy: FreshnessPolicy) -> Result<(), ServerError> {
        self.log_record(&persist::freshness(&policy))?;
        self.engine.context_mut().set_freshness_policy(policy);
        Ok(())
    }

    /// Removes a registered rule, durably.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Engine`] for unknown rules and
    /// [`ServerError::Store`] when logging fails (the rule then stays).
    pub fn remove_rule(&mut self, id: RuleId) -> Result<(), ServerError> {
        if self.engine.rules().get(id).is_none() {
            return Err(ServerError::Engine(cadel_engine::EngineError::Rule(
                cadel_rule::RuleError::UnknownRule(id),
            )));
        }
        self.log_record(&persist::rule_removed(id))?;
        Ok(self.engine.remove_rule(id)?)
    }

    /// Customizes a registered rule in place (same id, new definition),
    /// durably. The replacement is re-stamped with a fresh revision so
    /// memoized conflict verdicts against the old definition die.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Engine`] for unknown rules and
    /// [`ServerError::Store`] when logging fails (no change applied).
    pub fn customize_rule(&mut self, rule: Rule) -> Result<(), ServerError> {
        if self.engine.rules().get(rule.id()).is_none() {
            return Err(ServerError::Engine(cadel_engine::EngineError::Rule(
                cadel_rule::RuleError::UnknownRule(rule.id()),
            )));
        }
        self.log_record(&persist::rule_customized(&rule))?;
        Ok(self.engine.update_rule(rule)?)
    }

    /// Enables or disables a registered rule, durably (a customization
    /// that changes only the enabled flag).
    ///
    /// # Errors
    ///
    /// See [`HomeServer::customize_rule`].
    pub fn set_rule_enabled(&mut self, id: RuleId, enabled: bool) -> Result<(), ServerError> {
        let rule = self
            .engine
            .rules()
            .get(id)
            .ok_or(ServerError::Engine(cadel_engine::EngineError::Rule(
                cadel_rule::RuleError::UnknownRule(id),
            )))?
            .clone()
            .with_enabled(enabled);
        self.customize_rule(rule)
    }

    /// Adds a priority order outside the conflict dialog (e.g. a
    /// household pre-arrangement), durably.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Store`] when logging fails (no change
    /// applied).
    pub fn add_priority(&mut self, order: PriorityOrder) -> Result<usize, ServerError> {
        self.log_record(&persist::priority_added(&order))?;
        Ok(self.engine.add_priority(order))
    }

    /// Advances the engine one step.
    pub fn step(&mut self, now: SimTime) -> StepReport {
        self.engine.step(now)
    }

    /// A point-in-time snapshot of the process-wide metrics registry —
    /// the query surface for dashboards, simulator timecharts and tests.
    /// Empty until observability is switched on (`cadel_obs::install` or
    /// `cadel_obs::enable_metrics_only`).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        cadel_obs::metrics_snapshot()
    }

    /// Submits one CADEL sentence from a user and runs the full
    /// registration workflow.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError`] on parse/compile failures, unknown users,
    /// or solver errors. A rule that merely *conflicts* is not an error —
    /// see [`SubmitOutcome::ConflictDetected`].
    pub fn submit(
        &mut self,
        user: &PersonId,
        sentence: &str,
    ) -> Result<SubmitOutcome, ServerError> {
        let sw = Stopwatch::start();
        SUBMITS.inc();
        let result = self.submit_inner(user, sentence);
        SUBMIT_NS.record(&sw);
        result
    }

    fn submit_inner(
        &mut self,
        user: &PersonId,
        sentence: &str,
    ) -> Result<SubmitOutcome, ServerError> {
        let dictionary = self.users.effective_dictionary(user)?;
        let command = parse_command(sentence, &self.lexicon, &dictionary)
            .map_err(cadel_lang::LangError::from)?;

        let registry = self.engine.control().registry().clone();
        match command {
            Command::CondDef(def) => {
                // Validate the definition resolves before storing it.
                {
                    let resolver = RegistryResolver::new(&registry, &self.topology, &self.users);
                    let compiler = Compiler::new(&resolver, &dictionary, user.clone());
                    compiler
                        .compile_cond_expr(&def.expr)
                        .map_err(cadel_lang::LangError::from)?;
                }
                self.log_record(&persist::word_defined(user, sentence))?;
                self.users
                    .user_mut(user)?
                    .dictionary_mut()
                    .define_condition(&def.word, def.expr);
                self.word_log.push((user.clone(), sentence.to_owned()));
                Ok(SubmitOutcome::ConditionWordDefined { word: def.word })
            }
            Command::ConfDef(def) => {
                self.log_record(&persist::word_defined(user, sentence))?;
                self.users
                    .user_mut(user)?
                    .dictionary_mut()
                    .define_configuration(&def.word, def.settings);
                self.word_log.push((user.clone(), sentence.to_owned()));
                Ok(SubmitOutcome::ConfigurationWordDefined { word: def.word })
            }
            Command::Rule(sentence_ast) => {
                let builder = {
                    let resolver = RegistryResolver::new(&registry, &self.topology, &self.users);
                    let compiler = Compiler::new(&resolver, &dictionary, user.clone());
                    compiler
                        .compile_rule(&sentence_ast)
                        .map_err(cadel_lang::LangError::from)?
                };
                let id = self.engine.rules_mut().allocate_id();
                let rule = builder.label(sentence).build(id)?;
                self.register_rule(rule)
            }
        }
    }

    /// Registers an already-compiled rule through the same consistency and
    /// conflict workflow (used by `submit`, imports, and IR-level
    /// scenarios).
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Conflict`] on solver failures.
    pub fn register_rule(&mut self, rule: Rule) -> Result<SubmitOutcome, ServerError> {
        self.access.check_rule(&rule)?;
        let report = check_consistency(&rule)?;
        if !report.is_satisfiable() {
            RULES_INCONSISTENT.inc();
            if cadel_obs::enabled() {
                cadel_obs::emit(
                    Event::new("server.rule_rejected_inconsistent", Level::Warn)
                        .with_field("rule", rule.id().raw())
                        .with_field("owner", rule.owner().as_str()),
                );
            }
            return Ok(SubmitOutcome::RejectedInconsistent { report });
        }
        // The incremental checker reuses the per-rule constraint systems
        // compiled at storage time and memoizes pairwise verdicts, so
        // registering the N-th rule re-solves only the new pairs.
        let conflicts = self.checker.find_conflicts(self.engine.rules(), &rule)?;
        if conflicts.is_empty() {
            let id = rule.id();
            let owner = rule.owner().clone();
            self.log_record(&persist::rule_registered(&rule))?;
            self.engine.add_rule(rule)?;
            RULES_REGISTERED.inc();
            if cadel_obs::enabled() {
                cadel_obs::emit(
                    Event::new("server.rule_registered", Level::Info)
                        .with_field("rule", id.raw())
                        .with_field("owner", owner.as_str()),
                );
            }
            return Ok(SubmitOutcome::Registered {
                id,
                dead_conjuncts: report.dead_conjuncts().to_vec(),
            });
        }
        RULES_CONFLICTED.inc();
        if cadel_obs::enabled() {
            cadel_obs::emit(
                Event::new("server.rule_conflict_detected", Level::Warn)
                    .with_field("rule", rule.id().raw())
                    .with_field("owner", rule.owner().as_str())
                    .with_field("conflicts", conflicts.len() as u64),
            );
        }
        let ticket = rule.id();
        self.pending.insert(ticket, PendingRule { rule, conflicts });
        let conflicts = self.pending[&ticket].conflicts.clone();
        Ok(SubmitOutcome::ConflictDetected { ticket, conflicts })
    }

    /// The conflicts of a pending registration.
    pub fn pending_conflicts(&self, ticket: RuleId) -> Option<&[Conflict]> {
        self.pending.get(&ticket).map(|p| p.conflicts.as_slice())
    }

    /// Registers a pending rule together with a priority order over the
    /// conflicting rules (highest first), optionally scoped to a context —
    /// the "OK" path of the Fig. 7 dialog.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::UnknownPending`] for unknown tickets.
    pub fn confirm_with_priority(
        &mut self,
        ticket: RuleId,
        ranking: Vec<RuleId>,
        context: Option<Condition>,
        label: Option<String>,
    ) -> Result<RuleId, ServerError> {
        let pending = self
            .pending
            .remove(&ticket)
            .ok_or(ServerError::UnknownPending(ticket))?;
        let device = pending.rule.action().device().clone();
        let mut order = PriorityOrder::new(device, ranking);
        if let Some(context) = context {
            order = order.in_context(context);
        }
        if let Some(label) = label {
            order = order.with_label(label);
        }
        let owner = pending.rule.owner().clone();
        // One record for the whole arbitration: the rule and its priority
        // order commit (and replay) atomically.
        self.log_record(&persist::rule_arbitrated(&pending.rule, &order))?;
        self.engine.add_priority(order);
        self.engine.add_rule(pending.rule)?;
        RULES_REGISTERED.inc();
        if cadel_obs::enabled() {
            cadel_obs::emit(
                Event::new("server.rule_registered", Level::Info)
                    .with_field("rule", ticket.raw())
                    .with_field("owner", owner.as_str())
                    .with_field("arbitrated", true),
            );
        }
        Ok(ticket)
    }

    /// Like [`HomeServer::confirm_with_priority`], but on behalf of a
    /// specific user whose [`Privilege::Arbitrate`] right over the device
    /// is checked first.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::AccessDenied`] when the user may not
    /// arbitrate the device, and [`ServerError::UnknownPending`] for
    /// unknown tickets.
    pub fn confirm_with_priority_as(
        &mut self,
        user: &PersonId,
        ticket: RuleId,
        ranking: Vec<RuleId>,
        context: Option<Condition>,
        label: Option<String>,
    ) -> Result<RuleId, ServerError> {
        let device = self
            .pending
            .get(&ticket)
            .ok_or(ServerError::UnknownPending(ticket))?
            .rule
            .action()
            .device()
            .clone();
        self.access.check(user, &device, Privilege::Arbitrate)?;
        self.confirm_with_priority(ticket, ranking, context, label)
    }

    /// Registers a pending rule keeping the existing priority orders (the
    /// user accepted the current arrangement).
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::UnknownPending`] for unknown tickets.
    pub fn confirm_pending(&mut self, ticket: RuleId) -> Result<RuleId, ServerError> {
        let pending = self
            .pending
            .remove(&ticket)
            .ok_or(ServerError::UnknownPending(ticket))?;
        let owner = pending.rule.owner().clone();
        self.log_record(&persist::rule_registered(&pending.rule))?;
        self.engine.add_rule(pending.rule)?;
        RULES_REGISTERED.inc();
        if cadel_obs::enabled() {
            cadel_obs::emit(
                Event::new("server.rule_registered", Level::Info)
                    .with_field("rule", ticket.raw())
                    .with_field("owner", owner.as_str())
                    .with_field("arbitrated", true),
            );
        }
        Ok(ticket)
    }

    /// Abandons a pending registration (the user chose to modify the rule
    /// instead).
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::UnknownPending`] for unknown tickets.
    pub fn cancel_pending(&mut self, ticket: RuleId) -> Result<(), ServerError> {
        self.pending
            .remove(&ticket)
            .map(|_| ())
            .ok_or(ServerError::UnknownPending(ticket))
    }

    /// Exports every registered rule as JSON (paper §4.3(iv)).
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Rule`] on serialization failure.
    pub fn export_rules(&self) -> Result<String, ServerError> {
        Ok(self.engine.rules().export_json()?)
    }

    /// Imports rules from JSON, re-assigning them to `new_owner` with
    /// fresh ids and running each through the consistency/conflict
    /// workflow. Conflicting or inconsistent rules are skipped and
    /// reported, never silently dropped.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Rule`] when the JSON itself is malformed.
    pub fn import_rules(
        &mut self,
        new_owner: &PersonId,
        json: &str,
    ) -> Result<ImportReport, ServerError> {
        if !self.users.contains(new_owner) {
            return Err(ServerError::UnknownUser(new_owner.clone()));
        }
        let rules: Vec<Rule> =
            cadel_rule::codec::rules_from_json(json).map_err(ServerError::Rule)?;
        let mut report = ImportReport::default();
        for rule in rules {
            let label = rule
                .label()
                .map(str::to_owned)
                .unwrap_or_else(|| rule.id().to_string());
            let id = self.engine.rules_mut().allocate_id();
            let rule = rule.reassigned(id, new_owner.clone());
            match self.register_rule(rule)? {
                SubmitOutcome::Registered { id, .. } => report.imported.push(id),
                SubmitOutcome::RejectedInconsistent { .. } => {
                    report
                        .skipped
                        .push((label, "condition can never hold".to_owned()));
                }
                SubmitOutcome::ConflictDetected { ticket, conflicts } => {
                    self.cancel_pending(ticket)?;
                    report.skipped.push((
                        label,
                        format!("conflicts with {} existing rule(s)", conflicts.len()),
                    ));
                }
                _ => {}
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadel_devices::LivingRoomHome;
    use cadel_types::{Rational, Value};
    use cadel_upnp::{Registry, VirtualDevice};

    fn standard_topology() -> Topology {
        let mut t = Topology::new("home");
        t.add_floor("first floor").unwrap();
        t.add_room("living room", "first floor").unwrap();
        t.add_room("hall", "first floor").unwrap();
        t
    }

    fn setup() -> (HomeServer, LivingRoomHome) {
        let registry = Registry::new();
        let home = LivingRoomHome::install(&registry);
        let mut server = HomeServer::new(ControlPoint::new(registry), standard_topology());
        for name in ["tom", "alan", "emily"] {
            server.add_user(name).unwrap();
        }
        (server, home)
    }

    #[test]
    fn failed_wal_append_flips_the_server_read_only() {
        let dir = std::env::temp_dir().join(format!("cadel-server-ro-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let registry = Registry::new();
        let _home = LivingRoomHome::install(&registry);
        let (mut server, _) =
            HomeServer::open_at(ControlPoint::new(registry), standard_topology(), &dir).unwrap();
        server.add_user("Tom").unwrap();
        assert!(!server.is_read_only());

        server.inject_append_faults(true);
        assert_eq!(server.add_user("Alan"), Err(ServerError::ReadOnly));
        assert!(server.is_read_only());
        // The rejected mutation was never applied in memory...
        assert!(server.users().user(&PersonId::new("alan")).is_err());
        // ...and later durable mutations are rejected up front, even
        // after the disk recovers.
        server.inject_append_faults(false);
        assert_eq!(server.add_user("Emily"), Err(ServerError::ReadOnly));

        // A restart against the (healthy) store clears the condition and
        // sees exactly the state that was durably logged.
        drop(server);
        let registry = Registry::new();
        let _home = LivingRoomHome::install(&registry);
        let (mut reopened, report) =
            HomeServer::open_at(ControlPoint::new(registry), standard_topology(), &dir).unwrap();
        assert_eq!(report.records_replayed, 1);
        assert_eq!(report.records_skipped, 0);
        assert!(!reopened.is_read_only());
        reopened.add_user("Alan").unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn submit_registers_a_clean_rule_end_to_end() {
        let (mut server, home) = setup();
        let tom = PersonId::new("tom");
        let outcome = server
            .submit(
                &tom,
                "If humidity is higher than 80 percent and temperature is higher than \
                 28 degrees, turn on the air conditioner with 25 degrees of temperature setting.",
            )
            .unwrap();
        let id = match outcome {
            SubmitOutcome::Registered { id, dead_conjuncts } => {
                assert!(dead_conjuncts.is_empty());
                id
            }
            other => panic!("expected registration, got {other:?}"),
        };
        assert_eq!(server.engine().rules().len(), 1);
        assert_eq!(server.engine().rules().get(id).unwrap().owner(), &tom);

        // And it executes: drive the sensors past the thresholds.
        home.thermometer
            .set_reading(Rational::from_integer(29), SimTime::from_millis(1))
            .unwrap();
        home.hygrometer
            .set_reading(Rational::from_integer(85), SimTime::from_millis(1))
            .unwrap();
        let report = server.step(SimTime::from_millis(2));
        assert_eq!(report.dispatched().len(), 1);
        assert_eq!(home.aircon.query("power").unwrap(), Value::Bool(true));
    }

    #[test]
    fn inconsistent_rule_is_rejected() {
        let (mut server, _home) = setup();
        let tom = PersonId::new("tom");
        let outcome = server
            .submit(
                &tom,
                "If temperature is higher than 30 degrees and temperature is lower than \
                 20 degrees, turn on the air conditioner.",
            )
            .unwrap();
        assert!(matches!(
            outcome,
            SubmitOutcome::RejectedInconsistent { .. }
        ));
        assert_eq!(server.engine().rules().len(), 0);
    }

    #[test]
    fn conflicting_rule_prompts_for_priority() {
        let (mut server, _home) = setup();
        let tom = PersonId::new("tom");
        let alan = PersonId::new("alan");
        // Tom registers first.
        let tom_outcome = server
            .submit(
                &tom,
                "If temperature is higher than 26 degrees, turn on the air conditioner \
                 with 25 degrees of temperature setting.",
            )
            .unwrap();
        let tom_id = match tom_outcome {
            SubmitOutcome::Registered { id, .. } => id,
            other => panic!("unexpected {other:?}"),
        };
        // Alan's overlapping rule with a different setpoint conflicts.
        let alan_outcome = server
            .submit(
                &alan,
                "If temperature is higher than 25 degrees, turn on the air conditioner \
                 with 24 degrees of temperature setting.",
            )
            .unwrap();
        let (ticket, conflicts) = match alan_outcome {
            SubmitOutcome::ConflictDetected { ticket, conflicts } => (ticket, conflicts),
            other => panic!("expected conflict, got {other:?}"),
        };
        assert_eq!(conflicts.len(), 1);
        assert_eq!(conflicts[0].rule_b(), tom_id);
        assert!(server.pending_conflicts(ticket).is_some());
        // Not yet registered.
        assert_eq!(server.engine().rules().len(), 1);

        // The household decides: Alan outranks Tom when he got home from
        // work.
        let ctx = Condition::Atom(cadel_rule::Atom::Event(cadel_rule::EventAtom::new(
            "person:alan",
            "got home from work",
        )));
        server
            .confirm_with_priority(
                ticket,
                vec![ticket, tom_id],
                Some(ctx),
                Some("Alan got home from work".to_owned()),
            )
            .unwrap();
        assert_eq!(server.engine().rules().len(), 2);
        assert_eq!(server.engine().priorities().orders().len(), 1);
        assert!(server.pending_conflicts(ticket).is_none());
    }

    #[test]
    fn pending_can_be_cancelled_or_confirmed_plain() {
        let (mut server, _home) = setup();
        let tom = PersonId::new("tom");
        let alan = PersonId::new("alan");
        server
            .submit(&tom, "If temperature is higher than 26 degrees, turn on the air conditioner with 25 degrees of temperature setting.")
            .unwrap();
        let submit = |server: &mut HomeServer| {
            server
                .submit(&alan, "If temperature is higher than 25 degrees, turn on the air conditioner with 24 degrees of temperature setting.")
                .unwrap()
        };
        // Cancel path.
        if let SubmitOutcome::ConflictDetected { ticket, .. } = submit(&mut server) {
            server.cancel_pending(ticket).unwrap();
            assert_eq!(server.engine().rules().len(), 1);
            assert!(matches!(
                server.cancel_pending(ticket),
                Err(ServerError::UnknownPending(_))
            ));
        } else {
            panic!("expected conflict");
        }
        // Confirm-keeping-existing-order path.
        if let SubmitOutcome::ConflictDetected { ticket, .. } = submit(&mut server) {
            server.confirm_pending(ticket).unwrap();
            assert_eq!(server.engine().rules().len(), 2);
        } else {
            panic!("expected conflict");
        }
    }

    #[test]
    fn word_definition_then_use() {
        let (mut server, _home) = setup();
        let tom = PersonId::new("tom");
        let outcome = server
            .submit(
                &tom,
                "Let's call the condition that humidity is higher than 60 percent and \
                 temperature is higher than 28 degrees hot and stuffy",
            )
            .unwrap();
        assert!(matches!(
            outcome,
            SubmitOutcome::ConditionWordDefined { ref word } if word == "hot and stuffy"
        ));
        // Tom can use his word now.
        let outcome = server
            .submit(
                &tom,
                "If hot and stuffy, turn on the air conditioner with 25 degrees of temperature setting.",
            )
            .unwrap();
        assert!(matches!(outcome, SubmitOutcome::Registered { .. }));
        // Alan cannot — the word is private to Tom.
        let alan = PersonId::new("alan");
        let err = server
            .submit(
                &alan,
                "If hot and stuffy, turn on the air conditioner with 24 degrees of temperature setting.",
            )
            .unwrap_err();
        assert!(err.to_string().contains("predicate") || err.to_string().contains("parse"));
    }

    #[test]
    fn configuration_word_definition_then_use() {
        let (mut server, home) = setup();
        let tom = PersonId::new("tom");
        server
            .submit(
                &tom,
                "Let's call the configuration that 30 percent of brightness setting half lighting",
            )
            .unwrap();
        let outcome = server
            .submit(
                &tom,
                "When I'm in the living room, turn on the floor lamp with half lighting.",
            )
            .unwrap();
        assert!(matches!(outcome, SubmitOutcome::Registered { .. }));
        // Fire it.
        home.living_presence
            .person_entered(&tom, SimTime::from_millis(1));
        server.step(SimTime::from_millis(2));
        assert_eq!(home.floor_lamp.query("power").unwrap(), Value::Bool(true));
        assert_eq!(
            home.floor_lamp.query("brightness").unwrap(),
            Value::Number(cadel_types::Quantity::from_integer(
                30,
                cadel_types::Unit::Percent
            ))
        );
    }

    #[test]
    fn unknown_user_is_rejected() {
        let (mut server, _home) = setup();
        let ghost = PersonId::new("ghost");
        assert!(matches!(
            server.submit(&ghost, "Turn on the TV."),
            Err(ServerError::UnknownUser(_))
        ));
    }

    #[test]
    fn export_import_round_trip_with_reassignment() {
        let (mut server, _home) = setup();
        let tom = PersonId::new("tom");
        let emily = PersonId::new("emily");
        server
            .submit(&tom, "When a movie is on air, turn on the TV.")
            .unwrap();
        let json = server.export_rules().unwrap();

        // A fresh home imports Tom's rules for Emily.
        let registry = Registry::new();
        LivingRoomHome::install(&registry);
        let mut server2 = HomeServer::new(ControlPoint::new(registry), standard_topology());
        server2.add_user("emily").unwrap();
        let report = server2.import_rules(&emily, &json).unwrap();
        assert_eq!(report.imported.len(), 1);
        assert!(report.skipped.is_empty());
        let rule = server2.engine().rules().get(report.imported[0]).unwrap();
        assert_eq!(rule.owner(), &emily);
        assert!(rule.label().unwrap().contains("movie"));
    }

    #[test]
    fn import_skips_conflicting_rules() {
        let (mut server, _home) = setup();
        let tom = PersonId::new("tom");
        let alan = PersonId::new("alan");
        server
            .submit(&tom, "If temperature is higher than 26 degrees, turn on the air conditioner with 25 degrees of temperature setting.")
            .unwrap();
        // A second household exports a rule with a *different* setpoint;
        // importing it here conflicts with Tom's rule.
        let registry_b = Registry::new();
        LivingRoomHome::install(&registry_b);
        let mut server_b = HomeServer::new(ControlPoint::new(registry_b), standard_topology());
        server_b.add_user("bea").unwrap();
        server_b
            .submit(&PersonId::new("bea"), "If temperature is higher than 25 degrees, turn on the air conditioner with 24 degrees of temperature setting.")
            .unwrap();
        let json = server_b.export_rules().unwrap();
        let report = server.import_rules(&alan, &json).unwrap();
        assert!(report.imported.is_empty());
        assert_eq!(report.skipped.len(), 1);
        assert!(report.skipped[0].1.contains("conflict"));
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cadel-server-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fresh_world() -> (ControlPoint, Topology, LivingRoomHome) {
        let registry = Registry::new();
        let home = LivingRoomHome::install(&registry);
        (ControlPoint::new(registry), standard_topology(), home)
    }

    #[test]
    fn durable_server_recovers_everything_across_restarts() {
        let dir = temp_dir("recover");
        let tom = PersonId::new("tom");
        let alan = PersonId::new("alan");

        // Incarnation 1: users, a private word, two rules (one via the
        // conflict dialog with a context-scoped priority), a freshness
        // policy, and some runtime state.
        {
            let (control, topology, home) = fresh_world();
            let (mut server, report) = HomeServer::open_at(control, topology, &dir).unwrap();
            assert_eq!(report, cadel_store::RecoveryReport::default());
            server.add_user("Tom").unwrap();
            server.add_user("Alan").unwrap();
            server
                .submit(
                    &tom,
                    "Let's call the condition that temperature is higher than 26 degrees \
                     too hot",
                )
                .unwrap();
            server
                .submit(
                    &tom,
                    "If too hot, turn on the air conditioner with 25 degrees of \
                     temperature setting.",
                )
                .unwrap();
            let outcome = server
                .submit(
                    &alan,
                    "If temperature is higher than 25 degrees, turn on the air \
                     conditioner with 24 degrees of temperature setting.",
                )
                .unwrap();
            let SubmitOutcome::ConflictDetected { ticket, conflicts } = outcome else {
                panic!("expected conflict");
            };
            let loser = conflicts[0].rule_b();
            server
                .confirm_with_priority(
                    ticket,
                    vec![ticket, loser],
                    None,
                    Some("Alan first".to_owned()),
                )
                .unwrap();
            server
                .set_freshness_policy(FreshnessPolicy::new(
                    cadel_engine::FreshnessMode::FailClosed,
                    cadel_types::SimDuration::from_minutes(10),
                ))
                .unwrap();
            // Drive the engine so runtime state exists, then checkpoint it.
            home.thermometer
                .set_reading(Rational::from_integer(28), SimTime::from_millis(1))
                .unwrap();
            server.step(SimTime::from_millis(2));
            server.checkpoint_runtime().unwrap();
            server.sync().unwrap();
        }

        // Incarnation 2: everything is back.
        let runtime_before;
        {
            let (control, topology, _home) = fresh_world();
            let (mut server, report) = HomeServer::open_at(control, topology, &dir).unwrap();
            assert!(report.records_replayed >= 6);
            assert!(!report.snapshot_used);
            assert_eq!(report.bytes_truncated, 0);
            assert_eq!(server.engine().rules().len(), 2);
            assert_eq!(server.engine().priorities().orders().len(), 1);
            assert_eq!(
                server.engine().priorities().orders()[0].label(),
                Some("Alan first")
            );
            assert_eq!(
                server.engine().context().freshness_policy().mode,
                cadel_engine::FreshnessMode::FailClosed
            );
            // Tom's private word survived (it re-parses).
            assert!(matches!(
                server.submit(&tom, "If too hot, turn on the TV.").unwrap(),
                SubmitOutcome::Registered { .. }
            ));
            runtime_before = server.engine().export_runtime_json();

            // Compact, then restart once more: recovery now comes from
            // the snapshot alone.
            server.checkpoint().unwrap();
        }
        {
            let (control, topology, _home) = fresh_world();
            let (server, report) = HomeServer::open_at(control, topology, &dir).unwrap();
            assert!(report.snapshot_used);
            assert_eq!(report.records_replayed, 0);
            assert_eq!(server.engine().rules().len(), 3);
            assert_eq!(server.engine().export_runtime_json(), runtime_before);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_mutations_recover_removal_customization_and_priorities() {
        let dir = temp_dir("mutations");
        let tom = PersonId::new("tom");
        let id_keep;
        {
            let (control, topology, _home) = fresh_world();
            let (mut server, _) = HomeServer::open_at(control, topology, &dir).unwrap();
            server.add_user("tom").unwrap();
            let SubmitOutcome::Registered { id: id_drop, .. } = server
                .submit(&tom, "When a movie is on air, turn on the TV.")
                .unwrap()
            else {
                panic!("expected registration");
            };
            let SubmitOutcome::Registered { id, .. } = server
                .submit(&tom, "When I'm in the living room, turn on the floor lamp.")
                .unwrap()
            else {
                panic!("expected registration");
            };
            id_keep = id;
            server.remove_rule(id_drop).unwrap();
            server.set_rule_enabled(id_keep, false).unwrap();
            server
                .add_priority(PriorityOrder::new(
                    cadel_types::DeviceId::new("lamp-lr"),
                    vec![id_keep],
                ))
                .unwrap();
            server.sync().unwrap();
        }
        {
            let (control, topology, _home) = fresh_world();
            let (server, _) = HomeServer::open_at(control, topology, &dir).unwrap();
            assert_eq!(server.engine().rules().len(), 1);
            let rule = server.engine().rules().get(id_keep).unwrap();
            assert!(!rule.is_enabled());
            assert_eq!(server.engine().priorities().orders().len(), 1);
            // The allocator does not reuse the removed rule's id.
            assert!(server.engine().rules().next_id() > id_keep);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ephemeral_server_still_works_without_a_store() {
        let (mut server, _home) = setup();
        assert!(server.store().is_none());
        // Durable-only entry points degrade to no-ops / plain mutations.
        server.checkpoint().unwrap();
        server.checkpoint_runtime().unwrap();
        server
            .set_freshness_policy(FreshnessPolicy::default())
            .unwrap();
    }

    #[test]
    fn import_identical_rule_is_not_a_conflict() {
        let (mut server, _home) = setup();
        let tom = PersonId::new("tom");
        let alan = PersonId::new("alan");
        server
            .submit(&tom, "If temperature is higher than 26 degrees, turn on the air conditioner with 25 degrees of temperature setting.")
            .unwrap();
        let json = server.export_rules().unwrap();
        // Same action, same settings: co-firing is harmless (§4.4 requires
        // *different* actions for a conflict).
        let report = server.import_rules(&alan, &json).unwrap();
        assert_eq!(report.imported.len(), 1);
    }
}
