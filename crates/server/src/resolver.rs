//! The compiler's name environment, backed by the live UPnP registry.
//!
//! When a user writes "turn on the light at the hall", the compiler asks
//! this resolver what "light" at place "hall" denotes. Resolution walks
//! the registry's cached device descriptions — the same data the guidance
//! service browses — so a rule can only ever bind to devices that really
//! exist, which is exactly the paper's argument for the lookup service
//! (§3.2: users "can reach the target sensors and devices quickly").

use crate::users::UserRegistry;
use cadel_lang::Resolver;
use cadel_types::{DeviceId, PersonId, PlaceId, SensorKey, Topology, Unit};
use cadel_upnp::Registry;

/// A [`Resolver`] over the device registry, home topology and user
/// registry.
pub struct RegistryResolver<'a> {
    registry: &'a Registry,
    topology: &'a Topology,
    users: &'a UserRegistry,
}

impl<'a> RegistryResolver<'a> {
    /// Creates a resolver.
    pub fn new(
        registry: &'a Registry,
        topology: &'a Topology,
        users: &'a UserRegistry,
    ) -> RegistryResolver<'a> {
        RegistryResolver {
            registry,
            topology,
            users,
        }
    }

    fn place_matches(&self, device_place: Option<&PlaceId>, scope: &PlaceId) -> bool {
        match device_place {
            Some(p) => self.topology.contains(scope, p).unwrap_or(p == scope),
            None => false,
        }
    }

    /// Devices with the given friendly name (fallback: keyword),
    /// optionally filtered by location.
    fn device_candidates(&self, name: &str, location: Option<&PlaceId>) -> Vec<DeviceId> {
        let mut candidates = self.registry.find_by_name(name);
        if candidates.is_empty() {
            candidates = self.registry.find_by_keyword(name);
        }
        match location {
            None => candidates,
            Some(loc) => candidates
                .into_iter()
                .filter(|udn| {
                    self.registry
                        .description(udn)
                        .ok()
                        .map(|d| self.place_matches(d.location(), loc))
                        .unwrap_or(false)
                })
                .collect(),
        }
    }
}

impl Resolver for RegistryResolver<'_> {
    fn resolve_person(&self, name: &str) -> Option<PersonId> {
        let id = PersonId::new(name.to_ascii_lowercase());
        self.users.contains(&id).then_some(id)
    }

    fn resolve_place(&self, name: &str) -> Option<PlaceId> {
        let id = PlaceId::new(name);
        self.topology.knows(&id).then_some(id)
    }

    fn resolve_device(&self, name: &str, location: Option<&PlaceId>) -> Option<DeviceId> {
        let candidates = self.device_candidates(name, location);
        // Ambiguity is an error the user must fix by adding a location.
        if candidates.len() == 1 {
            candidates.into_iter().next()
        } else {
            None
        }
    }

    fn resolve_sensor(&self, name: &str, location: Option<&PlaceId>) -> Option<SensorKey> {
        // A sensor reference names a state *variable* category
        // ("temperature", "humidity"): find the devices exposing it.
        let mut candidates: Vec<SensorKey> = Vec::new();
        for description in self.registry.descriptions() {
            if let Some((_, var)) = description.find_variable(name) {
                let in_scope = match location {
                    None => true,
                    Some(loc) => self.place_matches(description.location(), loc),
                };
                if in_scope {
                    candidates.push(SensorKey::new(
                        description.udn().clone(),
                        var.name().to_owned(),
                    ));
                }
            }
        }
        candidates.sort();
        if candidates.len() == 1 {
            candidates.into_iter().next()
        } else {
            None
        }
    }

    fn ambient_sensor(&self, place: &PlaceId, kind: &str) -> Option<SensorKey> {
        let mut candidates: Vec<SensorKey> = Vec::new();
        for description in self.registry.descriptions() {
            if !self.place_matches(description.location(), place) {
                continue;
            }
            if let Some((_, var)) = description.find_variable(kind) {
                candidates.push(SensorKey::new(
                    description.udn().clone(),
                    var.name().to_owned(),
                ));
            }
        }
        candidates.sort();
        candidates.into_iter().next()
    }

    fn sensor_unit(&self, sensor: &SensorKey) -> Option<Unit> {
        self.registry
            .description(sensor.device())
            .ok()
            .and_then(|d| {
                d.find_variable(sensor.variable())
                    .and_then(|(_, v)| v.unit())
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadel_devices::LivingRoomHome;

    fn setup() -> (Registry, Topology, UserRegistry) {
        let registry = Registry::new();
        LivingRoomHome::install(&registry);
        let mut topology = Topology::new("home");
        topology.add_floor("first floor").unwrap();
        topology.add_room("living room", "first floor").unwrap();
        topology.add_room("hall", "first floor").unwrap();
        let mut users = UserRegistry::new();
        users.add_user("tom").unwrap();
        users.add_user("alan").unwrap();
        (registry, topology, users)
    }

    #[test]
    fn resolves_people_and_places() {
        let (registry, topology, users) = setup();
        let r = RegistryResolver::new(&registry, &topology, &users);
        assert_eq!(r.resolve_person("Tom"), Some(PersonId::new("tom")));
        assert_eq!(r.resolve_person("zelda"), None);
        assert_eq!(
            r.resolve_place("Living Room"),
            Some(PlaceId::new("living room"))
        );
        assert_eq!(r.resolve_place("garage"), None);
    }

    #[test]
    fn resolves_devices_by_name_and_location() {
        let (registry, topology, users) = setup();
        let r = RegistryResolver::new(&registry, &topology, &users);
        assert_eq!(
            r.resolve_device("air conditioner", None),
            Some(DeviceId::new("aircon-lr"))
        );
        // "light" exists both as the hall light's friendly name and as a
        // keyword of three luminaires: scoping by place disambiguates.
        let hall = PlaceId::new("hall");
        assert_eq!(
            r.resolve_device("light", Some(&hall)),
            Some(DeviceId::new("light-hall"))
        );
        assert_eq!(r.resolve_device("jacuzzi", None), None);
    }

    #[test]
    fn location_scoping_accepts_enclosing_floor() {
        let (registry, topology, users) = setup();
        let r = RegistryResolver::new(&registry, &topology, &users);
        // The hall light is on the first floor.
        let floor = PlaceId::new("first floor");
        assert_eq!(
            r.resolve_device("light", Some(&floor)),
            Some(DeviceId::new("light-hall"))
        );
    }

    #[test]
    fn resolves_sensors_by_variable_category() {
        let (registry, topology, users) = setup();
        let r = RegistryResolver::new(&registry, &topology, &users);
        let key = r.resolve_sensor("temperature", None).unwrap();
        assert_eq!(key.device().as_str(), "thermo-lr");
        assert_eq!(key.variable(), "temperature");
        assert_eq!(r.sensor_unit(&key), Some(Unit::Celsius));
        let key = r.resolve_sensor("humidity", None).unwrap();
        assert_eq!(key.device().as_str(), "hygro-lr");
        assert_eq!(r.resolve_sensor("radiation", None), None);
    }

    #[test]
    fn ambient_sensor_for_place() {
        let (registry, topology, users) = setup();
        let r = RegistryResolver::new(&registry, &topology, &users);
        let key = r
            .ambient_sensor(&PlaceId::new("hall"), "illuminance")
            .unwrap();
        assert_eq!(key.device().as_str(), "lux-hall");
        assert!(r
            .ambient_sensor(&PlaceId::new("living room"), "illuminance")
            .is_none());
    }
}
