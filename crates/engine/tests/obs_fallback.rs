//! The compiled-rule → AST fallback is observable.
//!
//! A rule whose conjunct mixes incompatible units for one sensor cannot
//! be lowered to a compiled program; the engine silently interprets its
//! AST instead. This test pins the telemetry contract for that path:
//! `engine_ast_fallback_total` ticks on every fallback evaluation, while
//! the `engine.ast_fallback` warning event fires once per rule.
//!
//! Lives in its own integration binary because it flips the
//! process-global observability switch.

use cadel_engine::Engine;
use cadel_obs::RingCollector;
use cadel_rule::{ActionSpec, Atom, Condition, ConstraintAtom, Rule, Verb};
use cadel_simplex::RelOp;
use cadel_types::{DeviceId, PersonId, Quantity, RuleId, SensorKey, SimTime, Unit, Value};
use cadel_upnp::{ControlPoint, Registry};
use std::sync::Arc;

#[test]
fn ast_fallback_ticks_counter_and_emits_event_once() {
    let ring = Arc::new(RingCollector::new(64));
    cadel_obs::install(ring.clone());

    // One conjunct constraining the same sensor as °C and % cannot be
    // compiled (same shape as the rule-db fallback test).
    let key = SensorKey::new(DeviceId::new("multi"), "reading");
    let clash = Condition::Atom(Atom::Constraint(ConstraintAtom::new(
        key.clone(),
        RelOp::Gt,
        Quantity::from_integer(26, Unit::Celsius),
    )))
    .and(Condition::Atom(Atom::Constraint(ConstraintAtom::new(
        key,
        RelOp::Lt,
        Quantity::from_integer(60, Unit::Percent),
    ))));
    let rule = Rule::builder(PersonId::new("tom"))
        .condition(clash)
        .action(ActionSpec::new(DeviceId::new("tv"), Verb::TurnOn))
        .build(RuleId::new(7))
        .unwrap();

    let registry = Registry::new();
    let mut engine = Engine::new(ControlPoint::new(registry.clone()));
    engine.set_use_compiled(true);
    engine.add_rule(rule).unwrap();

    let before = cadel_obs::metrics_snapshot()
        .counter("engine_ast_fallback_total")
        .unwrap_or(0);

    // Three sensor changes, three evaluations, three fallbacks.
    let bus = registry.event_bus().clone();
    for seq in 1..=3u64 {
        bus.publish_change(
            DeviceId::new("multi"),
            "reading".to_owned(),
            Value::Number(Quantity::from_integer(
                if seq % 2 == 0 { 30 } else { 70 },
                Unit::Celsius,
            )),
            SimTime::from_millis(seq),
        );
        engine.step(SimTime::from_millis(seq));
    }

    let after = cadel_obs::metrics_snapshot()
        .counter("engine_ast_fallback_total")
        .unwrap_or(0);
    assert_eq!(after - before, 3, "counter ticks on every fallback");

    // The warning event is deduplicated per rule.
    let warnings = ring.events_named("engine.ast_fallback");
    assert_eq!(warnings.len(), 1, "event fires once per rule");
    let rendered = cadel_obs::format_logfmt(&warnings[0].event);
    assert!(rendered.contains("rule=7"), "logfmt: {rendered}");
    assert!(rendered.contains("owner=tom"), "logfmt: {rendered}");

    cadel_obs::shutdown();
}
