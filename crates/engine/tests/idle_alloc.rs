//! An idle engine step must not allocate.
//!
//! The dirty-set refactor claims a step's cost scales with the dirty
//! set; the degenerate case is an empty one. With no sensor writes, no
//! due dwell or freshness deadlines and no pending or true rules, the
//! candidate set is empty and the whole step — ingest, candidate
//! refresh, evaluation, commit, arbitration, metrics — must run in
//! recycled buffers: zero heap allocations, regardless of how many
//! rules are loaded.
//!
//! Pinned with a counting global allocator, in its own integration
//! binary because the global allocator is process-wide.

use cadel_engine::Engine;
use cadel_rule::{ActionSpec, Atom, Condition, ConstraintAtom, Rule, Verb};
use cadel_simplex::RelOp;
use cadel_types::{
    DeviceId, PersonId, Quantity, RuleId, SensorKey, SimDuration, SimTime, Unit, Value,
};
use cadel_upnp::{ControlPoint, Registry};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// Only allocations made while the current thread has armed the counter
// are recorded — libtest's harness threads (timers, stdout capture)
// allocate concurrently and must not pollute the measurement.
thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn counting_here() -> bool {
    // try_with: the allocator can be called during TLS teardown.
    COUNTING.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting_here() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting_here() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn sensor(i: u64) -> SensorKey {
    SensorKey::new(DeviceId::new(format!("sensor-{i}")), "reading")
}

/// `sensor-{i} > 100` — never true in this workload, so the rule
/// settles out of the pending set after its first committed verdict.
fn quiet_rule(id: u64) -> Rule {
    let mut atom = Atom::Constraint(ConstraintAtom::new(
        sensor(id % 8),
        RelOp::Gt,
        Quantity::from_integer(100, Unit::Celsius),
    ));
    // A sprinkling of dwell clauses: their inner conditions stay false,
    // so no window ever opens and no deadline is ever armed.
    if id.is_multiple_of(5) {
        atom = Atom::held_for(atom, SimDuration::from_minutes(5));
    }
    Rule::builder(PersonId::new("tom"))
        .condition(Condition::Atom(atom))
        .action(ActionSpec::new(DeviceId::new("dev-0"), Verb::TurnOn))
        .build(RuleId::new(id))
        .expect("static rule compiles")
}

#[test]
fn idle_steps_do_not_allocate() {
    let mut engine = Engine::new(ControlPoint::new(Registry::new()));
    for id in 1..=64 {
        engine.add_rule(quiet_rule(id)).unwrap();
    }

    // Warm-up: the first steps commit every rule's (false) verdict out
    // of the pending set, grow the candidate/stats buffers and touch the
    // lazily-initialised metrics. Include some sensor writes so the dirt
    // log and the mirror boards reach their steady capacity too.
    for s in 0..10u64 {
        engine.context_mut().set_value(
            sensor(s % 8),
            Value::Number(Quantity::from_integer(-5, Unit::Celsius)),
        );
        let report = engine.step(SimTime::EPOCH + SimDuration::from_secs(s));
        assert!(report.is_empty(), "no rule can fire in this workload");
    }

    COUNTING.with(|c| c.set(true));
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for s in 10..1_010u64 {
        let report = engine.step(SimTime::EPOCH + SimDuration::from_secs(s));
        assert!(report.is_empty());
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    COUNTING.with(|c| c.set(false));

    assert_eq!(
        after - before,
        0,
        "idle steady-state steps must not allocate \
         ({} allocations across 1000 steps with 64 rules loaded)",
        after - before
    );
}
