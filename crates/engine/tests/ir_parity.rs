//! Lockstep parity between the compiled-IR fast path and the AST
//! interpreter: two engines with identical rules and identical context
//! mutations must produce byte-identical [`StepReport`]s on every step,
//! with the trigger index both on and off.
//!
//! The workload is randomized (deterministic SplitMix64 seeds) over every
//! atom kind the IR can lower — numeric constraints, device state, events
//! (transient and persistent), presence, time windows, weekdays and
//! nested `HeldFor` — under arbitrarily nested And/Or conditions and
//! optional `until` release clauses.

use cadel_engine::{ContextStore, Engine, StepReport};
use cadel_rule::{
    ActionSpec, Atom, Condition, ConstraintAtom, EventAtom, PresenceAtom, Rule, StateAtom, Subject,
    Verb,
};
use cadel_simplex::RelOp;
use cadel_types::{
    DayPart, DeviceId, PersonId, PlaceId, Quantity, Rng, RuleId, SensorKey, SimDuration, SimTime,
    Unit, Value,
};
use cadel_upnp::{ControlPoint, Registry};

const PEOPLE: [&str; 2] = ["tom", "alan"];
const PLACES: [&str; 2] = ["living room", "hall"];
const OPS: [RelOp; 5] = [RelOp::Lt, RelOp::Le, RelOp::Gt, RelOp::Ge, RelOp::Eq];

fn sensor(i: u64) -> SensorKey {
    SensorKey::new(DeviceId::new(format!("sensor-{i}")), "reading")
}

fn constraint_atom(rng: &mut Rng) -> Atom {
    Atom::Constraint(ConstraintAtom::new(
        sensor(rng.below(3)),
        *rng.pick(&OPS),
        Quantity::from_integer(rng.range_i64(-5, 15), Unit::Celsius),
    ))
}

fn arb_atom(rng: &mut Rng) -> Atom {
    match rng.below(8) {
        0 | 1 => constraint_atom(rng),
        2 => Atom::Event(EventAtom::new("chan", format!("event-{}", rng.below(3)))),
        3 => Atom::State(StateAtom::new(
            DeviceId::new("tv-0"),
            "power",
            Value::Bool(rng.chance(1, 2)),
        )),
        4 => Atom::Presence(PresenceAtom::person_at(
            *rng.pick(&PEOPLE),
            *rng.pick(&PLACES),
        )),
        5 => {
            let subject = if rng.chance(1, 2) {
                Subject::Somebody
            } else {
                Subject::Nobody
            };
            Atom::Presence(PresenceAtom::new(subject, PlaceId::new(*rng.pick(&PLACES))))
        }
        6 => Atom::Time(
            rng.pick(&[DayPart::Morning, DayPart::Afternoon, DayPart::Evening])
                .window(),
        ),
        _ => Atom::held_for(
            constraint_atom(rng),
            SimDuration::from_minutes(rng.range_i64(1, 3) as u64),
        ),
    }
}

fn arb_condition(rng: &mut Rng, depth: u32) -> Condition {
    if depth == 0 || rng.chance(2, 5) {
        return Condition::Atom(arb_atom(rng));
    }
    let children: Vec<Condition> = (0..rng.range_i64(1, 3))
        .map(|_| arb_condition(rng, depth - 1))
        .collect();
    if rng.chance(1, 2) {
        Condition::And(children)
    } else {
        Condition::Or(children)
    }
}

fn arb_rule(rng: &mut Rng, id: u64) -> Option<Rule> {
    let device = DeviceId::new(format!("dev-{}", rng.below(3)));
    let verb = if rng.chance(1, 2) {
        Verb::TurnOn
    } else {
        Verb::TurnOff
    };
    let mut builder = Rule::builder(PersonId::new(*rng.pick(&PEOPLE)))
        .condition(arb_condition(rng, 2))
        .action(ActionSpec::new(device, verb));
    if rng.chance(3, 10) {
        builder = builder.until(arb_condition(rng, 1));
    }
    // DNF blowup is the only way build can fail here; skip those rules.
    builder.build(RuleId::new(id)).ok()
}

/// One context mutation, generated once and applied to both engines.
enum Mutation {
    Sensor(u64, i64),
    /// A non-numeric reading on a numeric sensor (never satisfies
    /// constraints, in either path).
    SensorText(u64),
    TvPower(bool),
    Event(u64),
    PersistentEvent(u64),
    ClearChannel,
    Presence(usize, Option<usize>),
}

fn arb_mutations(rng: &mut Rng) -> Vec<Mutation> {
    let mut muts = Vec::new();
    for s in 0..3 {
        if rng.chance(1, 2) {
            if rng.chance(1, 10) {
                muts.push(Mutation::SensorText(s));
            } else {
                muts.push(Mutation::Sensor(s, rng.range_i64(-5, 15)));
            }
        }
    }
    if rng.chance(1, 3) {
        muts.push(Mutation::TvPower(rng.chance(1, 2)));
    }
    if rng.chance(1, 3) {
        muts.push(Mutation::Event(rng.below(3)));
    }
    if rng.chance(1, 6) {
        muts.push(Mutation::PersistentEvent(rng.below(3)));
    }
    if rng.chance(1, 12) {
        muts.push(Mutation::ClearChannel);
    }
    if rng.chance(1, 3) {
        muts.push(Mutation::Presence(
            rng.below(2) as usize,
            match rng.below(3) {
                0 => None,
                p => Some((p - 1) as usize),
            },
        ));
    }
    muts
}

fn apply(ctx: &mut ContextStore, mutation: &Mutation) {
    match mutation {
        Mutation::Sensor(s, v) => ctx.set_value(
            sensor(*s),
            Value::Number(Quantity::from_integer(*v, Unit::Celsius)),
        ),
        Mutation::SensorText(s) => ctx.set_value(sensor(*s), Value::Text("offline".to_owned())),
        Mutation::TvPower(on) => {
            ctx.set_value(
                SensorKey::new(DeviceId::new("tv-0"), "power"),
                Value::Bool(*on),
            );
        }
        Mutation::Event(e) => ctx.raise_event("chan", &format!("event-{e}")),
        Mutation::PersistentEvent(e) => ctx.set_persistent_event("chan", &format!("event-{e}")),
        Mutation::ClearChannel => ctx.clear_persistent_channel("chan"),
        Mutation::Presence(person, place) => ctx.set_presence(
            PersonId::new(PEOPLE[*person]),
            place.map(|p| PlaceId::new(PLACES[p])),
        ),
    }
}

fn fresh_engine(rules: &[Rule], compiled: bool, trigger_index: bool) -> Engine {
    let mut engine = Engine::new(ControlPoint::new(Registry::new()));
    engine.set_use_compiled(compiled);
    engine.set_use_trigger_index(trigger_index);
    for rule in rules {
        engine.add_rule(rule.clone()).unwrap();
    }
    engine
}

/// Runs the compiled and interpreted engines in lockstep over the same
/// random tape and asserts identical reports at every step.
fn run_lockstep(seed: u64, trigger_index: bool) -> Vec<StepReport> {
    let mut rng = Rng::new(seed);
    let rules: Vec<Rule> = (0..40).filter_map(|i| arb_rule(&mut rng, 1 + i)).collect();
    assert!(rules.len() >= 30, "seed {seed} generated too few rules");

    let mut compiled = fresh_engine(&rules, true, trigger_index);
    let mut interpreted = fresh_engine(&rules, false, trigger_index);

    let mut reports = Vec::new();
    for step in 1..=80u64 {
        for mutation in arb_mutations(&mut rng) {
            apply(compiled.context_mut(), &mutation);
            apply(interpreted.context_mut(), &mutation);
        }
        let now = SimTime::EPOCH + SimDuration::from_minutes(step * 7);
        let a = compiled.step(now);
        let b = interpreted.step(now);
        assert_eq!(
            a, b,
            "compiled and interpreted reports diverged at step {step} (seed {seed}, \
             trigger_index {trigger_index})"
        );
        reports.push(a);
    }
    // The paths must also agree on who holds each device afterwards.
    for d in 0..3 {
        let device = DeviceId::new(format!("dev-{d}"));
        assert_eq!(compiled.holder(&device), interpreted.holder(&device));
    }
    reports
}

#[test]
fn compiled_and_interpreted_agree_with_trigger_index() {
    for seed in [1, 42, 4242] {
        let reports = run_lockstep(seed, true);
        // Sanity: the workload actually fires rules.
        assert!(
            reports.iter().any(|r| !r.is_empty()),
            "seed {seed} was inert"
        );
    }
}

#[test]
fn compiled_and_interpreted_agree_without_trigger_index() {
    for seed in [7, 1337] {
        let reports = run_lockstep(seed, false);
        assert!(
            reports.iter().any(|r| !r.is_empty()),
            "seed {seed} was inert"
        );
    }
}
