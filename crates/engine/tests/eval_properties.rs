//! Property tests tying the runtime evaluator to the conflict checker's
//! normal form: a condition holds iff its DNF holds, and firings respect
//! the constraint semantics of `cadel-simplex`.

// Requires the `proptest` feature (and its dev-dependency); the default
// build is offline and compiles this file to nothing.
#![cfg(feature = "proptest")]

use cadel_engine::{ContextStore, Evaluator, HeldTracker};
use cadel_rule::{Atom, Condition, Conjunct, ConstraintAtom, EventAtom};
use cadel_simplex::RelOp;
use cadel_types::{DeviceId, Quantity, SensorKey, SimTime, Unit, Value};
use proptest::prelude::*;

fn arb_relop() -> impl Strategy<Value = RelOp> {
    prop_oneof![
        Just(RelOp::Lt),
        Just(RelOp::Le),
        Just(RelOp::Gt),
        Just(RelOp::Ge),
        Just(RelOp::Eq),
    ]
}

fn arb_atom() -> impl Strategy<Value = Atom> {
    prop_oneof![
        (0u32..3, arb_relop(), -5i64..15).prop_map(|(s, op, t)| {
            Atom::Constraint(ConstraintAtom::new(
                SensorKey::new(DeviceId::new(format!("sensor-{s}")), "reading"),
                op,
                Quantity::from_integer(t, Unit::Celsius),
            ))
        }),
        (0u32..3).prop_map(|e| Atom::Event(EventAtom::new("chan", format!("event-{e}")))),
    ]
}

fn arb_condition(depth: u32) -> BoxedStrategy<Condition> {
    if depth == 0 {
        arb_atom().prop_map(Condition::Atom).boxed()
    } else {
        prop_oneof![
            arb_atom().prop_map(Condition::Atom),
            proptest::collection::vec(arb_condition(depth - 1), 1..3).prop_map(Condition::And),
            proptest::collection::vec(arb_condition(depth - 1), 1..3).prop_map(Condition::Or),
        ]
        .boxed()
    }
}

/// A random context: readings for the 3 sensors and a subset of events.
fn arb_context() -> impl Strategy<Value = ContextStore> {
    (
        proptest::collection::vec(-5i64..15, 3),
        proptest::collection::vec(proptest::bool::ANY, 3),
    )
        .prop_map(|(readings, events)| {
            let mut ctx = ContextStore::default();
            ctx.set_now(SimTime::from_millis(1));
            for (i, r) in readings.iter().enumerate() {
                ctx.set_value(
                    SensorKey::new(DeviceId::new(format!("sensor-{i}")), "reading"),
                    Value::Number(Quantity::from_integer(*r, Unit::Celsius)),
                );
            }
            for (i, on) in events.iter().enumerate() {
                if *on {
                    ctx.raise_event("chan", &format!("event-{i}"));
                }
            }
            ctx
        })
}

fn conjunct_holds(ctx: &ContextStore, conjunct: &Conjunct) -> bool {
    let mut held = HeldTracker::new();
    conjunct
        .atoms()
        .iter()
        .all(|a| Evaluator::new(ctx, &mut held).atom_holds(a))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Tree evaluation and DNF evaluation agree — the property that makes
    /// the conflict checker (which reasons over the DNF) sound with
    /// respect to the runtime (which evaluates the tree).
    #[test]
    fn condition_tree_and_dnf_agree(cond in arb_condition(2), ctx in arb_context()) {
        let tree = {
            let mut held = HeldTracker::new();
            Evaluator::new(&ctx, &mut held).condition_holds(&cond)
        };
        let dnf = cond.to_dnf().unwrap();
        let via_dnf = dnf.conjuncts().iter().any(|c| conjunct_holds(&ctx, c));
        prop_assert_eq!(tree, via_dnf, "condition {} disagreed with its DNF {}", cond, dnf);
    }

    /// De Morgan-ish sanity: AND is no weaker than its conjuncts, OR no
    /// stronger than its disjuncts.
    #[test]
    fn and_or_bounds(a in arb_atom(), b in arb_atom(), ctx in arb_context()) {
        let mut held = HeldTracker::new();
        let ca = Condition::Atom(a);
        let cb = Condition::Atom(b);
        let holds = |c: &Condition, held: &mut HeldTracker| {
            Evaluator::new(&ctx, held).condition_holds(c)
        };
        let va = holds(&ca, &mut held);
        let vb = holds(&cb, &mut held);
        let vand = holds(&ca.clone().and(cb.clone()), &mut held);
        let vor = holds(&ca.or(cb), &mut held);
        prop_assert_eq!(vand, va && vb);
        prop_assert_eq!(vor, va || vb);
    }

    /// A constraint atom evaluates exactly like the solver's `RelOp`
    /// semantics on the stored reading.
    #[test]
    fn constraint_atoms_match_relop_semantics(
        reading in -5i64..15,
        threshold in -5i64..15,
        op in arb_relop(),
    ) {
        let key = SensorKey::new(DeviceId::new("sensor-0"), "reading");
        let mut ctx = ContextStore::default();
        ctx.set_value(
            key.clone(),
            Value::Number(Quantity::from_integer(reading, Unit::Celsius)),
        );
        let atom = Atom::Constraint(ConstraintAtom::new(
            key,
            op,
            Quantity::from_integer(threshold, Unit::Celsius),
        ));
        let mut held = HeldTracker::new();
        let holds = Evaluator::new(&ctx, &mut held).atom_holds(&atom);
        let expected = op.holds(
            cadel_types::Rational::from_integer(reading),
            cadel_types::Rational::from_integer(threshold),
        );
        prop_assert_eq!(holds, expected);
    }
}
