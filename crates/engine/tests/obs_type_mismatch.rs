//! A numeric constraint reading a present-but-non-numeric value used to
//! evaluate to a silent `false` — indistinguishable from "the room is
//! cold" when a flaky sensor starts reporting `"offline"`. Both
//! evaluation paths now report it: `engine_type_mismatch_total` ticks on
//! every occurrence and a rate-limited `engine.type_mismatch` warning
//! event carries the sensor and the offending value.
//!
//! Lives in its own integration binary because it flips the
//! process-global observability switch.

use cadel_engine::Engine;
use cadel_obs::RingCollector;
use cadel_rule::{ActionSpec, Atom, Condition, ConstraintAtom, Rule, Verb};
use cadel_simplex::RelOp;
use cadel_types::{DeviceId, PersonId, Quantity, RuleId, SensorKey, SimTime, Unit, Value};
use cadel_upnp::{ControlPoint, Registry};
use std::sync::Arc;

fn mismatch_engine(compiled: bool, rule_id: u64) -> Engine {
    let rule = Rule::builder(PersonId::new("tom"))
        .condition(Condition::Atom(Atom::Constraint(ConstraintAtom::new(
            SensorKey::new(DeviceId::new("thermo"), "reading"),
            RelOp::Gt,
            Quantity::from_integer(26, Unit::Celsius),
        ))))
        .action(ActionSpec::new(DeviceId::new("fan"), Verb::TurnOn))
        .build(RuleId::new(rule_id))
        .unwrap();
    let mut engine = Engine::new(ControlPoint::new(Registry::new()));
    engine.set_use_compiled(compiled);
    engine.add_rule(rule).unwrap();
    engine
}

#[test]
fn non_numeric_reading_is_counted_and_reported_on_both_paths() {
    let ring = Arc::new(RingCollector::new(64));
    cadel_obs::install(ring.clone());

    let counter = || {
        cadel_obs::metrics_snapshot()
            .counter("engine_type_mismatch_total")
            .unwrap_or(0)
    };
    let key = SensorKey::new(DeviceId::new("thermo"), "reading");

    for (compiled, path) in [(true, "compiled"), (false, "ast")] {
        let mut engine = mismatch_engine(compiled, 1);
        engine
            .context_mut()
            .set_value(key.clone(), Value::Text("offline".to_owned()));

        let before = counter();
        let report = engine.step(SimTime::from_millis(1));
        assert!(
            report.firings.is_empty(),
            "{path}: a non-numeric reading must not satisfy the constraint"
        );
        assert_eq!(
            counter() - before,
            1,
            "{path}: one evaluation, one mismatch tick"
        );
    }

    // Incomparable dimensions (a humidity reading against a temperature
    // threshold) are the same defect and tick the same counter.
    let mut engine = mismatch_engine(true, 1);
    engine.context_mut().set_value(
        key,
        Value::Number(Quantity::from_integer(60, Unit::Percent)),
    );
    let before = counter();
    engine.step(SimTime::from_millis(1));
    assert_eq!(counter() - before, 1, "dimension clash ticks the counter");

    // The warning event names the offending value.
    let warnings = ring.events_named("engine.type_mismatch");
    assert!(
        !warnings.is_empty(),
        "mismatches must surface as engine.type_mismatch events"
    );
    let rendered = cadel_obs::format_logfmt(&warnings[0].event);
    assert!(rendered.contains("offline"), "logfmt: {rendered}");

    cadel_obs::shutdown();
}
