//! Acceptance parity for dirty-set incremental evaluation: an engine on
//! the slot-keyed trigger index must be observationally identical to the
//! full-scan ablation — byte-identical [`StepReport`]s *and*
//! byte-identical runtime checkpoints (`export_runtime_json`) after
//! every step — at every evaluation thread count, under an active
//! [`FreshnessPolicy`], pending `held for` windows, direct
//! `context_mut()` writes, and randomized rule churn
//! (add/remove/update/enable-disable) mid-run.
//!
//! The workload tape is deterministic (SplitMix64 seeds) and applied to
//! both engines identically; any divergence pinpoints an
//! under-approximated candidate set.

use cadel_engine::{ContextStore, Engine, FreshnessMode, FreshnessPolicy};
use cadel_rule::{
    ActionSpec, Atom, Condition, ConstraintAtom, EventAtom, PresenceAtom, Rule, StateAtom, Subject,
    Verb,
};
use cadel_simplex::RelOp;
use cadel_types::{
    DayPart, DeviceId, PersonId, PlaceId, Quantity, Rng, RuleId, SensorKey, SimDuration, SimTime,
    Unit, Value,
};
use cadel_upnp::{ControlPoint, Registry};

const PEOPLE: [&str; 2] = ["tom", "alan"];
const PLACES: [&str; 2] = ["living room", "hall"];
const OPS: [RelOp; 5] = [RelOp::Lt, RelOp::Le, RelOp::Gt, RelOp::Ge, RelOp::Eq];

fn sensor(i: u64) -> SensorKey {
    SensorKey::new(DeviceId::new(format!("sensor-{i}")), "reading")
}

fn constraint_atom(rng: &mut Rng) -> Atom {
    Atom::Constraint(ConstraintAtom::new(
        sensor(rng.below(4)),
        *rng.pick(&OPS),
        Quantity::from_integer(rng.range_i64(-5, 15), Unit::Celsius),
    ))
}

fn arb_atom(rng: &mut Rng) -> Atom {
    match rng.below(9) {
        0 | 1 => constraint_atom(rng),
        2 => Atom::Event(EventAtom::new("chan", format!("event-{}", rng.below(3)))),
        3 => Atom::State(StateAtom::new(
            DeviceId::new("tv-0"),
            "power",
            Value::Bool(rng.chance(1, 2)),
        )),
        4 => Atom::Presence(PresenceAtom::person_at(
            *rng.pick(&PEOPLE),
            *rng.pick(&PLACES),
        )),
        5 => {
            let subject = if rng.chance(1, 2) {
                Subject::Somebody
            } else {
                Subject::Nobody
            };
            Atom::Presence(PresenceAtom::new(subject, PlaceId::new(*rng.pick(&PLACES))))
        }
        6 => Atom::Time(
            rng.pick(&[DayPart::Morning, DayPart::Afternoon, DayPart::Evening])
                .window(),
        ),
        7 => Atom::held_for(
            constraint_atom(rng),
            SimDuration::from_minutes(rng.range_i64(1, 3) as u64),
        ),
        // Nested dwell: exercises chained deadline arming.
        _ => Atom::held_for(
            Atom::held_for(constraint_atom(rng), SimDuration::from_minutes(1)),
            SimDuration::from_minutes(rng.range_i64(1, 2) as u64),
        ),
    }
}

fn arb_condition(rng: &mut Rng, depth: u32) -> Condition {
    if depth == 0 || rng.chance(2, 5) {
        return Condition::Atom(arb_atom(rng));
    }
    let children: Vec<Condition> = (0..rng.range_i64(1, 3))
        .map(|_| arb_condition(rng, depth - 1))
        .collect();
    if rng.chance(1, 2) {
        Condition::And(children)
    } else {
        Condition::Or(children)
    }
}

fn arb_rule(rng: &mut Rng, id: u64) -> Option<Rule> {
    let device = DeviceId::new(format!("dev-{}", rng.below(3)));
    let verb = if rng.chance(1, 2) {
        Verb::TurnOn
    } else {
        Verb::TurnOff
    };
    let mut builder = Rule::builder(PersonId::new(*rng.pick(&PEOPLE)))
        .condition(arb_condition(rng, 2))
        .action(ActionSpec::new(device, verb));
    if rng.chance(3, 10) {
        builder = builder.until(arb_condition(rng, 1));
    }
    builder.build(RuleId::new(id)).ok()
}

enum Mutation {
    Sensor(u64, i64),
    TvPower(bool),
    Event(u64),
    PersistentEvent(u64),
    ClearChannel,
    Presence(usize, Option<usize>),
}

fn arb_mutations(rng: &mut Rng) -> Vec<Mutation> {
    let mut muts = Vec::new();
    for s in 0..4 {
        if rng.chance(1, 2) {
            muts.push(Mutation::Sensor(s, rng.range_i64(-5, 15)));
        }
    }
    if rng.chance(1, 3) {
        muts.push(Mutation::TvPower(rng.chance(1, 2)));
    }
    if rng.chance(1, 3) {
        muts.push(Mutation::Event(rng.below(3)));
    }
    if rng.chance(1, 6) {
        muts.push(Mutation::PersistentEvent(rng.below(3)));
    }
    if rng.chance(1, 12) {
        muts.push(Mutation::ClearChannel);
    }
    if rng.chance(1, 3) {
        muts.push(Mutation::Presence(
            rng.below(2) as usize,
            match rng.below(3) {
                0 => None,
                p => Some((p - 1) as usize),
            },
        ));
    }
    muts
}

/// Direct `context_mut()` writes — the paths that bypass ingest and are
/// covered only by the context's dirt log.
fn apply(ctx: &mut ContextStore, mutation: &Mutation) {
    match mutation {
        Mutation::Sensor(s, v) => ctx.set_value(
            sensor(*s),
            Value::Number(Quantity::from_integer(*v, Unit::Celsius)),
        ),
        Mutation::TvPower(on) => ctx.set_value(
            SensorKey::new(DeviceId::new("tv-0"), "power"),
            Value::Bool(*on),
        ),
        Mutation::Event(e) => ctx.raise_event("chan", &format!("event-{e}")),
        Mutation::PersistentEvent(e) => ctx.set_persistent_event("chan", &format!("event-{e}")),
        Mutation::ClearChannel => ctx.clear_persistent_channel("chan"),
        Mutation::Presence(person, place) => ctx.set_presence(
            PersonId::new(PEOPLE[*person]),
            place.map(|p| PlaceId::new(PLACES[p])),
        ),
    }
}

/// One rule-set mutation, applied identically to both engines.
enum Churn {
    Add(Rule),
    Remove(RuleId),
    Replace(Rule),
    Toggle(RuleId, bool),
}

fn arb_churn(rng: &mut Rng, live: &mut Vec<u64>, next_id: &mut u64) -> Option<Churn> {
    match rng.below(4) {
        0 => {
            let id = *next_id;
            *next_id += 1;
            let rule = arb_rule(rng, id)?;
            live.push(id);
            Some(Churn::Add(rule))
        }
        1 if live.len() > 10 => {
            let victim = live.swap_remove(rng.below(live.len() as u64) as usize);
            Some(Churn::Remove(RuleId::new(victim)))
        }
        2 if !live.is_empty() => {
            let id = live[rng.below(live.len() as u64) as usize];
            let rule = arb_rule(rng, id)?;
            Some(Churn::Replace(rule))
        }
        3 if !live.is_empty() => {
            let id = live[rng.below(live.len() as u64) as usize];
            Some(Churn::Toggle(RuleId::new(id), rng.chance(1, 2)))
        }
        _ => None,
    }
}

fn apply_churn(engine: &mut Engine, churn: &Churn) {
    match churn {
        Churn::Add(rule) => {
            engine.add_rule(rule.clone()).unwrap();
        }
        Churn::Remove(id) => engine.remove_rule(*id).unwrap(),
        Churn::Replace(rule) => engine.update_rule(rule.clone()).unwrap(),
        Churn::Toggle(id, enabled) => {
            let rule = engine.rules().get(*id).unwrap().clone();
            engine.update_rule(rule.with_enabled(*enabled)).unwrap();
        }
    }
}

fn fresh_engine(rules: &[Rule], trigger_index: bool, threads: usize) -> Engine {
    let mut engine = Engine::new(ControlPoint::new(Registry::new()));
    engine.set_use_trigger_index(trigger_index);
    engine.set_eval_threads(threads);
    for rule in rules {
        engine.add_rule(rule.clone()).unwrap();
    }
    engine
}

/// Drives the dirty-set engine and the full-scan ablation in lockstep
/// over the same tape and asserts byte-identical step reports and
/// runtime checkpoints after every step.
fn run_lockstep(seed: u64, threads: usize) {
    let mut rng = Rng::new(seed);
    let rules: Vec<Rule> = (0..40).filter_map(|i| arb_rule(&mut rng, 1 + i)).collect();
    assert!(rules.len() >= 30, "seed {seed} generated too few rules");
    let mut live: Vec<u64> = rules.iter().map(|r| r.id().raw()).collect();
    let mut next_id = 1000u64;

    let mut dirty = fresh_engine(&rules, true, threads);
    let mut full = fresh_engine(&rules, false, threads);

    let mut fired = false;
    for step in 1..=90u64 {
        // Mid-run policy changes: activate a freshness window, later
        // tighten it, later drop it — each transition must re-arm the
        // index without a divergence.
        let policy = match step {
            25 => Some(FreshnessPolicy::new(
                FreshnessMode::FailClosed,
                SimDuration::from_minutes(30),
            )),
            50 => Some(FreshnessPolicy::new(
                FreshnessMode::FailOpen,
                SimDuration::from_minutes(10),
            )),
            75 => Some(FreshnessPolicy::default()),
            _ => None,
        };
        if let Some(policy) = policy {
            dirty.context_mut().set_freshness_policy(policy);
            full.context_mut().set_freshness_policy(policy);
        }
        if step % 6 == 0 {
            if let Some(churn) = arb_churn(&mut rng, &mut live, &mut next_id) {
                apply_churn(&mut dirty, &churn);
                apply_churn(&mut full, &churn);
            }
        }
        for mutation in arb_mutations(&mut rng) {
            apply(dirty.context_mut(), &mutation);
            apply(full.context_mut(), &mutation);
        }
        let now = SimTime::EPOCH + SimDuration::from_minutes(step * 7);
        let a = dirty.step(now);
        let b = full.step(now);
        assert_eq!(
            a, b,
            "dirty-set and full-scan reports diverged at step {step} (seed {seed}, \
             threads {threads})"
        );
        fired |= !a.is_empty();
        // Checkpoints must agree byte-for-byte: same held-for windows,
        // same last-state map, same holders, same context.
        let ca = dirty.export_runtime_json().to_compact();
        let cb = full.export_runtime_json().to_compact();
        assert_eq!(
            ca, cb,
            "runtime checkpoints diverged at step {step} (seed {seed}, threads {threads})"
        );
    }
    assert!(fired, "seed {seed} was inert");
}

#[test]
fn dirty_set_matches_full_scan_serial() {
    for seed in [3, 99, 2718] {
        run_lockstep(seed, 1);
    }
}

#[test]
fn dirty_set_matches_full_scan_two_threads() {
    for seed in [3, 314] {
        run_lockstep(seed, 2);
    }
}

#[test]
fn dirty_set_matches_full_scan_eight_threads() {
    for seed in [3, 161] {
        run_lockstep(seed, 8);
    }
}

/// A restored engine on the dirty-set path resumes in lockstep with a
/// restored full-scan engine: import re-arms dwell and freshness
/// deadlines from the checkpoint, not from live observation.
#[test]
fn restored_engines_stay_in_parity() {
    let seed = 77u64;
    let mut rng = Rng::new(seed);
    let rules: Vec<Rule> = (0..40).filter_map(|i| arb_rule(&mut rng, 1 + i)).collect();
    let mut dirty = fresh_engine(&rules, true, 1);
    let mut full = fresh_engine(&rules, false, 1);
    for step in 1..=30u64 {
        for mutation in arb_mutations(&mut rng) {
            apply(dirty.context_mut(), &mutation);
            apply(full.context_mut(), &mutation);
        }
        let now = SimTime::EPOCH + SimDuration::from_minutes(step * 7);
        assert_eq!(dirty.step(now), full.step(now));
    }
    let checkpoint = dirty.export_runtime_json();
    assert_eq!(checkpoint, full.export_runtime_json());

    // Restore BOTH paths from the same checkpoint into fresh engines and
    // keep going: deadlines must come back armed.
    let mut dirty2 = fresh_engine(&rules, true, 1);
    let mut full2 = fresh_engine(&rules, false, 1);
    dirty2.import_runtime_json(&checkpoint).unwrap();
    full2.import_runtime_json(&checkpoint).unwrap();
    for step in 31..=60u64 {
        for mutation in arb_mutations(&mut rng) {
            apply(dirty2.context_mut(), &mutation);
            apply(full2.context_mut(), &mutation);
        }
        let now = SimTime::EPOCH + SimDuration::from_minutes(step * 7);
        assert_eq!(
            dirty2.step(now),
            full2.step(now),
            "restored engines diverged at step {step}"
        );
        assert_eq!(
            dirty2.export_runtime_json().to_compact(),
            full2.export_runtime_json().to_compact()
        );
    }
}
