//! The `held for` hot path must not allocate in steady state.
//!
//! Evaluating a `HeldFor` atom identifies the tracked condition by a
//! textual fingerprint. Naively that means one `format!` String per
//! evaluation per step — a permanent allocation tax on every rule with a
//! dwell clause. The interpreter instead renders the fingerprint into a
//! thread-local scratch buffer (and the compiled path precomputes it at
//! lowering time), so steady-state evaluation allocates nothing.
//!
//! This test pins that with a counting global allocator: after a warm-up
//! evaluation (which may grow the scratch buffer and insert the tracker
//! entry), repeated evaluations of a held-for condition perform zero
//! heap allocations. Lives in its own integration binary because the
//! global allocator is process-wide.

use cadel_engine::{ContextStore, Evaluator, HeldTracker};
use cadel_rule::{Atom, Condition, ConstraintAtom};
use cadel_simplex::RelOp;
use cadel_types::{Date, DeviceId, Quantity, SensorKey, SimDuration, SimTime, Unit, Value};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// Only allocations made while the current thread has armed the counter
// are recorded — libtest's harness threads (timers, stdout capture)
// allocate concurrently and must not pollute the measurement.
thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn counting_here() -> bool {
    // try_with: the allocator can be called during TLS teardown.
    COUNTING.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting_here() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting_here() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_heldfor_evaluation_does_not_allocate() {
    let sensor = SensorKey::new(DeviceId::new("thermo"), "temperature");
    // Two dwell clauses under an Or: while both are pending, neither
    // short-circuits away, so every evaluation renders both fingerprints.
    let condition = Condition::Atom(Atom::held_for(
        Atom::Constraint(ConstraintAtom::new(
            sensor.clone(),
            RelOp::Gt,
            Quantity::from_integer(26, Unit::Celsius),
        )),
        SimDuration::from_minutes(5),
    ))
    .or(Condition::Atom(Atom::held_for(
        Atom::Constraint(ConstraintAtom::new(
            sensor.clone(),
            RelOp::Gt,
            Quantity::from_integer(28, Unit::Celsius),
        )),
        SimDuration::from_minutes(7),
    )));

    let mut ctx = ContextStore::new(Date::new(2005, 6, 6).expect("static date"));
    ctx.set_now(SimTime::EPOCH);
    ctx.set_value(
        sensor,
        Value::Number(Quantity::from_integer(30, Unit::Celsius)),
    );
    let mut held = HeldTracker::new();

    // Warm-up: grows the thread-local scratch buffer and inserts both
    // tracker entries (the only transitions this workload ever makes).
    for _ in 0..3 {
        Evaluator::new(&ctx, &mut held).condition_holds(&condition);
    }
    assert_eq!(held.tracked(), 2, "both dwell clauses are tracked");

    COUNTING.with(|c| c.set(true));
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut holds = 0u32;
    for _ in 0..1_000 {
        if Evaluator::new(&ctx, &mut held).condition_holds(&condition) {
            holds += 1;
        }
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    COUNTING.with(|c| c.set(false));

    assert_eq!(holds, 0, "the 5-minute dwell has not elapsed at EPOCH");
    assert_eq!(
        after - before,
        0,
        "steady-state held-for evaluation must not allocate \
         ({} allocations across 1000 evaluations)",
        after - before
    );

    // And once the dwell elapses the condition actually holds — the
    // scratch-buffer fingerprint still matches the tracked entry.
    ctx.set_now(SimTime::EPOCH + SimDuration::from_minutes(6));
    assert!(Evaluator::new(&ctx, &mut held).condition_holds(&condition));
}
