//! Lockstep determinism for the sharded step: a serial engine
//! (`eval_threads = 1`) and a parallel one must produce byte-identical
//! [`StepReport`]s on every step, over the same randomized workload the
//! compiled/interpreted parity suite uses — numeric constraints, device
//! state, events, presence, time windows and `held for` dwell clauses
//! under nested And/Or with optional `until` releases.
//!
//! The thread count under test defaults to 4 and is overridden with
//! `CADEL_EVAL_THREADS` so CI can sweep the matrix (2, 8, …);
//! `CADEL_TRIGGER_INDEX=0` additionally ablates the dirty-set trigger
//! index so both candidate paths get the same sweep.
//!
//! Also pinned here, because they ride the same ingest/evaluate/commit
//! pipeline:
//!
//! * batch coalescing is invisible — an engine that coalesces redundant
//!   same-sensor readings reports identically to one that applies every
//!   payload;
//! * coalescing never drops event-bearing payloads — every `arrival` in
//!   a batch raises its event even when the same sensor repeats;
//! * the transient-event expiry boundary (inclusive at `t + W`) agrees
//!   between the compiled and interpreted paths.

use cadel_engine::{Engine, StepReport};
use cadel_rule::{
    ActionSpec, Atom, Condition, ConstraintAtom, EventAtom, PresenceAtom, Rule, StateAtom, Subject,
    Verb,
};
use cadel_simplex::RelOp;
use cadel_types::{
    DayPart, DeviceId, PersonId, PlaceId, Quantity, Rng, RuleId, SensorKey, SimDuration, SimTime,
    Unit, Value,
};
use cadel_upnp::{ControlPoint, EventBus, Registry};

const PEOPLE: [&str; 2] = ["tom", "alan"];
const PLACES: [&str; 2] = ["living room", "hall"];
const OPS: [RelOp; 5] = [RelOp::Lt, RelOp::Le, RelOp::Gt, RelOp::Ge, RelOp::Eq];

fn threads_under_test() -> usize {
    std::env::var("CADEL_EVAL_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 2)
        .unwrap_or(4)
}

/// `CADEL_TRIGGER_INDEX=0` re-runs the whole suite with the dirty-set
/// trigger index ablated (every rule re-evaluated every step), so the CI
/// determinism matrix covers both candidate paths.
fn trigger_index_under_test() -> bool {
    std::env::var("CADEL_TRIGGER_INDEX").map_or(true, |v| v != "0")
}

fn sensor(i: u64) -> SensorKey {
    SensorKey::new(DeviceId::new(format!("sensor-{i}")), "reading")
}

fn constraint_atom(rng: &mut Rng) -> Atom {
    Atom::Constraint(ConstraintAtom::new(
        sensor(rng.below(3)),
        *rng.pick(&OPS),
        Quantity::from_integer(rng.range_i64(-5, 15), Unit::Celsius),
    ))
}

fn arb_atom(rng: &mut Rng) -> Atom {
    match rng.below(8) {
        0 | 1 => constraint_atom(rng),
        2 => Atom::Event(EventAtom::new("chan", format!("event-{}", rng.below(3)))),
        3 => Atom::State(StateAtom::new(
            DeviceId::new("tv-0"),
            "power",
            Value::Bool(rng.chance(1, 2)),
        )),
        4 => Atom::Presence(PresenceAtom::person_at(
            *rng.pick(&PEOPLE),
            *rng.pick(&PLACES),
        )),
        5 => {
            let subject = if rng.chance(1, 2) {
                Subject::Somebody
            } else {
                Subject::Nobody
            };
            Atom::Presence(PresenceAtom::new(subject, PlaceId::new(*rng.pick(&PLACES))))
        }
        6 => Atom::Time(
            rng.pick(&[DayPart::Morning, DayPart::Afternoon, DayPart::Evening])
                .window(),
        ),
        _ => Atom::held_for(
            constraint_atom(rng),
            SimDuration::from_minutes(rng.range_i64(1, 3) as u64),
        ),
    }
}

fn arb_condition(rng: &mut Rng, depth: u32) -> Condition {
    if depth == 0 || rng.chance(2, 5) {
        return Condition::Atom(arb_atom(rng));
    }
    let children: Vec<Condition> = (0..rng.range_i64(1, 3))
        .map(|_| arb_condition(rng, depth - 1))
        .collect();
    if rng.chance(1, 2) {
        Condition::And(children)
    } else {
        Condition::Or(children)
    }
}

fn arb_rule(rng: &mut Rng, id: u64) -> Option<Rule> {
    let device = DeviceId::new(format!("dev-{}", rng.below(3)));
    let verb = if rng.chance(1, 2) {
        Verb::TurnOn
    } else {
        Verb::TurnOff
    };
    let mut builder = Rule::builder(PersonId::new(*rng.pick(&PEOPLE)))
        .condition(arb_condition(rng, 2))
        .action(ActionSpec::new(device, verb));
    if rng.chance(3, 10) {
        builder = builder.until(arb_condition(rng, 1));
    }
    builder.build(RuleId::new(id)).ok()
}

/// One batch of UPnP property changes, generated once and published to
/// both engines' buses. Publishing (rather than mutating the context
/// directly) routes everything through the batched-ingest phase.
fn arb_batch(rng: &mut Rng) -> Vec<(u64, Value)> {
    let mut batch = Vec::new();
    for s in 0..3u64 {
        // Redundant same-sensor readings exercise the coalescer.
        for _ in 0..rng.range_i64(0, 3) {
            let value = if rng.chance(1, 10) {
                Value::Text("offline".to_owned())
            } else {
                Value::Number(Quantity::from_integer(rng.range_i64(-5, 15), Unit::Celsius))
            };
            batch.push((s, value));
        }
    }
    batch
}

fn fresh_engine(rules: &[Rule], compiled: bool, threads: usize) -> (Engine, EventBus) {
    let registry = Registry::new();
    let bus = registry.event_bus().clone();
    let mut engine = Engine::new(ControlPoint::new(registry));
    engine.set_use_compiled(compiled);
    engine.set_eval_threads(threads);
    engine.set_use_trigger_index(trigger_index_under_test());
    for rule in rules {
        engine.add_rule(rule.clone()).unwrap();
    }
    (engine, bus)
}

/// Runs a serial and a parallel engine in lockstep over the same random
/// tape of published batches and asserts identical reports every step.
fn run_lockstep(seed: u64, compiled: bool, threads: usize) -> Vec<StepReport> {
    let mut rng = Rng::new(seed);
    let rules: Vec<Rule> = (0..40).filter_map(|i| arb_rule(&mut rng, 1 + i)).collect();
    assert!(rules.len() >= 30, "seed {seed} generated too few rules");

    let (mut serial, serial_bus) = fresh_engine(&rules, compiled, 1);
    let (mut parallel, parallel_bus) = fresh_engine(&rules, compiled, threads);

    let mut reports = Vec::new();
    for step in 1..=80u64 {
        let now = SimTime::EPOCH + SimDuration::from_minutes(step * 7);
        for (s, value) in arb_batch(&mut rng) {
            for bus in [&serial_bus, &parallel_bus] {
                bus.publish_change(
                    DeviceId::new(format!("sensor-{s}")),
                    "reading".to_owned(),
                    value.clone(),
                    now,
                );
            }
        }
        if rng.chance(1, 3) {
            let event = format!("event-{}", rng.below(3));
            serial.context_mut().raise_event("chan", &event);
            parallel.context_mut().raise_event("chan", &event);
        }
        if rng.chance(1, 3) {
            let person = PersonId::new(*rng.pick(&PEOPLE));
            let place = if rng.chance(1, 3) {
                None
            } else {
                Some(PlaceId::new(*rng.pick(&PLACES)))
            };
            serial
                .context_mut()
                .set_presence(person.clone(), place.clone());
            parallel.context_mut().set_presence(person, place);
        }
        let a = serial.step(now);
        let b = parallel.step(now);
        assert_eq!(
            a, b,
            "serial and {threads}-thread reports diverged at step {step} \
             (seed {seed}, compiled {compiled})"
        );
        reports.push(a);
    }
    for d in 0..3 {
        let device = DeviceId::new(format!("dev-{d}"));
        assert_eq!(
            serial.holder(&device),
            parallel.holder(&device),
            "holder tables diverged (seed {seed})"
        );
    }
    reports
}

#[test]
fn parallel_and_serial_agree_compiled() {
    let threads = threads_under_test();
    for seed in [1, 42, 4242] {
        let reports = run_lockstep(seed, true, threads);
        assert!(
            reports.iter().any(|r| !r.is_empty()),
            "seed {seed} was inert"
        );
    }
}

#[test]
fn parallel_and_serial_agree_interpreted() {
    let threads = threads_under_test();
    for seed in [7, 1337] {
        let reports = run_lockstep(seed, false, threads);
        assert!(
            reports.iter().any(|r| !r.is_empty()),
            "seed {seed} was inert"
        );
    }
}

#[test]
fn more_threads_than_candidates_is_fine() {
    // Thread counts far beyond the rule count must clamp, not panic or
    // change results.
    let reports = run_lockstep(42, true, 64);
    assert!(reports.iter().any(|r| !r.is_empty()));
}

/// Coalescing is an ingest optimization, never a semantic change: an
/// engine that applies every payload and one that coalesces redundant
/// same-sensor readings report identically.
#[test]
fn coalescing_does_not_change_reports() {
    let mut rng = Rng::new(99);
    let rules: Vec<Rule> = (0..40).filter_map(|i| arb_rule(&mut rng, 1 + i)).collect();

    let (mut coalesced, bus_a) = fresh_engine(&rules, true, 1);
    let (mut verbatim, bus_b) = fresh_engine(&rules, true, 1);
    coalesced.set_coalesce_events(true);
    verbatim.set_coalesce_events(false);

    for step in 1..=60u64 {
        let now = SimTime::EPOCH + SimDuration::from_minutes(step * 7);
        for (s, value) in arb_batch(&mut rng) {
            for bus in [&bus_a, &bus_b] {
                bus.publish_change(
                    DeviceId::new(format!("sensor-{s}")),
                    "reading".to_owned(),
                    value.clone(),
                    now,
                );
            }
        }
        let a = coalesced.step(now);
        let b = verbatim.step(now);
        assert_eq!(a, b, "coalescing changed the report at step {step}");
    }
}

/// Event-bearing variables are exempt from coalescing: when one batch
/// carries several `arrival` payloads from the same presence sensor,
/// every one of them must raise its transient event.
#[test]
fn coalescing_never_drops_arrival_payloads() {
    let registry = Registry::new();
    let bus = registry.event_bus().clone();
    let mut engine = Engine::new(ControlPoint::new(registry));
    engine.set_coalesce_events(true);

    let now = SimTime::from_millis(1_000);
    for (i, name) in ["got home", "came back", "dropped by"].iter().enumerate() {
        bus.publish_change(
            DeviceId::new("door-sensor"),
            "arrival".to_owned(),
            Value::Text(format!("person:p{i}|{name}")),
            now,
        );
    }
    // An interleaved plain sensor reading repeated three times: the
    // repeats coalesce, the arrivals must not.
    for v in [1, 2, 3] {
        bus.publish_change(
            DeviceId::new("door-sensor"),
            "reading".to_owned(),
            Value::Number(Quantity::from_integer(v, Unit::Celsius)),
            now,
        );
    }
    engine.step(now);

    let ctx = engine.context();
    for (i, name) in ["got home", "came back", "dropped by"].iter().enumerate() {
        assert!(
            ctx.event_active(&format!("person:p{i}"), name),
            "arrival {i} ({name}) was dropped by coalescing"
        );
    }
    // The plain reading coalesced to its final value.
    assert_eq!(
        ctx.value(&SensorKey::new(DeviceId::new("door-sensor"), "reading")),
        Some(&Value::Number(Quantity::from_integer(3, Unit::Celsius)))
    );
}

/// The transient-event expiry boundary is inclusive (`t + W` still
/// active, strictly after expired) and the compiled path agrees with the
/// interpreter exactly at the boundary.
#[test]
fn event_expiry_boundary_compiled_and_interpreted_agree() {
    let window = SimDuration::from_minutes(10);
    let raise_at = SimTime::from_millis(5_000);
    let boundary = raise_at + window;

    let build = |compiled: bool| {
        let rule = Rule::builder(PersonId::new("tom"))
            .condition(Condition::Atom(Atom::Event(EventAtom::new("chan", "ding"))))
            .action(ActionSpec::new(DeviceId::new("bell"), Verb::TurnOn))
            .build(RuleId::new(1))
            .unwrap();
        let mut engine = Engine::new(ControlPoint::new(Registry::new()));
        engine.set_use_compiled(compiled);
        engine.context_mut().set_event_window(window);
        engine.add_rule(rule).unwrap();
        engine
    };

    for compiled in [true, false] {
        let mut engine = build(compiled);
        engine.context_mut().set_now(raise_at);
        engine.context_mut().raise_event("chan", "ding");

        let at_boundary = engine.step(boundary);
        assert_eq!(
            at_boundary.firings.len(),
            1,
            "compiled={compiled}: the event must still be active at exactly t + W"
        );

        let past = engine.step(boundary + SimDuration::from_millis(1));
        // One millisecond later the event is gone and the rule's state
        // falls back to false — no new firing either way.
        assert!(
            past.firings.is_empty(),
            "compiled={compiled}: the event must expire strictly after t + W"
        );
        assert!(!engine.context().event_active("chan", "ding"));
    }
}
