//! The conflict-notification channel: when arbitration suppresses or
//! displaces a rule, the engine raises an event that *fallback rules* can
//! react to — the mechanism behind the paper's "if it is impossible to
//! use the TV, I want to record the game with the video recorder".

use cadel_conflict::PriorityOrder;
use cadel_devices::LivingRoomHome;
use cadel_engine::{Engine, CONFLICT_CHANNEL};
use cadel_rule::{ActionSpec, Atom, Condition, EventAtom, Rule, Verb};
use cadel_types::{DeviceId, PersonId, RuleId, SimTime, Value};
use cadel_upnp::{ControlPoint, Registry, VirtualDevice};

fn tv_rule(owner: &str, id: u64, program: &str) -> Rule {
    Rule::builder(PersonId::new(owner))
        .condition(Condition::Atom(Atom::Event(EventAtom::new(
            "tv-guide", program,
        ))))
        .action(
            ActionSpec::new(DeviceId::new("tv-lr"), Verb::Show)
                .with_setting("content", Value::from(program)),
        )
        .build(RuleId::new(id))
        .unwrap()
}

#[test]
fn displaced_holder_triggers_fallback_recording() {
    let registry = Registry::new();
    let home = LivingRoomHome::install(&registry);
    let mut engine = Engine::new(ControlPoint::new(registry));

    // Alan watches baseball (rule 1); Emily's movie outranks him (rule 2).
    engine
        .add_rule(tv_rule("alan", 1, "baseball game"))
        .unwrap();
    engine.add_rule(tv_rule("emily", 2, "movie")).unwrap();
    engine.add_priority(PriorityOrder::new(
        DeviceId::new("tv-lr"),
        vec![RuleId::new(2), RuleId::new(1)],
    ));
    // Alan's fallback: when his TV use is suppressed while the game is
    // still on, record it.
    let fallback = Rule::builder(PersonId::new("alan"))
        .condition(
            Condition::Atom(Atom::Event(EventAtom::new(CONFLICT_CHANNEL, "tv-lr:alan"))).and(
                Condition::Atom(Atom::Event(EventAtom::new("tv-guide", "baseball game"))),
            ),
        )
        .action(
            ActionSpec::new(DeviceId::new("vcr-lr"), Verb::Record)
                .with_setting("content", Value::from("baseball game")),
        )
        .build(RuleId::new(3))
        .unwrap();
    engine.add_rule(fallback).unwrap();

    // Baseball starts: Alan holds the TV, no recording.
    home.tv_guide
        .start_program("baseball game", SimTime::from_millis(1));
    engine.step(SimTime::from_millis(2));
    assert_eq!(
        home.tv.query("content").unwrap(),
        Value::from("baseball game")
    );
    assert_eq!(
        home.recorder.query("recording").unwrap(),
        Value::Bool(false)
    );

    // The movie starts: Emily displaces Alan…
    home.tv_guide
        .start_program("movie", SimTime::from_millis(3));
    engine.step(SimTime::from_millis(4));
    assert_eq!(home.tv.query("content").unwrap(), Value::from("movie"));
    assert!(engine
        .context()
        .event_active(CONFLICT_CHANNEL, "tv-lr:alan"));

    // …and the fallback fires on the next step.
    engine.step(SimTime::from_millis(5));
    assert_eq!(home.recorder.query("recording").unwrap(), Value::Bool(true));
    assert_eq!(
        home.recorder.query("content").unwrap(),
        Value::from("baseball game")
    );
}

#[test]
fn suppression_event_is_raised_once_per_episode() {
    let registry = Registry::new();
    let home = LivingRoomHome::install(&registry);
    let mut engine = Engine::new(ControlPoint::new(registry));
    engine
        .add_rule(tv_rule("alan", 1, "baseball game"))
        .unwrap();
    engine.add_rule(tv_rule("emily", 2, "movie")).unwrap();
    engine.add_priority(PriorityOrder::new(
        DeviceId::new("tv-lr"),
        vec![RuleId::new(2), RuleId::new(1)],
    ));

    // Both programs start simultaneously: Emily wins, Alan suppressed.
    home.tv_guide
        .start_program("baseball game", SimTime::from_millis(1));
    home.tv_guide
        .start_program("movie", SimTime::from_millis(1));
    let report = engine.step(SimTime::from_millis(2));
    assert_eq!(report.firings.len(), 2);
    // Re-stepping does not produce repeated suppression firings while
    // nothing changes.
    let report = engine.step(SimTime::from_millis(3));
    assert!(report.firings.is_empty());
    // The suppressed rule is promoted the moment the blocker's condition
    // ends.
    home.tv_guide.end_program("movie", SimTime::from_millis(4));
    let report = engine.step(SimTime::from_millis(5));
    assert_eq!(report.dispatched().len(), 1);
    assert_eq!(
        home.tv.query("content").unwrap(),
        Value::from("baseball game")
    );
}
