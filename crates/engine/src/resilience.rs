//! Fault tolerance for the actuation path: circuit breakers, retry with
//! bounded exponential backoff, and a dead-letter queue.
//!
//! The engine dispatches actions to devices that can fail transiently
//! (see `cadel-upnp`'s `FaultyDevice`). This module keeps the machinery
//! that makes those failures survivable:
//!
//! * [`ActuationError`] — distinguishes device faults from engine-side
//!   invariant breaks (a rule vanishing mid-dispatch is not a device
//!   problem and must not be retried or counted against a breaker).
//! * [`CircuitBreaker`] — per-device closed → open → half-open machine:
//!   after `failure_threshold` consecutive failures the device goes dark
//!   for a cooldown that doubles (capped) on every failed half-open
//!   probe. Rules targeting a tripped device are *deferred*
//!   (`FiringOutcome::Deferred`), not failed.
//! * [`Resilience`] — the retry queue (bounded exponential backoff with
//!   deterministic jitter, all on sim time), the per-device retry budget,
//!   and the dead-letter queue of exhausted actions. Dead letters replay
//!   when their device recovers; while a device stays dark with nothing
//!   queued, the oldest dead letter is resurrected as the half-open probe
//!   so the DLQ can never wedge.
//!
//! Everything is deterministic: backoff jitter comes from the workspace
//! SplitMix64 generator seeded per `(rule, attempt)`, and no wall clock
//! is ever read. Every state transition emits `cadel-obs` events and
//! metrics.

use cadel_obs::{Event as ObsEvent, LazyCounter, LazyGauge, Level};
use cadel_rule::ActionSpec;
use cadel_types::{DeviceId, Rng, RuleId, SimDuration, SimTime};
use cadel_upnp::UpnpError;
use std::collections::BTreeMap;
use std::fmt;

static BREAKER_TRIPS: LazyCounter = LazyCounter::new("engine_breaker_trips_total");
static BREAKER_RECOVERIES: LazyCounter = LazyCounter::new("engine_breaker_recoveries_total");
static BREAKERS_OPEN: LazyGauge = LazyGauge::new("engine_breakers_open");
static RETRIES_SCHEDULED: LazyCounter = LazyCounter::new("engine_retries_scheduled_total");
static RETRIES_CANCELLED: LazyCounter = LazyCounter::new("engine_retries_cancelled_total");
static RETRY_QUEUE_DEPTH: LazyGauge = LazyGauge::new("engine_retry_queue_depth");
static DEAD_LETTERS: LazyCounter = LazyCounter::new("engine_dead_letters_total");
static DLQ_DEPTH: LazyGauge = LazyGauge::new("engine_dead_letter_queue_depth");
static DLQ_REPLAYED: LazyCounter = LazyCounter::new("engine_dlq_replayed_total");
static DLQ_EVICTED: LazyCounter = LazyCounter::new("engine_dlq_evicted_total");

/// Why an actuation did not take effect: the device failed, or an
/// engine-side invariant broke. Only device faults are retryable.
#[derive(Clone, Debug, PartialEq)]
pub enum ActuationError {
    /// The device rejected or failed the invocation.
    Device(UpnpError),
    /// The rule disappeared from the database between arbitration and
    /// dispatch — an engine invariant break, not a device problem.
    RuleVanished(RuleId),
}

impl ActuationError {
    /// Whether retrying could help: only transient device faults qualify.
    /// Validation errors (unknown action, range violation, …) and engine
    /// invariant breaks are final.
    pub fn is_retryable(&self) -> bool {
        matches!(self, ActuationError::Device(UpnpError::DeviceFault(_)))
    }
}

impl fmt::Display for ActuationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActuationError::Device(e) => write!(f, "{e}"),
            ActuationError::RuleVanished(id) => write!(f, "rule#{} vanished", id.raw()),
        }
    }
}

impl From<UpnpError> for ActuationError {
    fn from(e: UpnpError) -> ActuationError {
        ActuationError::Device(e)
    }
}

/// Tunables for breakers and retries. The defaults suit minute-resolution
/// home scenarios; all durations are sim time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// Consecutive failures that trip a closed breaker.
    pub failure_threshold: u32,
    /// Initial open-state cooldown before a half-open probe is allowed.
    pub cooldown: SimDuration,
    /// Cooldown cap for the doubling applied on failed probes.
    pub max_cooldown: SimDuration,
    /// Base delay of the first retry; doubles per attempt.
    pub retry_base: SimDuration,
    /// Upper bound on a single backoff delay (before jitter).
    pub retry_cap: SimDuration,
    /// Maximum invocation attempts per action (first try included) before
    /// it goes to the dead-letter queue.
    pub max_attempts: u32,
    /// Maximum queued retries per device; excess actions dead-letter
    /// immediately ("retry budget").
    pub device_budget: usize,
    /// Seed for the deterministic backoff jitter.
    pub jitter_seed: u64,
    /// Maximum dead letters retained; the queue is a bounded ring and
    /// the oldest letter is evicted (counted in
    /// `engine_dlq_evicted_total`) when a new one would overflow it, so
    /// a permanently failing device cannot grow memory without bound
    /// during long soaks.
    pub dlq_cap: usize,
}

impl Default for ResilienceConfig {
    fn default() -> ResilienceConfig {
        ResilienceConfig {
            failure_threshold: 3,
            cooldown: SimDuration::from_minutes(2),
            max_cooldown: SimDuration::from_minutes(16),
            retry_base: SimDuration::from_secs(30),
            retry_cap: SimDuration::from_minutes(4),
            max_attempts: 4,
            device_budget: 8,
            jitter_seed: 0xCADE1,
            dlq_cap: 256,
        }
    }
}

/// The observable state of a per-device circuit breaker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; failures are being counted.
    Closed,
    /// The device is dark: dispatches are deferred until the cooldown
    /// elapses.
    Open,
    /// Cooldown elapsed; the next invocation is a probe.
    HalfOpen,
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

/// One device's breaker. See [`BreakerState`] for the machine; cooldowns
/// double (up to `max_cooldown`) on every failed probe and reset on
/// recovery.
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    state: BreakerState,
    consecutive_failures: u32,
    /// Cooldown used for the *current/most recent* open period.
    cooldown: SimDuration,
    /// When an open breaker allows its half-open probe.
    reopen_at: SimTime,
}

impl CircuitBreaker {
    fn new(config: &ResilienceConfig) -> CircuitBreaker {
        CircuitBreaker {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            cooldown: config.cooldown,
            reopen_at: SimTime::EPOCH,
        }
    }

    /// The current state (without the time-based open → half-open
    /// promotion; see [`CircuitBreaker::allows`]).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Consecutive failures recorded while closed.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// When the breaker next allows a probe (meaningful while open).
    pub fn reopen_at(&self) -> SimTime {
        self.reopen_at
    }

    /// The current (possibly doubled) cooldown — persistence export.
    pub(crate) fn cooldown(&self) -> SimDuration {
        self.cooldown
    }

    /// Whether an invocation may proceed at `now`; promotes an open
    /// breaker whose cooldown elapsed to half-open (the probe).
    pub fn allows(&mut self, now: SimTime) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if now >= self.reopen_at {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Whether an invocation at `now` would be blocked, without mutating.
    pub fn blocks(&self, now: SimTime) -> bool {
        self.state == BreakerState::Open && now < self.reopen_at
    }

    /// Records a successful invocation; returns `true` when this closed a
    /// tripped breaker (a recovery).
    pub fn on_success(&mut self, config: &ResilienceConfig) -> bool {
        let recovered = self.state != BreakerState::Closed;
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
        self.cooldown = config.cooldown;
        recovered
    }

    /// Records a failed invocation; returns `true` when this tripped the
    /// breaker open (from closed or from a failed half-open probe).
    pub fn on_failure(&mut self, now: SimTime, config: &ResilienceConfig) -> bool {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= config.failure_threshold {
                    self.state = BreakerState::Open;
                    self.cooldown = config.cooldown;
                    self.reopen_at = now + self.cooldown;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen | BreakerState::Open => {
                // A failed probe (or a failure slipping in while open)
                // re-opens with a doubled, capped cooldown.
                let doubled = self.cooldown.as_millis().saturating_mul(2);
                self.cooldown =
                    SimDuration::from_millis(doubled.min(config.max_cooldown.as_millis()));
                let tripped = self.state == BreakerState::HalfOpen;
                self.state = BreakerState::Open;
                self.reopen_at = now + self.cooldown;
                tripped
            }
        }
    }
}

/// Whether a queued retry re-fires a rule's action or re-sends a missed
/// release (inverse action).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetryKind {
    /// Retry of a rule's main action; re-establishes the device hold on
    /// success.
    Fire,
    /// Retry of an `until`-release inverse action.
    Release,
}

impl fmt::Display for RetryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RetryKind::Fire => "fire",
            RetryKind::Release => "release",
        })
    }
}

/// One queued retry.
#[derive(Clone, Debug)]
pub struct RetryEntry {
    /// FIFO tiebreaker for equal due times.
    pub seq: u64,
    /// The rule whose action is being retried.
    pub rule: RuleId,
    /// Target device (denormalized from the action for budget checks).
    pub device: DeviceId,
    /// The action to re-invoke.
    pub action: ActionSpec,
    /// Fire or release semantics on success.
    pub kind: RetryKind,
    /// Which attempt the next invocation will be (1 = first retry after
    /// the original dispatch).
    pub attempt: u32,
    /// Sim instant the retry becomes due.
    pub next_at: SimTime,
}

/// An action whose retries were exhausted (or that never got a retry
/// slot). Replayed when its device recovers.
#[derive(Clone, Debug)]
pub struct DeadLetter {
    /// The rule whose action died.
    pub rule: RuleId,
    /// Target device.
    pub device: DeviceId,
    /// The undelivered action.
    pub action: ActionSpec,
    /// Fire or release semantics.
    pub kind: RetryKind,
    /// Attempts made before giving up.
    pub attempts: u32,
    /// The final error (or budget) that killed it.
    pub reason: String,
    /// When it was dead-lettered.
    pub at: SimTime,
}

/// A point-in-time view of one device's breaker, for status reporting.
#[derive(Clone, Debug)]
pub struct BreakerStatus {
    /// The device.
    pub device: DeviceId,
    /// Breaker state.
    pub state: BreakerState,
    /// Consecutive failures recorded.
    pub consecutive_failures: u32,
    /// Next probe instant while open.
    pub reopen_at: Option<SimTime>,
}

/// A point-in-time view of the whole resilience layer (exposed through
/// `HomeServer::resilience_status`).
#[derive(Clone, Debug, Default)]
pub struct ResilienceStatus {
    /// Every device that has a breaker (i.e. ever failed).
    pub breakers: Vec<BreakerStatus>,
    /// Queued retries.
    pub retry_queue: usize,
    /// Dead letters awaiting device recovery.
    pub dead_letters: usize,
}

/// The engine's fault-tolerance state: breakers per device, the retry
/// queue, and the dead-letter queue.
#[derive(Clone, Debug)]
pub struct Resilience {
    config: ResilienceConfig,
    breakers: BTreeMap<DeviceId, CircuitBreaker>,
    queue: Vec<RetryEntry>,
    dlq: Vec<DeadLetter>,
    next_seq: u64,
}

impl Default for Resilience {
    fn default() -> Resilience {
        Resilience::new(ResilienceConfig::default())
    }
}

impl Resilience {
    /// Creates the layer with the given tunables.
    pub fn new(config: ResilienceConfig) -> Resilience {
        Resilience {
            config,
            breakers: BTreeMap::new(),
            queue: Vec::new(),
            dlq: Vec::new(),
            next_seq: 0,
        }
    }

    /// The active tunables.
    pub fn config(&self) -> &ResilienceConfig {
        &self.config
    }

    /// Replaces the tunables (existing breaker/queue state is kept).
    pub fn set_config(&mut self, config: ResilienceConfig) {
        self.config = config;
    }

    /// The breaker state for a device; `Closed` when it never failed.
    pub fn breaker_state(&self, device: &DeviceId) -> BreakerState {
        self.breakers
            .get(device)
            .map(|b| b.state())
            .unwrap_or(BreakerState::Closed)
    }

    /// Re-derives the open-breaker gauge after a state transition.
    fn sync_breaker_gauge(&self) {
        BREAKERS_OPEN.set(
            self.breakers
                .values()
                .filter(|b| b.state() == BreakerState::Open)
                .count() as i64,
        );
    }

    /// Whether a dispatch to `device` may proceed at `now`. Promotes a
    /// due open breaker to half-open (the probe) and emits the
    /// transition event.
    pub fn breaker_allows(&mut self, device: &DeviceId, now: SimTime) -> bool {
        let Some(breaker) = self.breakers.get_mut(device) else {
            return true;
        };
        let was_open = breaker.state() == BreakerState::Open;
        let allowed = breaker.allows(now);
        if allowed && was_open {
            self.sync_breaker_gauge();
            if cadel_obs::enabled() {
                cadel_obs::emit(
                    ObsEvent::new("engine.breaker_half_open", Level::Info)
                        .with_field("device", device.as_str()),
                );
            }
        }
        allowed
    }

    /// Whether a dispatch to `device` at `now` would be blocked, without
    /// promoting the breaker (used on paths that must not probe).
    pub fn breaker_blocks(&self, device: &DeviceId, now: SimTime) -> bool {
        self.breakers
            .get(device)
            .map(|b| b.blocks(now))
            .unwrap_or(false)
    }

    /// The next probe instant for a device whose breaker is open.
    fn breaker_reopen_at(&self, device: &DeviceId) -> Option<SimTime> {
        let breaker = self.breakers.get(device)?;
        (breaker.state() == BreakerState::Open).then(|| breaker.reopen_at())
    }

    /// Records a successful invocation on `device`. On a recovery
    /// (tripped breaker closing) the device's dead letters are replayed
    /// into the retry queue; returns `true` on recovery.
    pub fn note_success(&mut self, device: &DeviceId, now: SimTime) -> bool {
        let Some(breaker) = self.breakers.get_mut(device) else {
            return false;
        };
        let recovered = breaker.on_success(&self.config);
        if !recovered {
            return false;
        }
        self.sync_breaker_gauge();
        BREAKER_RECOVERIES.inc();
        if cadel_obs::enabled() {
            cadel_obs::emit(
                ObsEvent::new("engine.breaker_recovered", Level::Info)
                    .with_field("device", device.as_str()),
            );
        }
        self.replay_dead_letters(device, now);
        true
    }

    /// Records a failed invocation on `device`; creates the breaker
    /// lazily. Returns `true` when this tripped the breaker open.
    pub fn note_failure(&mut self, device: &DeviceId, now: SimTime) -> bool {
        let breaker = self
            .breakers
            .entry(device.clone())
            .or_insert_with(|| CircuitBreaker::new(&self.config));
        let tripped = breaker.on_failure(now, &self.config);
        if tripped {
            let failures = breaker.consecutive_failures();
            let reopen_at = breaker.reopen_at();
            self.sync_breaker_gauge();
            BREAKER_TRIPS.inc();
            if cadel_obs::enabled() {
                cadel_obs::emit(
                    ObsEvent::new("engine.breaker_open", Level::Warn)
                        .with_field("device", device.as_str())
                        .with_field("failures", u64::from(failures))
                        .with_field("reopen_at", reopen_at.time_of_day().to_string()),
                );
            }
        }
        tripped
    }

    /// The backoff delay before retry `attempt` of `rule`:
    /// `min(base · 2^(attempt−1), cap)` plus a deterministic jitter in
    /// `[0, base/4]` derived from the jitter seed, the rule and the
    /// attempt. No wall clock, no shared RNG state — the same inputs
    /// always produce the same delay.
    pub fn backoff_delay(&self, rule: RuleId, attempt: u32) -> SimDuration {
        let base = self.config.retry_base.as_millis().max(1);
        let exp = base.saturating_mul(1u64 << (attempt.saturating_sub(1)).min(32));
        let bounded = exp.min(self.config.retry_cap.as_millis());
        let mut rng = Rng::new(
            self.config
                .jitter_seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(rule.raw().wrapping_mul(0x517c_c1b7_2722_0a95))
                .wrapping_add(u64::from(attempt)),
        );
        SimDuration::from_millis(bounded + rng.below(base / 4 + 1))
    }

    /// Queues a retry of `action` for `(rule, kind)`. Deduplicates on
    /// `(rule, kind)` (a newer schedule replaces the pending one) and
    /// enforces the per-device budget: over budget, the action goes
    /// straight to the dead-letter queue.
    pub fn schedule(
        &mut self,
        rule: RuleId,
        device: DeviceId,
        action: ActionSpec,
        kind: RetryKind,
        attempt: u32,
        now: SimTime,
    ) {
        self.queue.retain(|e| !(e.rule == rule && e.kind == kind));
        let queued_for_device = self.queue.iter().filter(|e| e.device == device).count();
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = RetryEntry {
            seq,
            rule,
            device,
            action,
            kind,
            attempt,
            next_at: now + self.backoff_delay(rule, attempt),
        };
        if queued_for_device >= self.config.device_budget {
            self.dead_letter(entry, "per-device retry budget exhausted", now);
            return;
        }
        RETRIES_SCHEDULED.inc();
        if cadel_obs::enabled() {
            cadel_obs::emit(
                ObsEvent::new("engine.retry_scheduled", Level::Debug)
                    .with_field("rule", entry.rule.raw())
                    .with_field("device", entry.device.as_str())
                    .with_field("kind", entry.kind.to_string())
                    .with_field("attempt", u64::from(entry.attempt))
                    .with_field("due", entry.next_at.time_of_day().to_string()),
            );
        }
        self.queue.push(entry);
        RETRY_QUEUE_DEPTH.set(self.queue.len() as i64);
    }

    /// Drains every retry due at `now`, ordered by `(next_at, seq)`.
    /// Also resurrects the oldest dead letter of any device whose open
    /// breaker is due for a probe and has nothing queued — otherwise a
    /// device whose every action dead-lettered would never be probed and
    /// its DLQ would wedge forever.
    pub fn take_due(&mut self, now: SimTime) -> Vec<RetryEntry> {
        let probe_devices: Vec<DeviceId> = self
            .breakers
            .iter()
            .filter(|&(device, breaker)| {
                breaker.state() == BreakerState::Open
                    && now >= breaker.reopen_at()
                    && self.dlq.iter().any(|d| &d.device == device)
                    && !self.queue.iter().any(|e| &e.device == device)
            })
            .map(|(device, _)| device.clone())
            .collect();
        for device in probe_devices {
            if let Some(pos) = self.dlq.iter().position(|d| d.device == device) {
                let letter = self.dlq.remove(pos);
                DLQ_DEPTH.set(self.dlq.len() as i64);
                DLQ_REPLAYED.inc();
                if cadel_obs::enabled() {
                    cadel_obs::emit(
                        ObsEvent::new("engine.dlq_probe", Level::Info)
                            .with_field("rule", letter.rule.raw())
                            .with_field("device", letter.device.as_str()),
                    );
                }
                let seq = self.next_seq;
                self.next_seq += 1;
                self.queue.push(RetryEntry {
                    seq,
                    rule: letter.rule,
                    device: letter.device,
                    action: letter.action,
                    kind: letter.kind,
                    attempt: 1,
                    next_at: now,
                });
            }
        }
        let mut due: Vec<RetryEntry> = Vec::new();
        let mut rest: Vec<RetryEntry> = Vec::new();
        for entry in self.queue.drain(..) {
            if entry.next_at <= now {
                due.push(entry);
            } else {
                rest.push(entry);
            }
        }
        self.queue = rest;
        RETRY_QUEUE_DEPTH.set(self.queue.len() as i64);
        due.sort_by_key(|e| (e.next_at, e.seq));
        due
    }

    /// Puts a drained entry back (e.g. its breaker is still open),
    /// re-due at `next_at`. Not counted as an attempt.
    pub fn requeue(&mut self, mut entry: RetryEntry, next_at: SimTime) {
        entry.next_at = next_at;
        self.queue.push(entry);
        RETRY_QUEUE_DEPTH.set(self.queue.len() as i64);
    }

    /// Requeues `entry` for when its device's breaker allows a probe, or
    /// at `fallback` when the breaker is not open.
    pub fn requeue_for_breaker(&mut self, entry: RetryEntry, fallback: SimTime) {
        let next_at = self
            .breaker_reopen_at(&entry.device)
            .unwrap_or(fallback)
            .max(fallback);
        self.requeue(entry, next_at);
    }

    /// Drops a drained entry whose retry no longer makes sense (rule
    /// gone, condition lapsed, device taken over by another rule).
    pub fn cancel(&mut self, entry: &RetryEntry, reason: &str) {
        RETRIES_CANCELLED.inc();
        if cadel_obs::enabled() {
            cadel_obs::emit(
                ObsEvent::new("engine.retry_cancelled", Level::Debug)
                    .with_field("rule", entry.rule.raw())
                    .with_field("device", entry.device.as_str())
                    .with_field("kind", entry.kind.to_string())
                    .with_field("reason", reason),
            );
        }
    }

    /// Moves an exhausted entry to the dead-letter queue.
    pub fn dead_letter(&mut self, entry: RetryEntry, reason: &str, now: SimTime) {
        DEAD_LETTERS.inc();
        if cadel_obs::enabled() {
            cadel_obs::emit(
                ObsEvent::new("engine.retry_exhausted", Level::Warn)
                    .with_field("rule", entry.rule.raw())
                    .with_field("device", entry.device.as_str())
                    .with_field("kind", entry.kind.to_string())
                    .with_field("attempts", u64::from(entry.attempt))
                    .with_field("reason", reason),
            );
        }
        self.dlq.push(DeadLetter {
            rule: entry.rule,
            device: entry.device,
            action: entry.action,
            kind: entry.kind,
            attempts: entry.attempt,
            reason: reason.to_owned(),
            at: now,
        });
        self.enforce_dlq_cap();
        DLQ_DEPTH.set(self.dlq.len() as i64);
    }

    /// Evicts the oldest dead letters past [`ResilienceConfig::dlq_cap`].
    fn enforce_dlq_cap(&mut self) {
        while self.dlq.len() > self.config.dlq_cap.max(1) {
            let evicted = self.dlq.remove(0);
            DLQ_EVICTED.inc();
            if cadel_obs::enabled() {
                cadel_obs::emit(
                    ObsEvent::new("engine.dlq_evicted", Level::Warn)
                        .with_field("rule", evicted.rule.raw())
                        .with_field("device", evicted.device.as_str())
                        .with_field("reason", evicted.reason),
                );
            }
        }
    }

    /// Replays every dead letter of a recovered device into the retry
    /// queue (fresh attempt counts, due immediately).
    fn replay_dead_letters(&mut self, device: &DeviceId, now: SimTime) {
        let mut kept = Vec::with_capacity(self.dlq.len());
        for letter in self.dlq.drain(..) {
            if &letter.device != device {
                kept.push(letter);
                continue;
            }
            DLQ_REPLAYED.inc();
            if cadel_obs::enabled() {
                cadel_obs::emit(
                    ObsEvent::new("engine.dlq_replayed", Level::Info)
                        .with_field("rule", letter.rule.raw())
                        .with_field("device", letter.device.as_str())
                        .with_field("kind", letter.kind.to_string()),
                );
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            self.queue.push(RetryEntry {
                seq,
                rule: letter.rule,
                device: letter.device,
                action: letter.action,
                kind: letter.kind,
                attempt: 1,
                next_at: now,
            });
        }
        self.dlq = kept;
        DLQ_DEPTH.set(self.dlq.len() as i64);
        RETRY_QUEUE_DEPTH.set(self.queue.len() as i64);
    }

    /// Drops all queued retries and dead letters of a removed rule.
    pub fn purge_rule(&mut self, rule: RuleId) {
        self.queue.retain(|e| e.rule != rule);
        self.dlq.retain(|d| d.rule != rule);
        RETRY_QUEUE_DEPTH.set(self.queue.len() as i64);
        DLQ_DEPTH.set(self.dlq.len() as i64);
    }

    /// Queued retries, in insertion order.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The dead letters currently awaiting recovery.
    pub fn dead_letters(&self) -> &[DeadLetter] {
        &self.dlq
    }

    /// Queued retries targeting a device.
    pub fn queued_for(&self, device: &DeviceId) -> usize {
        self.queue.iter().filter(|e| &e.device == device).count()
    }

    /// Every breaker with its device, in device order (persistence
    /// export; `BTreeMap` iteration is already deterministic).
    pub(crate) fn breaker_entries(&self) -> impl Iterator<Item = (&DeviceId, &CircuitBreaker)> {
        self.breakers.iter()
    }

    /// The retry queue in insertion order (persistence export).
    pub(crate) fn queue_entries(&self) -> &[RetryEntry] {
        &self.queue
    }

    /// The sequence counter the next scheduled retry would take.
    pub(crate) fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Reinstates a breaker exactly as checkpointed — state machine
    /// position, failure streak, grown cooldown, and reopen deadline.
    pub(crate) fn restore_breaker(
        &mut self,
        device: DeviceId,
        state: BreakerState,
        consecutive_failures: u32,
        cooldown: SimDuration,
        reopen_at: SimTime,
    ) {
        self.breakers.insert(
            device,
            CircuitBreaker {
                state,
                consecutive_failures,
                cooldown,
                reopen_at,
            },
        );
    }

    /// Reinstates a queued retry verbatim, keeping the sequence counter
    /// ahead of every restored entry.
    pub(crate) fn restore_retry(&mut self, entry: RetryEntry) {
        self.next_seq = self.next_seq.max(entry.seq + 1);
        self.queue.push(entry);
    }

    /// Reinstates a dead letter verbatim. The cap still applies: a
    /// checkpoint written under a larger `dlq_cap` is trimmed to the
    /// current one, oldest first.
    pub(crate) fn restore_dead_letter(&mut self, letter: DeadLetter) {
        self.dlq.push(letter);
        self.enforce_dlq_cap();
        DLQ_DEPTH.set(self.dlq.len() as i64);
    }

    /// Fast-forwards the sequence counter (persistence import; never
    /// moves it backwards).
    pub(crate) fn restore_next_seq(&mut self, seq: u64) {
        self.next_seq = self.next_seq.max(seq);
    }

    /// A point-in-time status snapshot.
    pub fn status(&self) -> ResilienceStatus {
        ResilienceStatus {
            breakers: self
                .breakers
                .iter()
                .map(|(device, b)| BreakerStatus {
                    device: device.clone(),
                    state: b.state(),
                    consecutive_failures: b.consecutive_failures(),
                    reopen_at: (b.state() == BreakerState::Open).then(|| b.reopen_at()),
                })
                .collect(),
            retry_queue: self.queue.len(),
            dead_letters: self.dlq.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadel_rule::Verb;

    fn cfg() -> ResilienceConfig {
        ResilienceConfig::default()
    }

    fn m(minutes: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_minutes(minutes)
    }

    fn action(device: &str) -> ActionSpec {
        ActionSpec::new(DeviceId::new(device), Verb::TurnOn)
    }

    #[test]
    fn breaker_trips_after_threshold_and_probes_after_cooldown() {
        let config = cfg();
        let mut b = CircuitBreaker::new(&config);
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allows(m(0)));
        assert!(!b.on_failure(m(0), &config));
        assert!(!b.on_failure(m(1), &config));
        assert_eq!(b.consecutive_failures(), 2);
        // Third consecutive failure trips it.
        assert!(b.on_failure(m(2), &config));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.reopen_at(), m(4)); // 2-minute cooldown
        assert!(!b.allows(m(3)));
        assert!(b.blocks(m(3)));
        // Cooldown elapsed: the next call is the half-open probe.
        assert!(b.allows(m(4)));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.blocks(m(4)));
    }

    #[test]
    fn half_open_probe_success_closes_failure_reopens_doubled() {
        let config = cfg();
        let mut b = CircuitBreaker::new(&config);
        for i in 0..3 {
            b.on_failure(m(i), &config);
        }
        assert!(b.allows(m(10))); // half-open
                                  // Probe fails: reopen with doubled cooldown (4 minutes).
        assert!(b.on_failure(m(10), &config));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.reopen_at(), m(14));
        // Second failed probe: 8 minutes.
        assert!(b.allows(m(14)));
        b.on_failure(m(14), &config);
        assert_eq!(b.reopen_at(), m(22));
        // Doubling caps at max_cooldown (16 minutes).
        assert!(b.allows(m(22)));
        b.on_failure(m(22), &config);
        assert!(b.allows(m(38)));
        b.on_failure(m(38), &config);
        assert_eq!(b.reopen_at(), m(38) + config.max_cooldown);
        // A successful probe closes and resets everything.
        assert!(b.allows(m(60)));
        assert!(b.on_success(&config));
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.consecutive_failures(), 0);
        // Success while closed is not a "recovery".
        assert!(!b.on_success(&config));
        // And the cooldown is back to the base for the next trip.
        for i in 0..3 {
            b.on_failure(m(100 + i), &config);
        }
        assert_eq!(b.reopen_at(), m(102) + config.cooldown);
    }

    #[test]
    fn success_resets_the_failure_count_before_a_trip() {
        let config = cfg();
        let mut b = CircuitBreaker::new(&config);
        b.on_failure(m(0), &config);
        b.on_failure(m(1), &config);
        assert!(!b.on_success(&config)); // not a recovery, just a reset
        b.on_failure(m(2), &config);
        b.on_failure(m(3), &config);
        assert_eq!(b.state(), BreakerState::Closed); // 2 < threshold again
    }

    #[test]
    fn backoff_is_bounded_exponential_with_deterministic_jitter() {
        let r = Resilience::default();
        let rule = RuleId::new(7);
        let base = r.config().retry_base.as_millis();
        let cap = r.config().retry_cap.as_millis();
        let jitter_max = base / 4;
        let mut previous_floor = 0;
        for attempt in 1..=8 {
            let d = r.backoff_delay(rule, attempt).as_millis();
            let floor = (base << (attempt - 1).min(32)).min(cap);
            assert!(
                d >= floor && d <= floor + jitter_max,
                "attempt {attempt}: {d} outside [{floor}, {}]",
                floor + jitter_max
            );
            assert!(floor >= previous_floor, "backoff must not shrink");
            previous_floor = floor;
            // Deterministic: same inputs, same delay.
            assert_eq!(d, r.backoff_delay(rule, attempt).as_millis());
        }
        // Different rules jitter differently (with these constants).
        assert_ne!(
            r.backoff_delay(RuleId::new(1), 1).as_millis(),
            r.backoff_delay(RuleId::new(2), 1).as_millis()
        );
    }

    #[test]
    fn schedule_dedupes_per_rule_and_kind() {
        let mut r = Resilience::default();
        let rule = RuleId::new(1);
        let dev = DeviceId::new("lamp");
        r.schedule(rule, dev.clone(), action("lamp"), RetryKind::Fire, 1, m(0));
        r.schedule(rule, dev.clone(), action("lamp"), RetryKind::Fire, 2, m(1));
        assert_eq!(r.queue_len(), 1); // replaced, not duplicated
        r.schedule(rule, dev, action("lamp"), RetryKind::Release, 1, m(1));
        assert_eq!(r.queue_len(), 2); // distinct kinds coexist
    }

    #[test]
    fn device_budget_overflows_to_the_dlq() {
        let mut r = Resilience::new(ResilienceConfig {
            device_budget: 2,
            ..cfg()
        });
        let dev = DeviceId::new("lamp");
        for i in 0..4 {
            r.schedule(
                RuleId::new(i),
                dev.clone(),
                action("lamp"),
                RetryKind::Fire,
                1,
                m(0),
            );
        }
        assert_eq!(r.queue_len(), 2);
        assert_eq!(r.dead_letters().len(), 2);
        assert!(r.dead_letters()[0].reason.contains("budget"));
    }

    #[test]
    fn dlq_is_a_bounded_ring_evicting_oldest() {
        let mut r = Resilience::new(ResilienceConfig {
            device_budget: 0,
            dlq_cap: 3,
            ..cfg()
        });
        let dev = DeviceId::new("lamp");
        // Budget 0: every schedule dead-letters immediately.
        for i in 0..5 {
            r.schedule(
                RuleId::new(i + 1),
                dev.clone(),
                action("lamp"),
                RetryKind::Fire,
                1,
                m(i),
            );
        }
        let rules: Vec<u64> = r.dead_letters().iter().map(|d| d.rule.raw()).collect();
        assert_eq!(rules, vec![3, 4, 5], "oldest letters evicted first");
    }

    #[test]
    fn take_due_orders_by_time_then_seq_and_keeps_the_rest() {
        let mut r = Resilience::default();
        let dev = DeviceId::new("lamp");
        // Same scheduling instant → same backoff → FIFO by seq.
        r.schedule(
            RuleId::new(1),
            dev.clone(),
            action("lamp"),
            RetryKind::Fire,
            1,
            m(0),
        );
        r.schedule(
            RuleId::new(2),
            dev.clone(),
            action("lamp"),
            RetryKind::Fire,
            1,
            m(0),
        );
        r.schedule(
            RuleId::new(3),
            dev.clone(),
            action("lamp"),
            RetryKind::Fire,
            4,
            m(0),
        );
        assert!(r.take_due(m(0)).is_empty()); // nothing due yet
        let due = r.take_due(m(2));
        assert_eq!(due.len(), 2); // attempt-4 entry is minutes away
        assert!(due[0].next_at <= due[1].next_at);
        assert_eq!(r.queue_len(), 1);
    }

    #[test]
    fn recovery_replays_dead_letters_for_that_device_only() {
        let mut r = Resilience::default();
        let lamp = DeviceId::new("lamp");
        let tv = DeviceId::new("tv");
        // Trip the lamp's breaker.
        for i in 0..3 {
            r.note_failure(&lamp, m(i));
        }
        assert_eq!(r.breaker_state(&lamp), BreakerState::Open);
        assert!(!r.breaker_allows(&lamp, m(3)));
        // Exhausted actions for both devices.
        let entry = |rule: u64, device: &DeviceId| RetryEntry {
            seq: 0,
            rule: RuleId::new(rule),
            device: device.clone(),
            action: action(device.as_str()),
            kind: RetryKind::Fire,
            attempt: 4,
            next_at: m(0),
        };
        r.dead_letter(entry(1, &lamp), "injected fault", m(3));
        r.dead_letter(entry(2, &tv), "injected fault", m(3));
        assert_eq!(r.dead_letters().len(), 2);
        // Lamp recovers: its letter is requeued, the TV's stays.
        assert!(r.note_success(&lamp, m(10)));
        assert_eq!(r.dead_letters().len(), 1);
        assert_eq!(r.dead_letters()[0].device, tv);
        assert_eq!(r.queue_len(), 1);
        let due = r.take_due(m(10));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].rule, RuleId::new(1));
        assert_eq!(due[0].attempt, 1); // fresh attempt budget
    }

    #[test]
    fn due_open_breaker_with_only_dead_letters_gets_a_probe() {
        let mut r = Resilience::default();
        let lamp = DeviceId::new("lamp");
        for i in 0..3 {
            r.note_failure(&lamp, m(i));
        }
        r.dead_letter(
            RetryEntry {
                seq: 0,
                rule: RuleId::new(1),
                device: lamp.clone(),
                action: action("lamp"),
                kind: RetryKind::Fire,
                attempt: 4,
                next_at: m(0),
            },
            "injected fault",
            m(3),
        );
        assert_eq!(r.queue_len(), 0);
        // Before the cooldown elapses: nothing happens.
        assert!(r.take_due(m(3)).is_empty());
        assert_eq!(r.dead_letters().len(), 1);
        // After it: the dead letter is resurrected as the probe.
        let due = r.take_due(m(5));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].rule, RuleId::new(1));
        assert!(r.dead_letters().is_empty());
    }

    #[test]
    fn purge_rule_drops_queue_and_dlq_entries() {
        let mut r = Resilience::default();
        let dev = DeviceId::new("lamp");
        r.schedule(
            RuleId::new(1),
            dev.clone(),
            action("lamp"),
            RetryKind::Fire,
            1,
            m(0),
        );
        r.schedule(
            RuleId::new(2),
            dev.clone(),
            action("lamp"),
            RetryKind::Fire,
            1,
            m(0),
        );
        r.dead_letter(
            RetryEntry {
                seq: 99,
                rule: RuleId::new(1),
                device: dev,
                action: action("lamp"),
                kind: RetryKind::Release,
                attempt: 4,
                next_at: m(0),
            },
            "x",
            m(0),
        );
        r.purge_rule(RuleId::new(1));
        assert_eq!(r.queue_len(), 1);
        assert!(r.dead_letters().is_empty());
        let status = r.status();
        assert_eq!(status.retry_queue, 1);
        assert_eq!(status.dead_letters, 0);
    }
}
