//! The rule execution module (paper §4.1): event ingestion, condition
//! evaluation, runtime conflict arbitration and device dispatch.
//!
//! [`Engine::step`] runs as a three-phase pipeline — batched ingest with
//! per-sensor coalescing, read-only (optionally parallel) rule
//! evaluation, and a serial commit in ascending `RuleId` order — so
//! serial and parallel runs produce byte-identical [`StepReport`]s. See
//! `docs/CONCURRENCY.md`.

use self::shard::{EvalContext, EvalVerdict};
use crate::context::{
    ContextStore, FreshnessPolicy, ARRIVAL_VARIABLE, OCCUPANTS_VARIABLE, ON_AIR_VARIABLE,
};
use crate::error::EngineError;
use crate::eval::{Evaluator, HeldOverlay, HeldTracker};
use crate::index::TriggerIndex;
use crate::resilience::{ActuationError, Resilience, ResilienceConfig, RetryKind};
use cadel_conflict::{PriorityOrder, PriorityStore, Resolution};
use cadel_obs::{Event as ObsEvent, LazyCounter, LazyGauge, LazyHistogram, Level, Span, Stopwatch};
use cadel_rule::{ActionSpec, Rule, RuleDb, RuleError, Verb};
use cadel_types::{DeviceId, RuleId, SimTime, Value};
use cadel_upnp::{ControlPoint, Subscription, UpnpError};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Runtime-state checkpoint export/import. A child of this module so it
/// can reach the engine's private runtime fields without widening their
/// visibility.
#[path = "persist.rs"]
pub mod persist;

/// The read-only parallel evaluation phase. A child of this module for
/// the same reason: workers borrow the engine's private runtime state.
#[path = "shard.rs"]
mod shard;

/// Engine steps executed.
static STEPS: LazyCounter = LazyCounter::new("engine_steps_total");
/// Device property-change events ingested across all steps.
static EVENTS_INGESTED: LazyCounter = LazyCounter::new("engine_events_ingested_total");
/// Ingested events dropped by batch coalescing (a later reading of the
/// same sensor superseded them within one step).
static EVENTS_COALESCED: LazyCounter = LazyCounter::new("engine_events_coalesced_total");
/// Worker threads used by the most recent evaluation phase.
static EVAL_THREADS: LazyGauge = LazyGauge::new("engine_eval_threads");
/// Candidate rules per evaluation shard.
static SHARD_RULES: LazyHistogram = LazyHistogram::new("engine_eval_shard_rules");
/// Spread between the slowest and fastest shard of one parallel
/// evaluation pass, in nanoseconds (shard imbalance).
static SHARD_IMBALANCE_NS: LazyHistogram = LazyHistogram::new("engine_eval_shard_imbalance_ns");
/// Rule conditions evaluated across all steps.
static RULES_EVALUATED: LazyCounter = LazyCounter::new("engine_rules_evaluated_total");
/// Evaluations served by a compiled program.
static EVAL_COMPILED: LazyCounter = LazyCounter::new("engine_eval_compiled_total");
/// Evaluations interpreted from the AST (compiled mode off, or fallback).
static EVAL_AST: LazyCounter = LazyCounter::new("engine_eval_ast_total");
/// Evaluations that *wanted* a compiled program but fell back to the AST
/// because compilation had failed for that rule.
static AST_FALLBACKS: LazyCounter = LazyCounter::new("engine_ast_fallback_total");
/// Firings dispatched to a device (fresh acquisition).
static FIRINGS_DISPATCHED: LazyCounter = LazyCounter::new("engine_firings_dispatched_total");
/// Firings suppressed by a higher-priority rule.
static FIRINGS_SUPPRESSED: LazyCounter = LazyCounter::new("engine_firings_suppressed_total");
/// Firings that displaced a previous holder.
static FIRINGS_REPLACED: LazyCounter = LazyCounter::new("engine_firings_replaced_total");
/// Firings whose dispatch failed at the device.
static FIRINGS_FAILED: LazyCounter = LazyCounter::new("engine_firings_failed_total");
/// Firings deferred because the target device's circuit breaker is open.
static FIRINGS_DEFERRED: LazyCounter = LazyCounter::new("engine_firings_deferred_total");
/// `until`-clause inverse actions that failed at the device.
static RELEASE_FAILED: LazyCounter = LazyCounter::new("engine_release_failed_total");
/// Queued retries actually re-invoked (breaker-gated requeues excluded).
static RETRIES_ATTEMPTED: LazyCounter = LazyCounter::new("engine_retries_attempted_total");
/// Retries whose re-invocation succeeded.
static RETRIES_SUCCEEDED: LazyCounter = LazyCounter::new("engine_retries_succeeded_total");
/// `until`-clause releases performed.
static RELEASES: LazyCounter = LazyCounter::new("engine_releases_total");
/// held-for timer states currently tracked.
static HELDFOR_TRACKED: LazyGauge = LazyGauge::new("engine_heldfor_tracked");
/// Wall-clock latency of one engine step.
static STEP_NS: LazyHistogram = LazyHistogram::new("engine_step_duration_ns");

/// The event channel on which the engine announces suppressed firings, so
/// fallback rules ("if I cannot use the TV, record the game instead") can
/// react. Event name format: `"<device-udn>:<loser-owner>"`.
pub const CONFLICT_CHANNEL: &str = "conflict";

/// What happened to one rule firing during a step.
#[derive(Clone, Debug, PartialEq)]
pub enum FiringOutcome {
    /// The action was sent to the device.
    Dispatched,
    /// A higher-priority rule holds the device; this firing was dropped
    /// and a [`CONFLICT_CHANNEL`] event was raised.
    SuppressedBy(RuleId),
    /// The action was sent, displacing the previous holder.
    Replaced(RuleId),
    /// The target device's circuit breaker is open: the firing is held
    /// back and re-attempted on later steps until the breaker admits a
    /// probe. Reported once per continuous deferral.
    Deferred,
    /// Dispatch failed: at the device, or an engine invariant broke.
    /// Transient device faults are re-attempted through the retry queue.
    Failed(ActuationError),
}

impl fmt::Display for FiringOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FiringOutcome::Dispatched => write!(f, "dispatched"),
            FiringOutcome::SuppressedBy(winner) => write!(f, "suppressed by {winner}"),
            FiringOutcome::Replaced(old) => write!(f, "replaced {old}"),
            FiringOutcome::Deferred => write!(f, "deferred (circuit open)"),
            FiringOutcome::Failed(err) => write!(f, "failed: {err}"),
        }
    }
}

/// A rule firing recorded in a step report.
#[derive(Clone, Debug, PartialEq)]
pub struct Firing {
    /// The rule that fired.
    pub rule: RuleId,
    /// The device it targeted.
    pub device: DeviceId,
    /// What happened.
    pub outcome: FiringOutcome,
}

impl fmt::Display for Firing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}: {}", self.rule, self.device, self.outcome)
    }
}

/// The observable result of one engine step.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StepReport {
    /// Firings attempted this step, in device order.
    pub firings: Vec<Firing>,
    /// Rules whose `until` condition released their action, with the
    /// device they released.
    pub releases: Vec<(RuleId, DeviceId)>,
}

impl StepReport {
    /// Whether nothing happened.
    pub fn is_empty(&self) -> bool {
        self.firings.is_empty() && self.releases.is_empty()
    }

    /// The firings that actually reached a device.
    pub fn dispatched(&self) -> Vec<&Firing> {
        self.firings
            .iter()
            .filter(|f| {
                matches!(
                    f.outcome,
                    FiringOutcome::Dispatched | FiringOutcome::Replaced(_)
                )
            })
            .collect()
    }
}

impl fmt::Display for StepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "idle");
        }
        let mut sep = "";
        for firing in &self.firings {
            write!(f, "{sep}{firing}")?;
            sep = "; ";
        }
        for (rule, device) in &self.releases {
            write!(f, "{sep}{rule} released {device}")?;
            sep = "; ";
        }
        Ok(())
    }
}

struct ActiveHolder {
    rule: RuleId,
}

/// The rule execution engine.
///
/// Owns the rule database, the priority store, the context store and the
/// UPnP control point. The driver (home server or simulator) advances it
/// by calling [`Engine::step`] with the current simulated time; each step
/// drains pending UPnP events, re-evaluates the affected rules, arbitrates
/// simultaneous firings per device by priority, and dispatches winning
/// actions.
pub struct Engine {
    control: ControlPoint,
    subscription: Subscription,
    rules: RuleDb,
    priorities: PriorityStore,
    ctx: ContextStore,
    held: HeldTracker,
    index: TriggerIndex,
    use_trigger_index: bool,
    /// The freshness policy the index deadlines were armed under;
    /// compared each step so `context_mut()` policy edits re-arm them.
    last_freshness: FreshnessPolicy,
    /// Reusable candidate-id buffer: collected into each step, capacity
    /// retained so the steady-state candidate path allocates nothing.
    candidate_buf: Vec<RuleId>,
    /// Reusable evaluation-stats buffers, recycled for the same reason.
    eval_stats: shard::EvalStats,
    use_compiled: bool,
    /// Worker threads for the evaluation phase; 1 = serial. Both paths
    /// run the same snapshot/evaluate/commit pipeline and produce
    /// byte-identical reports.
    eval_threads: usize,
    /// Whether ingest coalesces redundant same-sensor readings within a
    /// batch (last-write-wins). Off only for the P-series ablation.
    coalesce_events: bool,
    last_state: HashMap<RuleId, bool>,
    holders: HashMap<DeviceId, ActiveHolder>,
    /// Rules whose condition currently holds, per target device. Losers
    /// stay in here and re-contend whenever arbitration runs again — so a
    /// context change (Alan arrives) can promote a previously suppressed
    /// rule without a fresh condition edge.
    contenders: HashMap<DeviceId, BTreeSet<RuleId>>,
    /// Rules released by their `until` clause; excluded from contention
    /// until their condition goes false (prevents release/re-fire flap).
    latched: BTreeSet<RuleId>,
    /// Rules whose current suppression was already announced on the
    /// conflict channel (avoids re-raising every step).
    suppress_noted: BTreeSet<RuleId>,
    /// Rules whose compiled-program fallback was already reported as a
    /// structured event (the counter still ticks on every occurrence).
    fallback_noted: BTreeSet<RuleId>,
    /// Fault tolerance: per-device circuit breakers, the sim-time retry
    /// queue and the dead-letter queue.
    resilience: Resilience,
    /// Devices with a deferred firing: re-arbitrated every step so an
    /// open breaker is re-probed as soon as its cooldown elapses.
    deferred_devices: BTreeSet<DeviceId>,
    /// Rules whose current deferral was already reported in a step
    /// report (avoids one `Deferred` row per step while a breaker
    /// stays open).
    defer_noted: BTreeSet<RuleId>,
    /// Chaos hook invoked for every committed verdict (serial phase, so
    /// deterministic at any thread count). Fleet soaks install a
    /// panicking hook here to prove the supervisor contains a poisoned
    /// rule set; `None` in production.
    eval_hook: Option<Box<dyn FnMut(RuleId, SimTime) + Send>>,
}

impl Engine {
    /// Creates an engine over a control point. Device locations are read
    /// from the registry so presence readers map to their places.
    pub fn new(control: ControlPoint) -> Engine {
        let subscription = control.subscribe_all();
        let mut ctx = ContextStore::default();
        for description in control.registry().descriptions() {
            if let Some(place) = description.location() {
                ctx.set_device_place(description.udn().clone(), place.clone());
            }
        }
        let rules = RuleDb::new();
        ctx.attach_interner(rules.interner().clone());
        let index = TriggerIndex::new(rules.interner().clone());
        let last_freshness = ctx.freshness_policy();
        Engine {
            control,
            subscription,
            rules,
            priorities: PriorityStore::new(),
            ctx,
            held: HeldTracker::new(),
            index,
            use_trigger_index: true,
            last_freshness,
            candidate_buf: Vec::new(),
            eval_stats: shard::EvalStats::default(),
            use_compiled: true,
            eval_threads: 1,
            coalesce_events: true,
            last_state: HashMap::new(),
            holders: HashMap::new(),
            contenders: HashMap::new(),
            latched: BTreeSet::new(),
            suppress_noted: BTreeSet::new(),
            fallback_noted: BTreeSet::new(),
            resilience: Resilience::default(),
            deferred_devices: BTreeSet::new(),
            defer_noted: BTreeSet::new(),
            eval_hook: None,
        }
    }

    /// Installs (or clears) the per-verdict chaos hook. The hook runs in
    /// the serial commit phase for every evaluated rule; a panic inside
    /// it unwinds out of [`Engine::step`] exactly like a panic in rule
    /// bookkeeping would, which is what fleet soak tests rely on.
    pub fn set_eval_hook(&mut self, hook: Option<Box<dyn FnMut(RuleId, SimTime) + Send>>) {
        self.eval_hook = hook;
    }

    /// Disables the sensor-trigger index: every step re-evaluates every
    /// rule. Exists for the A3 ablation benchmark.
    pub fn set_use_trigger_index(&mut self, enabled: bool) {
        self.use_trigger_index = enabled;
    }

    /// Disables compiled-program evaluation: conditions are interpreted
    /// from their ASTs instead. Exists for parity testing and the compiled
    /// vs. interpreted benchmark; both modes produce identical
    /// [`StepReport`]s.
    pub fn set_use_compiled(&mut self, enabled: bool) {
        self.use_compiled = enabled;
    }

    /// Sets how many worker threads the evaluation phase may use (clamped
    /// to at least 1; 1 means serial). Parallel evaluation is
    /// deterministic: any thread count produces byte-identical
    /// [`StepReport`]s, activity timelines and checkpoints. A runtime
    /// tuning knob, deliberately not persisted in the WAL.
    pub fn set_eval_threads(&mut self, threads: usize) {
        self.eval_threads = threads.max(1);
    }

    /// The configured evaluation-phase thread count.
    pub fn eval_threads(&self) -> usize {
        self.eval_threads
    }

    /// Disables ingest coalescing: every drained property change is
    /// applied and fanned out individually. Exists for the P-series
    /// coalescing ablation; verdicts are identical either way.
    pub fn set_coalesce_events(&mut self, enabled: bool) {
        self.coalesce_events = enabled;
    }

    /// The control point.
    pub fn control(&self) -> &ControlPoint {
        &self.control
    }

    /// The rule database (shared with the registration workflow).
    pub fn rules(&self) -> &RuleDb {
        &self.rules
    }

    /// Mutable access to the rule database. Prefer [`Engine::add_rule`] /
    /// [`Engine::remove_rule`], which maintain the trigger index.
    pub fn rules_mut(&mut self) -> &mut RuleDb {
        &mut self.rules
    }

    /// The priority store.
    pub fn priorities(&self) -> &PriorityStore {
        &self.priorities
    }

    /// Registers a priority order.
    pub fn add_priority(&mut self, order: PriorityOrder) -> usize {
        self.priorities.add_order(order)
    }

    /// The context store.
    pub fn context(&self) -> &ContextStore {
        &self.ctx
    }

    /// Mutable context access (scenario scripting: direct presence or
    /// event injection).
    pub fn context_mut(&mut self) -> &mut ContextStore {
        &mut self.ctx
    }

    /// The fault-tolerance layer (breakers, retry queue, dead letters).
    pub fn resilience(&self) -> &Resilience {
        &self.resilience
    }

    /// Mutable access to the fault-tolerance layer.
    pub fn resilience_mut(&mut self) -> &mut Resilience {
        &mut self.resilience
    }

    /// Replaces the breaker/retry tunables (state is kept).
    pub fn set_resilience_config(&mut self, config: ResilienceConfig) {
        self.resilience.set_config(config);
    }

    /// Adds a compiled rule and indexes its triggers.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Rule`] on id collisions.
    pub fn add_rule(&mut self, rule: Rule) -> Result<RuleId, EngineError> {
        let id = rule.id();
        // Insert first: a rejected duplicate must not touch the index,
        // and indexing reads the compiled footprint out of the database.
        self.rules.insert(rule)?;
        self.index.insert(id, &self.rules, &self.ctx, &self.held);
        Ok(id)
    }

    /// Removes a rule and de-indexes it.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Rule`] for unknown ids.
    pub fn remove_rule(&mut self, id: RuleId) -> Result<(), EngineError> {
        if self.rules.get(id).is_none() {
            return Err(EngineError::Rule(RuleError::UnknownRule(id)));
        }
        // De-index while the compiled footprint is still in the database.
        self.index.remove(id, &self.rules);
        self.rules.remove(id)?;
        self.last_state.remove(&id);
        self.holders.retain(|_, h| h.rule != id);
        self.latched.remove(&id);
        self.suppress_noted.remove(&id);
        self.fallback_noted.remove(&id);
        self.defer_noted.remove(&id);
        self.resilience.purge_rule(id);
        for set in self.contenders.values_mut() {
            set.remove(&id);
        }
        Ok(())
    }

    /// Replaces a rule in place under its existing id (customization:
    /// edit or enable/disable). The replacement is recompiled with a
    /// fresh revision — invalidating memoized conflict verdicts — and the
    /// old rule's runtime state (holds, contention, retries) is purged,
    /// exactly as a remove-then-add would.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Rule`] for unknown ids.
    pub fn update_rule(&mut self, rule: Rule) -> Result<(), EngineError> {
        let id = rule.id();
        if self.rules.get(id).is_none() {
            return Err(EngineError::Rule(RuleError::UnknownRule(id)));
        }
        // De-index the old footprint before the replacement overwrites
        // it, then index the replacement's.
        self.index.remove(id, &self.rules);
        self.rules.replace(rule)?;
        self.index.insert(id, &self.rules, &self.ctx, &self.held);
        self.last_state.remove(&id);
        self.holders.retain(|_, h| h.rule != id);
        self.latched.remove(&id);
        self.suppress_noted.remove(&id);
        self.fallback_noted.remove(&id);
        self.defer_noted.remove(&id);
        self.resilience.purge_rule(id);
        for set in self.contenders.values_mut() {
            set.remove(&id);
        }
        Ok(())
    }

    /// Drains device events, advances the clock, re-evaluates rules,
    /// arbitrates conflicts and dispatches actions.
    pub fn step(&mut self, now: SimTime) -> StepReport {
        let sw = Stopwatch::start();
        let mut span = Span::new("engine.step");

        // Phase 1 — batched ingest: drain the subscription, advance the
        // clock and apply the batch with per-sensor coalescing. Every
        // context mutation logs interned-slot dirt for phase 2.
        let (ingested, coalesced) = self.ingest(now);

        // Phase 1b — service due retries before evaluation, so a
        // successful retry re-acquires its device ahead of this step's
        // arbitration.
        let mut firings = Vec::new();
        self.process_retries(now, &mut firings);

        // Phase 2 — candidate set: drain the context dirt log and the
        // due deadline heaps into the trigger index and collect the
        // dirty ∪ temporal ∪ true ∪ pending rules (ascending). The
        // buffer round-trips through the field so its capacity is
        // reused across steps.
        let mut candidates = std::mem::take(&mut self.candidate_buf);
        self.refresh_candidates(now, &mut candidates);

        // Phase 3 — read-only evaluation over the now-immutable context,
        // sharded across scoped worker threads (serial at 1). Workers
        // return per-rule verdicts plus observed held-for transitions;
        // nothing shared is mutated until commit.
        let mut eval_stats = std::mem::take(&mut self.eval_stats);
        let ec = EvalContext {
            rules: &self.rules,
            ctx: &self.ctx,
            held: &self.held,
            holders: &self.holders,
            use_compiled: self.use_compiled,
        };
        let verdicts = shard::evaluate(&ec, &candidates, self.eval_threads, &mut eval_stats);
        self.candidate_buf = candidates;

        // Phase 4 — serial commit in ascending RuleId order: held-for
        // transitions, state edges, until releases, contender pools.
        let mut newly_true: BTreeSet<RuleId> = BTreeSet::new();
        let mut releases: Vec<(RuleId, DeviceId)> = Vec::new();
        // Devices whose current holder's condition just lapsed: suppressed
        // contenders must get a chance to take over.
        let mut holder_lapsed: BTreeSet<DeviceId> = BTreeSet::new();
        let (evaluated, eval_compiled, eval_ast) = self.commit_verdicts(
            verdicts,
            now,
            &mut newly_true,
            &mut releases,
            &mut holder_lapsed,
        );

        // Phase 5 — re-arbitrate every device whose outcome could have changed:
        //    any device with a fresh edge, and any device with several
        //    live contenders (a context change alone can flip priorities).
        let mut devices: BTreeSet<DeviceId> = BTreeSet::new();
        for id in &newly_true {
            if let Some(rule) = self.rules.get(*id) {
                devices.insert(rule.action().device().clone());
            }
        }
        for (device, set) in &self.contenders {
            if set.len() >= 2 {
                devices.insert(device.clone());
            }
        }
        devices.extend(holder_lapsed);
        // Deferred devices re-arbitrate every step so the open breaker
        // gets probed as soon as its cooldown elapses.
        devices.extend(self.deferred_devices.iter().cloned());

        for device in devices {
            let contenders: Vec<RuleId> = self
                .contenders
                .get(&device)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default();
            if contenders.is_empty() {
                self.deferred_devices.remove(&device);
                continue;
            }
            // Put the current live holder first for the unresolved
            // fallback (prefer the status quo).
            let holder = self
                .holders
                .get(&device)
                .map(|h| h.rule)
                .filter(|id| contenders.contains(id));
            let mut ordered = contenders.clone();
            if let Some(h) = holder {
                ordered.retain(|id| *id != h);
                ordered.insert(0, h);
            }

            let winner = self.arbitrate(&device, &ordered);

            // Dispatch when the winner is not already holding the device —
            // or re-assert on a fresh edge of the holder itself. A holder
            // whose condition has lapsed is not "displaced": only live
            // holders count as previous for the Replaced outcome and its
            // conflict-channel announcement.
            if holder != Some(winner) || newly_true.contains(&winner) {
                let outcome = self.dispatch(winner, holder);
                let mut report = true;
                match &outcome {
                    FiringOutcome::Deferred => {
                        // The breaker is open: keep the contender and
                        // re-try on later steps; report only the first
                        // deferral of a continuous stretch.
                        self.deferred_devices.insert(device.clone());
                        report = self.defer_noted.insert(winner);
                    }
                    FiringOutcome::Failed(err) if err.is_retryable() => {
                        // Transient device fault: the retry queue owns
                        // the re-attempts, so the contender stays and
                        // the state stays true (no synthetic edge).
                        self.schedule_rule_retry(winner, now);
                    }
                    FiringOutcome::Failed(_) => {
                        // Final failure (validation error, vanished
                        // rule): do not retry every step; wait for a
                        // fresh edge.
                        if let Some(set) = self.contenders.get_mut(&device) {
                            set.remove(&winner);
                        }
                        self.last_state.insert(winner, false);
                        self.index.force_false(winner);
                    }
                    _ => {
                        self.suppress_noted.remove(&winner);
                        self.defer_noted.remove(&winner);
                        self.deferred_devices.remove(&device);
                        // Announce the displaced holder's defeat so
                        // fallback rules ("record it instead") can
                        // react.
                        if let FiringOutcome::Replaced(old) = &outcome {
                            self.note_suppression(&device, *old);
                        }
                    }
                }
                if report {
                    firings.push(Firing {
                        rule: winner,
                        device: device.clone(),
                        outcome,
                    });
                }
            }

            // Report fresh losers (and announce each continuous
            // suppression once).
            for id in contenders {
                if id == winner {
                    continue;
                }
                let fresh = newly_true.contains(&id);
                let unannounced = !self.suppress_noted.contains(&id);
                if fresh || unannounced {
                    self.note_suppression(&device, id);
                }
                if fresh {
                    firings.push(Firing {
                        rule: id,
                        device: device.clone(),
                        outcome: FiringOutcome::SuppressedBy(winner),
                    });
                }
            }
        }

        STEPS.inc();
        EVENTS_INGESTED.add(ingested as u64);
        EVENTS_COALESCED.add(coalesced as u64);
        RULES_EVALUATED.add(evaluated);
        EVAL_COMPILED.add(eval_compiled);
        EVAL_AST.add(eval_ast);
        RELEASES.add(releases.len() as u64);
        if cadel_obs::enabled() {
            for firing in &firings {
                match firing.outcome {
                    FiringOutcome::Dispatched => FIRINGS_DISPATCHED.inc(),
                    FiringOutcome::SuppressedBy(_) => FIRINGS_SUPPRESSED.inc(),
                    FiringOutcome::Replaced(_) => FIRINGS_REPLACED.inc(),
                    FiringOutcome::Deferred => FIRINGS_DEFERRED.inc(),
                    FiringOutcome::Failed(_) => FIRINGS_FAILED.inc(),
                }
            }
            EVAL_THREADS.set(eval_stats.threads as i64);
            for size in &eval_stats.shard_sizes {
                SHARD_RULES.observe(*size as u64);
            }
            if eval_stats.shard_ns.len() > 1 {
                let max = eval_stats.shard_ns.iter().copied().max().unwrap_or(0);
                let min = eval_stats.shard_ns.iter().copied().min().unwrap_or(0);
                SHARD_IMBALANCE_NS.observe(max - min);
            }
            HELDFOR_TRACKED.set(self.held.tracked() as i64);
            span.add_field("events", ingested as u64);
            span.add_field("evaluated", evaluated);
            span.add_field("firings", firings.len() as u64);
            span.add_field("releases", releases.len() as u64);
        }
        // Return the stats buffers to the engine so the next step reuses
        // their capacity instead of allocating.
        self.eval_stats = eval_stats;
        STEP_NS.record(&sw);
        drop(span);

        StepReport { firings, releases }
    }

    /// Phase 1 of [`step`](Self::step): drains the subscription, advances
    /// the context clock and applies the batch, coalescing redundant
    /// same-sensor readings last-write-wins. Returns the raw drained
    /// count and the number of changes coalesced away; affected-rule
    /// fanout happens in phase 2 off the context's dirt log.
    fn ingest(&mut self, now: SimTime) -> (usize, usize) {
        let changes = self.subscription.drain();
        self.ctx.set_now(now);
        // Catch the slot boards up with names interned since the last step
        // (mutators keep them current otherwise).
        if self.use_compiled {
            self.ctx.sync_ir();
        }
        // Index of the last write per (device, variable) within this
        // batch; earlier writes to the same sensor are invisible to every
        // observer (evaluation only sees post-batch state) and are
        // skipped. Event-bearing and stateful variables are exempt — see
        // `coalescible`.
        let mut last_write: HashMap<(&DeviceId, &str), usize> = HashMap::new();
        if self.coalesce_events {
            for (i, change) in changes.iter().enumerate() {
                if coalescible(&change.variable) {
                    last_write.insert((&change.device, change.variable.as_str()), i);
                }
            }
        }
        let mut coalesced = 0usize;
        for (i, change) in changes.iter().enumerate() {
            if self.coalesce_events
                && coalescible(&change.variable)
                && last_write.get(&(&change.device, change.variable.as_str())) != Some(&i)
            {
                coalesced += 1;
                continue;
            }
            self.ctx.apply_property_change(change);
        }
        (changes.len(), coalesced)
    }

    /// Phase 2 of [`step`](Self::step): the candidate set. Forwards the
    /// context's dirt log (sensor, place and channel slots touched by
    /// any mutation path since the last drain — including direct
    /// `context_mut()` writes) into the trigger index, re-arms the
    /// freshness deadlines when the policy changed, and collects
    /// dirty ∪ temporal ∪ true ∪ pending into `out`, ascending. With
    /// the index ablated the dirt and heaps are still drained (so they
    /// stay bounded) but the candidate set is every rule.
    fn refresh_candidates(&mut self, now: SimTime, out: &mut Vec<RuleId>) {
        let policy = self.ctx.freshness_policy();
        if policy != self.last_freshness {
            self.index
                .on_policy_changed(&self.ctx.stamped_sensor_slots(), policy.max_age);
            self.last_freshness = policy;
        }
        for &(slot, stamp) in self.ctx.dirty_sensors() {
            self.index.note_sensor_dirt(slot, stamp, policy.max_age);
        }
        for &slot in self.ctx.dirty_places() {
            self.index.mark_place(slot);
        }
        for &slot in self.ctx.dirty_channels() {
            self.index.mark_channel(slot);
        }
        self.ctx.clear_dirt();
        self.index.collect_candidates(now, out);
        if !self.use_trigger_index {
            out.clear();
            // `RuleDb` iterates its BTree map in ascending id order, the
            // same order `collect_candidates` guarantees.
            out.extend(self.rules.iter().map(|r| r.id()));
        }
    }

    /// Phase 4 of [`step`](Self::step): applies evaluation verdicts
    /// serially in ascending `RuleId` order — held-for transitions,
    /// fallback accounting, state edges, `until` releases and
    /// contender-pool maintenance. This is the old evaluation loop minus
    /// the evaluation: given the same verdicts it performs the same
    /// mutations in the same order no matter how many threads produced
    /// them. Returns (evaluated, compiled, ast) counts.
    fn commit_verdicts(
        &mut self,
        verdicts: Vec<EvalVerdict>,
        now: SimTime,
        newly_true: &mut BTreeSet<RuleId>,
        releases: &mut Vec<(RuleId, DeviceId)>,
        holder_lapsed: &mut BTreeSet<DeviceId>,
    ) -> (u64, u64, u64) {
        let mut evaluated: u64 = 0;
        let mut eval_compiled: u64 = 0;
        let mut eval_ast: u64 = 0;
        for verdict in verdicts {
            let id = verdict.rule;
            if let Some(hook) = &mut self.eval_hook {
                hook(id, now);
            }
            // Apply observed held-for transitions before this rule's
            // bookkeeping: in the serial engine the tracker was mutated
            // *during* this rule's evaluation, i.e. before anything
            // below ran.
            for (fingerprint, change) in verdict.held {
                // Arm the dwell deadline before `apply` consumes the
                // fingerprint string.
                self.index.on_held_transition(&fingerprint, change);
                self.held.apply(fingerprint, change);
            }
            evaluated += 1;
            if verdict.compiled {
                eval_compiled += 1;
            } else {
                eval_ast += 1;
            }
            let Some(rule) = self.rules.get(id) else {
                continue;
            };
            let device = rule.action().device();
            if verdict.fallback {
                // Wanted the compiled path, ended up interpreting: a
                // degradation worth a counter tick per occurrence and
                // one structured event per rule.
                AST_FALLBACKS.inc();
                if self.fallback_noted.insert(id) && cadel_obs::enabled() {
                    cadel_obs::emit(
                        ObsEvent::new("engine.ast_fallback", Level::Warn)
                            .with_field("rule", id.raw())
                            .with_field("owner", rule.owner().as_str())
                            .with_field("device", device.as_str()),
                    );
                }
            }
            let now_true = verdict.now_true;
            let prev = self.last_state.insert(id, now_true).unwrap_or(false);
            self.index.on_committed(id, now_true);

            // `until` releases apply to the active holder even after its
            // trigger condition has passed ("turn on … until 10 pm" turns
            // the light off at 10 pm however long ago the arrival was).
            // The verdict already folds in the holder check — see
            // `EvalContext::eval_rule` for why the holder table cannot
            // have changed since the snapshot.
            if verdict.until_release {
                // Inlined `release`: invoke the inverse action and
                // free the device (a method call would require
                // `&mut self` while `rule` is borrowed). Inverse
                // failures are not swallowed: they are counted,
                // reported, and — for transient faults — retried,
                // so a flaky device does not stay stuck on.
                if let Some(inverse) = rule.action().verb().inverse() {
                    let inverse_action = ActionSpec::new(device.clone(), inverse);
                    let blocked = self.resilience.breaker_blocks(device, now);
                    let result = if blocked {
                        Err(UpnpError::DeviceFault("circuit open".into()))
                    } else {
                        self.invoke_action(&inverse_action)
                    };
                    if let Err(err) = result {
                        RELEASE_FAILED.inc();
                        if cadel_obs::enabled() {
                            cadel_obs::emit(
                                ObsEvent::new("engine.release_failed", Level::Warn)
                                    .with_field("rule", id.raw())
                                    .with_field("device", device.as_str())
                                    .with_field("error", err.to_string()),
                            );
                        }
                        if matches!(err, UpnpError::DeviceFault(_)) {
                            if !blocked {
                                self.resilience.note_failure(device, now);
                            }
                            self.resilience.schedule(
                                id,
                                device.clone(),
                                inverse_action,
                                RetryKind::Release,
                                1,
                                now,
                            );
                        }
                    }
                }
                self.holders.remove(device);
                releases.push((id, device.clone()));
                // Latch until the condition goes false so the rule
                // does not immediately re-acquire the device.
                if now_true {
                    self.latched.insert(id);
                }
                if let Some(set) = self.contenders.get_mut(device) {
                    set.remove(&id);
                }
            }

            if !now_true {
                // A false condition clears the latch and any suppression
                // or deferral note, and leaves the contender pool.
                self.latched.remove(&id);
                self.suppress_noted.remove(&id);
                self.defer_noted.remove(&id);
                if let Some(set) = self.contenders.get_mut(device) {
                    set.remove(&id);
                }
                if self.holders.get(device).map(|h| h.rule) == Some(id) {
                    holder_lapsed.insert(device.clone());
                }
                continue;
            }
            if !prev {
                newly_true.insert(id);
            }
            if !self.latched.contains(&id) {
                // Clone the key only when this device has no contender set
                // yet.
                match self.contenders.get_mut(device) {
                    Some(set) => {
                        set.insert(id);
                    }
                    None => {
                        self.contenders.insert(device.clone(), BTreeSet::from([id]));
                    }
                }
            }
        }
        (evaluated, eval_compiled, eval_ast)
    }

    /// Raises the conflict-channel event for a suppressed/displaced rule
    /// (once per continuous suppression).
    fn note_suppression(&mut self, device: &DeviceId, loser: RuleId) {
        if self.suppress_noted.insert(loser) {
            if let Some(rule) = self.rules.get(loser) {
                let owner = rule.owner().clone();
                self.ctx
                    .raise_event(CONFLICT_CHANNEL, &format!("{device}:{owner}"));
            }
        }
    }

    /// Picks the winning rule among simultaneous contenders on a device,
    /// consulting the context-scoped priority store; ties fall back to the
    /// current holder, then to the earliest-registered rule.
    fn arbitrate(&mut self, device: &DeviceId, contenders: &[RuleId]) -> RuleId {
        debug_assert!(!contenders.is_empty());
        let ctx = &self.ctx;
        // Priority-store context conditions may contain `held for`:
        // observe them through an overlay so the committed transitions
        // also arm the index's dwell deadlines.
        let mut overlay = HeldOverlay::new(&self.held);
        let resolution = self.priorities.resolve(device, contenders, |condition| {
            Evaluator::new(ctx, &mut overlay).condition_holds(condition)
        });
        for (fingerprint, change) in overlay.take_transitions() {
            self.index.on_held_transition(&fingerprint, change);
            self.held.apply(fingerprint, change);
        }
        match resolution {
            Resolution::Winner(id) => id,
            Resolution::Unresolved(mut ids) => {
                ids.sort();
                // Holder first (it is placed at the front by the caller),
                // else the earliest rule.
                self.holders
                    .get(device)
                    .map(|h| h.rule)
                    .filter(|id| contenders.contains(id))
                    .unwrap_or_else(|| ids[0])
            }
        }
    }

    fn dispatch(&mut self, id: RuleId, previous_holder: Option<RuleId>) -> FiringOutcome {
        let Some(rule) = self.rules.get(id) else {
            return FiringOutcome::Failed(ActuationError::RuleVanished(id));
        };
        let action = rule.action().clone();
        let device = action.device().clone();
        let now = self.ctx.now();
        if !self.resilience.breaker_allows(&device, now) {
            return FiringOutcome::Deferred;
        }
        match self.invoke_action(&action) {
            Ok(()) => {
                self.resilience.note_success(&device, now);
                self.holders.insert(device, ActiveHolder { rule: id });
                match previous_holder {
                    Some(old) if old != id => FiringOutcome::Replaced(old),
                    _ => FiringOutcome::Dispatched,
                }
            }
            Err(e) => {
                // Only transient device faults count against the
                // breaker: a validation error is the rule's problem,
                // not the device's health.
                if matches!(e, UpnpError::DeviceFault(_)) {
                    self.resilience.note_failure(&device, now);
                }
                FiringOutcome::Failed(ActuationError::Device(e))
            }
        }
    }

    /// Queues the first retry of a rule's action after a transient
    /// dispatch failure.
    fn schedule_rule_retry(&mut self, id: RuleId, now: SimTime) {
        let Some(rule) = self.rules.get(id) else {
            return;
        };
        let action = rule.action().clone();
        let device = action.device().clone();
        self.resilience
            .schedule(id, device, action, RetryKind::Fire, 1, now);
    }

    /// Re-invokes every queued retry due at `now`. Stale entries (rule
    /// gone or disabled, condition lapsed, device taken over) are
    /// cancelled; entries whose breaker is still open are requeued for
    /// the next probe window; transient failures reschedule with the
    /// next backoff or dead-letter after `max_attempts`.
    fn process_retries(&mut self, now: SimTime, firings: &mut Vec<Firing>) {
        if self.resilience.queue_len() == 0 && self.resilience.dead_letters().is_empty() {
            return;
        }
        for entry in self.resilience.take_due(now) {
            let alive = self
                .rules
                .get(entry.rule)
                .map(|r| r.is_enabled())
                .unwrap_or(false);
            if !alive {
                self.resilience.cancel(&entry, "rule removed or disabled");
                continue;
            }
            if entry.kind == RetryKind::Fire {
                if self.last_state.get(&entry.rule).copied() != Some(true) {
                    self.resilience.cancel(&entry, "condition no longer holds");
                    continue;
                }
                let taken_over = self
                    .holders
                    .get(&entry.device)
                    .map(|h| h.rule != entry.rule)
                    .unwrap_or(false);
                if taken_over {
                    self.resilience
                        .cancel(&entry, "device held by another rule");
                    continue;
                }
            }
            if !self.resilience.breaker_allows(&entry.device, now) {
                let fallback = now + self.resilience.config().retry_base;
                self.resilience.requeue_for_breaker(entry, fallback);
                continue;
            }
            RETRIES_ATTEMPTED.inc();
            match self.invoke_action(&entry.action) {
                Ok(()) => {
                    RETRIES_SUCCEEDED.inc();
                    self.resilience.note_success(&entry.device, now);
                    if entry.kind == RetryKind::Fire {
                        self.holders
                            .insert(entry.device.clone(), ActiveHolder { rule: entry.rule });
                        self.defer_noted.remove(&entry.rule);
                        firings.push(Firing {
                            rule: entry.rule,
                            device: entry.device,
                            outcome: FiringOutcome::Dispatched,
                        });
                    }
                }
                Err(err) => {
                    let retryable = matches!(err, UpnpError::DeviceFault(_));
                    if retryable {
                        self.resilience.note_failure(&entry.device, now);
                    }
                    if retryable && entry.attempt < self.resilience.config().max_attempts {
                        let attempt = entry.attempt + 1;
                        self.resilience.schedule(
                            entry.rule,
                            entry.device,
                            entry.action,
                            entry.kind,
                            attempt,
                            now,
                        );
                    } else {
                        let was_fire = entry.kind == RetryKind::Fire;
                        let rule = entry.rule;
                        let device = entry.device.clone();
                        let reason = err.to_string();
                        self.resilience.dead_letter(entry, &reason, now);
                        if was_fire {
                            firings.push(Firing {
                                rule,
                                device,
                                outcome: FiringOutcome::Failed(ActuationError::Device(err)),
                            });
                        }
                    }
                }
            }
        }
    }

    /// Translates an [`ActionSpec`] into UPnP invocations.
    fn invoke_action(&self, action: &ActionSpec) -> Result<(), UpnpError> {
        let device = action.device();
        let at = self.ctx.now();
        match action.verb() {
            Verb::Set => {
                // "Set" applies each setting through its own SetX action.
                for setting in action.settings() {
                    let name = format!("Set{}", capitalize(setting.parameter()));
                    let args = vec![(setting.parameter().to_owned(), setting.value().clone())];
                    self.control.invoke(device, &name, &args, at)?;
                }
                Ok(())
            }
            verb => {
                let name = verb_action_name(verb);
                let args: Vec<(String, Value)> = action
                    .settings()
                    .iter()
                    .map(|s| (s.parameter().to_owned(), s.value().clone()))
                    .collect();
                self.control.invoke(device, &name, &args, at)?;
                Ok(())
            }
        }
    }

    /// The rule currently holding a device, if any.
    pub fn holder(&self, device: &DeviceId) -> Option<RuleId> {
        self.holders.get(device).map(|h| h.rule)
    }
}

/// Whether a variable's readings may be coalesced last-write-wins within
/// one ingest batch. Event-bearing variables carry a distinct fact per
/// payload (`arrival` raises a transient event per person, `on-air`
/// rewrites the broadcast channel per program) and `occupants` updates
/// presence by *diffing* against the previous occupant set — dropping an
/// intermediate payload of any of them would change observable state, so
/// they always apply individually.
///
/// Public so admission-control layers (the fleet's bounded inboxes)
/// shed by the same rules the engine coalesces by.
pub fn coalescible(variable: &str) -> bool {
    !matches!(
        variable,
        ARRIVAL_VARIABLE | ON_AIR_VARIABLE | OCCUPANTS_VARIABLE
    )
}

fn capitalize(word: &str) -> String {
    let mut out = String::with_capacity(word.len());
    for part in word.split_whitespace() {
        let mut chars = part.chars();
        if let Some(first) = chars.next() {
            out.extend(first.to_uppercase());
            out.extend(chars);
        }
    }
    out
}

fn verb_action_name(verb: &Verb) -> String {
    match verb {
        Verb::TurnOn => "TurnOn".to_owned(),
        Verb::TurnOff => "TurnOff".to_owned(),
        Verb::Record => "Record".to_owned(),
        Verb::Play => "Play".to_owned(),
        Verb::Stop => "Stop".to_owned(),
        Verb::Lock => "Lock".to_owned(),
        Verb::Unlock => "Unlock".to_owned(),
        Verb::Dim => "Dim".to_owned(),
        Verb::Brighten => "Brighten".to_owned(),
        Verb::Show => "Show".to_owned(),
        Verb::Notify => "Notify".to_owned(),
        Verb::Set => "Set".to_owned(),
        Verb::Custom(s) => capitalize(s),
        // `Verb` is non-exhaustive: fall back to the display phrase.
        other => capitalize(other.phrase()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{FreshnessMode, FreshnessPolicy};
    use crate::resilience::BreakerState;
    use cadel_devices::LivingRoomHome;
    use cadel_rule::{Atom, Condition, ConstraintAtom, EventAtom, PresenceAtom};
    use cadel_simplex::RelOp;
    use cadel_types::{PersonId, Quantity, Rational, SensorKey, SimDuration, Unit};
    use cadel_upnp::{FaultPlan, FaultyDevice, Registry, VirtualDevice};

    fn setup() -> (Engine, LivingRoomHome) {
        let registry = Registry::new();
        let home = LivingRoomHome::install(&registry);
        let engine = Engine::new(ControlPoint::new(registry));
        (engine, home)
    }

    fn faulty_setup(device: &str, plan: FaultPlan) -> (Engine, LivingRoomHome) {
        let registry = Registry::new();
        let home = LivingRoomHome::install(&registry);
        FaultyDevice::wrap(&registry, &DeviceId::new(device), plan).unwrap();
        let engine = Engine::new(ControlPoint::new(registry));
        (engine, home)
    }

    fn mins(m: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_minutes(m)
    }

    fn hot_rule(owner: &str, id: u64, threshold: i64, setpoint: i64) -> Rule {
        let cond = Condition::Atom(Atom::Constraint(ConstraintAtom::new(
            SensorKey::new(DeviceId::new("thermo-lr"), "temperature"),
            RelOp::Gt,
            Quantity::from_integer(threshold, Unit::Celsius),
        )));
        Rule::builder(PersonId::new(owner))
            .condition(cond)
            .action(
                ActionSpec::new(DeviceId::new("aircon-lr"), Verb::TurnOn).with_setting(
                    "temperature",
                    Quantity::from_integer(setpoint, Unit::Celsius),
                ),
            )
            .build(RuleId::new(id))
            .unwrap()
    }

    #[test]
    fn sensor_event_triggers_rule_and_dispatches() {
        let (mut engine, home) = setup();
        engine.add_rule(hot_rule("tom", 1, 26, 25)).unwrap();

        // Nothing yet.
        let report = engine.step(SimTime::EPOCH);
        assert!(report.firings.is_empty());

        // Temperature rises past the threshold.
        home.thermometer
            .set_reading(Rational::from_integer(28), SimTime::from_millis(1000))
            .unwrap();
        let report = engine.step(SimTime::from_millis(1000));
        assert_eq!(report.firings.len(), 1);
        assert_eq!(report.firings[0].outcome, FiringOutcome::Dispatched);
        // The aircon actually turned on with Tom's setpoint.
        assert_eq!(home.aircon.query("power").unwrap(), Value::Bool(true));
        assert_eq!(
            home.aircon.query("setpoint").unwrap(),
            Value::Number(Quantity::from_integer(25, Unit::Celsius))
        );
        assert_eq!(
            engine.holder(&DeviceId::new("aircon-lr")),
            Some(RuleId::new(1))
        );
    }

    #[test]
    fn edge_triggering_fires_once() {
        let (mut engine, home) = setup();
        engine.add_rule(hot_rule("tom", 1, 26, 25)).unwrap();
        home.thermometer
            .set_reading(Rational::from_integer(28), SimTime::EPOCH)
            .unwrap();
        let r1 = engine.step(SimTime::from_millis(1));
        assert_eq!(r1.firings.len(), 1);
        // Still hot: no re-firing.
        let r2 = engine.step(SimTime::from_millis(2));
        assert!(r2.firings.is_empty());
        // Cools below, then heats again: fires again.
        home.thermometer
            .set_reading(Rational::from_integer(24), SimTime::from_millis(3))
            .unwrap();
        engine.step(SimTime::from_millis(3));
        home.thermometer
            .set_reading(Rational::from_integer(29), SimTime::from_millis(4))
            .unwrap();
        let r3 = engine.step(SimTime::from_millis(4));
        assert_eq!(r3.firings.len(), 1);
    }

    #[test]
    fn priority_arbitrates_simultaneous_firings() {
        let (mut engine, home) = setup();
        // Tom (rule 1, 25°) and Alan (rule 2, 24°) both trigger above 26°.
        engine.add_rule(hot_rule("tom", 1, 26, 25)).unwrap();
        engine.add_rule(hot_rule("alan", 2, 25, 24)).unwrap();
        engine.add_priority(PriorityOrder::new(
            DeviceId::new("aircon-lr"),
            vec![RuleId::new(2), RuleId::new(1)],
        ));
        home.thermometer
            .set_reading(Rational::from_integer(28), SimTime::EPOCH)
            .unwrap();
        let report = engine.step(SimTime::from_millis(1));
        assert_eq!(report.firings.len(), 2);
        let alan = report
            .firings
            .iter()
            .find(|f| f.rule == RuleId::new(2))
            .unwrap();
        let tom = report
            .firings
            .iter()
            .find(|f| f.rule == RuleId::new(1))
            .unwrap();
        assert!(matches!(alan.outcome, FiringOutcome::Dispatched));
        assert_eq!(tom.outcome, FiringOutcome::SuppressedBy(RuleId::new(2)));
        // Alan's setpoint won.
        assert_eq!(
            home.aircon.query("setpoint").unwrap(),
            Value::Number(Quantity::from_integer(24, Unit::Celsius))
        );
        // The conflict event was raised for Tom's suppression.
        assert!(engine.context().event_active("conflict", "aircon-lr:tom"));
    }

    #[test]
    fn later_higher_priority_rule_replaces_holder() {
        let (mut engine, home) = setup();
        engine.add_rule(hot_rule("tom", 1, 26, 25)).unwrap();
        engine.add_rule(hot_rule("alan", 2, 29, 24)).unwrap();
        engine.add_priority(PriorityOrder::new(
            DeviceId::new("aircon-lr"),
            vec![RuleId::new(2), RuleId::new(1)],
        ));
        // 27°: only Tom triggers.
        home.thermometer
            .set_reading(Rational::from_integer(27), SimTime::EPOCH)
            .unwrap();
        engine.step(SimTime::from_millis(1));
        assert_eq!(
            engine.holder(&DeviceId::new("aircon-lr")),
            Some(RuleId::new(1))
        );
        // 30°: Alan triggers and outranks the holder.
        home.thermometer
            .set_reading(Rational::from_integer(30), SimTime::from_millis(2))
            .unwrap();
        let report = engine.step(SimTime::from_millis(2));
        let alan = report
            .firings
            .iter()
            .find(|f| f.rule == RuleId::new(2))
            .unwrap();
        assert_eq!(alan.outcome, FiringOutcome::Replaced(RuleId::new(1)));
        assert_eq!(
            engine.holder(&DeviceId::new("aircon-lr")),
            Some(RuleId::new(2))
        );
    }

    #[test]
    fn holder_with_priority_suppresses_newcomer() {
        let (mut engine, home) = setup();
        engine.add_rule(hot_rule("tom", 1, 26, 25)).unwrap();
        engine.add_rule(hot_rule("alan", 2, 29, 24)).unwrap();
        // Tom outranks Alan here.
        engine.add_priority(PriorityOrder::new(
            DeviceId::new("aircon-lr"),
            vec![RuleId::new(1), RuleId::new(2)],
        ));
        home.thermometer
            .set_reading(Rational::from_integer(27), SimTime::EPOCH)
            .unwrap();
        engine.step(SimTime::from_millis(1));
        home.thermometer
            .set_reading(Rational::from_integer(30), SimTime::from_millis(2))
            .unwrap();
        let report = engine.step(SimTime::from_millis(2));
        let alan = report
            .firings
            .iter()
            .find(|f| f.rule == RuleId::new(2))
            .unwrap();
        assert_eq!(alan.outcome, FiringOutcome::SuppressedBy(RuleId::new(1)));
        assert_eq!(
            home.aircon.query("setpoint").unwrap(),
            Value::Number(Quantity::from_integer(25, Unit::Celsius))
        );
    }

    #[test]
    fn presence_event_rule_via_upnp_path() {
        let (mut engine, home) = setup();
        let cond = Condition::Atom(Atom::Presence(PresenceAtom::person_at(
            "tom",
            "living room",
        )));
        let rule = Rule::builder(PersonId::new("tom"))
            .condition(cond)
            .action(
                ActionSpec::new(DeviceId::new("stereo-lr"), Verb::Play)
                    .with_setting("content", Value::from("jazz music")),
            )
            .build(RuleId::new(1))
            .unwrap();
        engine.add_rule(rule).unwrap();

        home.living_presence
            .person_entered(&PersonId::new("tom"), SimTime::EPOCH);
        let report = engine.step(SimTime::from_millis(1));
        assert_eq!(report.dispatched().len(), 1);
        assert_eq!(home.stereo.query("playing").unwrap(), Value::Bool(true));
        assert_eq!(
            home.stereo.query("content").unwrap(),
            Value::from("jazz music")
        );
    }

    #[test]
    fn broadcast_event_rule() {
        let (mut engine, home) = setup();
        let cond = Condition::Atom(Atom::Event(EventAtom::new("tv-guide", "baseball game")));
        let rule = Rule::builder(PersonId::new("alan"))
            .condition(cond)
            .action(ActionSpec::new(DeviceId::new("tv-lr"), Verb::TurnOn))
            .build(RuleId::new(1))
            .unwrap();
        engine.add_rule(rule).unwrap();
        home.tv_guide.announce("Baseball Game", SimTime::EPOCH);
        let report = engine.step(SimTime::from_millis(1));
        assert_eq!(report.dispatched().len(), 1);
        assert_eq!(home.tv.query("power").unwrap(), Value::Bool(true));
    }

    #[test]
    fn until_clause_releases_with_inverse_action() {
        let (mut engine, home) = setup();
        // Turn on the hall light when someone arrives, until 22:00.
        let cond = Condition::Atom(Atom::Event(EventAtom::new("person", "returns home")));
        let until = Condition::Atom(Atom::Time(cadel_types::TimeWindow::new(
            cadel_types::TimeOfDay::hm(22, 0).unwrap(),
            cadel_types::TimeOfDay::MIDNIGHT,
        )));
        let rule = Rule::builder(PersonId::new("tom"))
            .condition(cond)
            .action(ActionSpec::new(DeviceId::new("light-hall"), Verb::TurnOn))
            .until(until)
            .build(RuleId::new(1))
            .unwrap();
        engine.add_rule(rule).unwrap();

        // Arrive at 21:00.
        let t_arrive = SimTime::EPOCH + SimDuration::from_hours(21);
        home.hall_presence
            .announce_arrival(&PersonId::new("tom"), "returns home", t_arrive);
        let report = engine.step(t_arrive);
        assert_eq!(report.dispatched().len(), 1);
        assert_eq!(home.hall_light.query("power").unwrap(), Value::Bool(true));

        // At 22:05 the until window opens: the light is released (turned
        // off via the inverse verb).
        let t_release = SimTime::EPOCH + SimDuration::from_hours(22) + SimDuration::from_minutes(5);
        let report = engine.step(t_release);
        assert_eq!(
            report.releases,
            vec![(RuleId::new(1), DeviceId::new("light-hall"))]
        );
        assert_eq!(home.hall_light.query("power").unwrap(), Value::Bool(false));
        assert_eq!(engine.holder(&DeviceId::new("light-hall")), None);
    }

    #[test]
    fn trigger_index_and_full_scan_agree() {
        let (mut engine_a, home_a) = setup();
        let (mut engine_b, home_b) = setup();
        engine_b.set_use_trigger_index(false);
        for engine in [&mut engine_a, &mut engine_b] {
            engine.add_rule(hot_rule("tom", 1, 26, 25)).unwrap();
            engine.add_rule(hot_rule("alan", 2, 25, 24)).unwrap();
            engine.add_priority(PriorityOrder::new(
                DeviceId::new("aircon-lr"),
                vec![RuleId::new(2), RuleId::new(1)],
            ));
        }
        for (home, t) in [(&home_a, 1u64), (&home_b, 1u64)] {
            home.thermometer
                .set_reading(Rational::from_integer(28), SimTime::from_millis(t))
                .unwrap();
        }
        let ra = engine_a.step(SimTime::from_millis(2));
        let rb = engine_b.step(SimTime::from_millis(2));
        assert_eq!(ra, rb);
    }

    #[test]
    fn disabled_rules_do_not_fire() {
        let (mut engine, home) = setup();
        let rule = hot_rule("tom", 1, 26, 25).with_enabled(false);
        engine.add_rule(rule).unwrap();
        home.thermometer
            .set_reading(Rational::from_integer(30), SimTime::EPOCH)
            .unwrap();
        let report = engine.step(SimTime::from_millis(1));
        assert!(report.firings.is_empty());
    }

    #[test]
    fn remove_rule_stops_it() {
        let (mut engine, home) = setup();
        engine.add_rule(hot_rule("tom", 1, 26, 25)).unwrap();
        engine.remove_rule(RuleId::new(1)).unwrap();
        home.thermometer
            .set_reading(Rational::from_integer(30), SimTime::EPOCH)
            .unwrap();
        assert!(engine.step(SimTime::from_millis(1)).firings.is_empty());
        assert!(engine.remove_rule(RuleId::new(1)).is_err());
    }

    #[test]
    fn firing_and_report_display_are_readable() {
        let report = StepReport {
            firings: vec![
                Firing {
                    rule: RuleId::new(1),
                    device: DeviceId::new("aircon-lr"),
                    outcome: FiringOutcome::Dispatched,
                },
                Firing {
                    rule: RuleId::new(2),
                    device: DeviceId::new("aircon-lr"),
                    outcome: FiringOutcome::SuppressedBy(RuleId::new(1)),
                },
            ],
            releases: vec![(RuleId::new(3), DeviceId::new("light-hall"))],
        };
        assert_eq!(
            report.to_string(),
            "rule#1 -> aircon-lr: dispatched; \
             rule#2 -> aircon-lr: suppressed by rule#1; \
             rule#3 released light-hall"
        );
        assert_eq!(StepReport::default().to_string(), "idle");
        assert_eq!(
            FiringOutcome::Replaced(RuleId::new(9)).to_string(),
            "replaced rule#9"
        );
    }

    #[test]
    fn failed_dispatch_is_reported() {
        let (mut engine, home) = setup();
        // A rule whose action the device rejects (out-of-range setpoint).
        let rule = Rule::builder(PersonId::new("tom"))
            .condition(Condition::Atom(Atom::Event(EventAtom::new(
                "tv-guide", "x",
            ))))
            .action(
                ActionSpec::new(DeviceId::new("aircon-lr"), Verb::TurnOn)
                    .with_setting("temperature", Quantity::from_integer(99, Unit::Celsius)),
            )
            .build(RuleId::new(1))
            .unwrap();
        engine.add_rule(rule).unwrap();
        home.tv_guide.announce("x", SimTime::EPOCH);
        let report = engine.step(SimTime::from_millis(1));
        assert!(matches!(
            report.firings[0].outcome,
            FiringOutcome::Failed(_)
        ));
        assert_eq!(engine.holder(&DeviceId::new("aircon-lr")), None);
        // A validation error is final: nothing queued, no breaker hit.
        assert_eq!(engine.resilience().queue_len(), 0);
        assert_eq!(
            engine
                .resilience()
                .breaker_state(&DeviceId::new("aircon-lr")),
            BreakerState::Closed
        );
    }

    #[test]
    fn transient_fault_retries_then_recovers_through_the_dlq() {
        let aircon = DeviceId::new("aircon-lr");
        let plan = FaultPlan::new().fail_between(SimTime::EPOCH, mins(10));
        let (mut engine, home) = faulty_setup("aircon-lr", plan);
        engine.add_rule(hot_rule("tom", 1, 26, 25)).unwrap();
        home.thermometer
            .set_reading(Rational::from_integer(28), mins(1))
            .unwrap();

        // The first dispatch hits the fault window: reported as a
        // retryable failure, nothing holds the device, one retry queued.
        let report = engine.step(mins(1));
        assert!(matches!(
            report.firings[0].outcome,
            FiringOutcome::Failed(ref e) if e.is_retryable()
        ));
        assert_eq!(engine.holder(&aircon), None);
        assert_eq!(engine.resilience().queued_for(&aircon), 1);

        // Stepping through the window: retries exhaust into the DLQ (the
        // breaker trips along the way), then the post-recovery probe
        // resurrects the dead letter and the action finally lands.
        let mut recovered_at = None;
        for m in 2..=25 {
            let report = engine.step(mins(m));
            if report.dispatched().len() == 1 {
                recovered_at = Some(m);
                break;
            }
        }
        let recovered_at = recovered_at.expect("retry or DLQ replay eventually dispatches");
        assert!(recovered_at >= 10, "dispatched inside the fault window");
        assert_eq!(engine.holder(&aircon), Some(RuleId::new(1)));
        assert_eq!(home.aircon.query("power").unwrap(), Value::Bool(true));
        assert!(engine.resilience().dead_letters().is_empty());
        assert_eq!(engine.resilience().queue_len(), 0);
        assert_eq!(
            engine.resilience().breaker_state(&aircon),
            BreakerState::Closed
        );
    }

    #[test]
    fn open_breaker_defers_new_firings_once_per_stretch() {
        let aircon = DeviceId::new("aircon-lr");
        let plan = FaultPlan::new().fail_from(SimTime::EPOCH);
        let (mut engine, home) = faulty_setup("aircon-lr", plan);
        // A long cooldown keeps the breaker open (no half-open probe)
        // for the whole test window.
        engine.set_resilience_config(ResilienceConfig {
            cooldown: SimDuration::from_minutes(30),
            ..ResilienceConfig::default()
        });
        engine.add_rule(hot_rule("tom", 1, 26, 25)).unwrap();
        home.thermometer
            .set_reading(Rational::from_integer(28), mins(1))
            .unwrap();
        for m in 1..=6 {
            engine.step(mins(m));
        }
        assert_eq!(
            engine.resilience().breaker_state(&aircon),
            BreakerState::Open
        );

        // Rule 1's condition lapses, taking it out of contention.
        home.thermometer
            .set_reading(Rational::from_integer(20), mins(6))
            .unwrap();
        engine.step(mins(6));

        // A fresh edge on a second rule targeting the dark device is
        // deferred, not failed — and reported only once.
        let rule2 = Rule::builder(PersonId::new("alan"))
            .condition(Condition::Atom(Atom::Event(EventAtom::new(
                "tv-guide", "x",
            ))))
            .action(ActionSpec::new(aircon.clone(), Verb::TurnOn))
            .build(RuleId::new(2))
            .unwrap();
        engine.add_rule(rule2).unwrap();
        home.tv_guide.announce("x", mins(7));
        let report = engine.step(mins(7));
        assert_eq!(report.firings.len(), 1);
        assert_eq!(report.firings[0].outcome, FiringOutcome::Deferred);
        assert_eq!(engine.holder(&aircon), None);
        let report = engine.step(mins(8));
        assert!(
            report.firings.is_empty(),
            "continuous deferral reported again: {report}"
        );
        assert_eq!(engine.holder(&aircon), None);
    }

    #[test]
    fn failed_release_is_reported_and_retried() {
        let hall = DeviceId::new("light-hall");
        let t = |h: u64, m: u64| {
            SimTime::EPOCH + SimDuration::from_hours(h) + SimDuration::from_minutes(m)
        };
        // The hall light fails across the 22:00 release window.
        let plan = FaultPlan::new().fail_between(t(22, 4), t(22, 10));
        let (mut engine, home) = faulty_setup("light-hall", plan);
        let cond = Condition::Atom(Atom::Event(EventAtom::new("person", "returns home")));
        let until = Condition::Atom(Atom::Time(cadel_types::TimeWindow::new(
            cadel_types::TimeOfDay::hm(22, 0).unwrap(),
            cadel_types::TimeOfDay::MIDNIGHT,
        )));
        let rule = Rule::builder(PersonId::new("tom"))
            .condition(cond)
            .action(ActionSpec::new(hall.clone(), Verb::TurnOn))
            .until(until)
            .build(RuleId::new(1))
            .unwrap();
        engine.add_rule(rule).unwrap();

        let t_arrive = t(21, 0);
        home.hall_presence
            .announce_arrival(&PersonId::new("tom"), "returns home", t_arrive);
        engine.step(t_arrive);
        assert_eq!(home.hall_light.query("power").unwrap(), Value::Bool(true));

        // 22:05 — the until clause releases, but the inverse action hits
        // the fault window: the device is freed for arbitration, the
        // failure is recorded, and the turn-off is queued for retry.
        let report = engine.step(t(22, 5));
        assert_eq!(report.releases, vec![(RuleId::new(1), hall.clone())]);
        assert_eq!(engine.holder(&hall), None);
        assert_eq!(home.hall_light.query("power").unwrap(), Value::Bool(true));
        assert_eq!(engine.resilience().queued_for(&hall), 1);

        // The queued release retry lands after the fault clears: the
        // light does not stay stuck on.
        for m in 6..=40 {
            engine.step(t(22, m));
        }
        assert_eq!(home.hall_light.query("power").unwrap(), Value::Bool(false));
        assert_eq!(engine.resilience().queue_len(), 0);
    }

    #[test]
    fn seeded_fault_runs_are_deterministic() {
        let run = || {
            let plan = FaultPlan::random_transient(
                42,
                SimTime::EPOCH,
                mins(60),
                SimDuration::from_minutes(1),
                300,
            );
            let (mut engine, home) = faulty_setup("aircon-lr", plan);
            engine.add_rule(hot_rule("tom", 1, 26, 25)).unwrap();
            let mut reports = Vec::new();
            for m in 0..60 {
                // Oscillate the temperature to keep producing fresh edges.
                let temp = if m % 4 < 2 { 30 } else { 20 };
                home.thermometer
                    .set_reading(Rational::from_integer(temp), mins(m))
                    .unwrap();
                reports.push(engine.step(mins(m)));
            }
            reports
        };
        let first = run();
        assert_eq!(first, run(), "same seed and plan must replay identically");
        assert!(first
            .iter()
            .flat_map(|r| &r.firings)
            .any(|f| matches!(f.outcome, FiringOutcome::Dispatched)));
    }

    #[test]
    fn staleness_verdicts_agree_between_compiled_and_ast_modes() {
        for mode in [
            FreshnessMode::FailClosed,
            FreshnessMode::FailOpen,
            FreshnessMode::HoldLastValue,
        ] {
            let (mut compiled, home_a) = setup();
            let (mut ast, home_b) = setup();
            ast.set_use_compiled(false);
            for engine in [&mut compiled, &mut ast] {
                engine.add_rule(hot_rule("tom", 1, 26, 25)).unwrap();
                engine
                    .context_mut()
                    .set_freshness_policy(FreshnessPolicy::new(
                        mode,
                        SimDuration::from_minutes(10),
                    ));
            }
            for home in [&home_a, &home_b] {
                home.thermometer
                    .set_reading(Rational::from_integer(28), SimTime::EPOCH)
                    .unwrap();
            }
            let mut reports_compiled = Vec::new();
            let mut reports_ast = Vec::new();
            for m in [1u64, 5, 11, 20, 30] {
                reports_compiled.push(compiled.step(mins(m)));
                reports_ast.push(ast.step(mins(m)));
            }
            assert_eq!(reports_compiled, reports_ast, "mode {mode}");
        }
    }

    /// A reading whose age is *exactly* `max_age` is still fresh — the
    /// staleness predicate is `age > max_age`, not `>=` — and every mode
    /// agrees, in both the compiled-IR and AST paths. One millisecond
    /// later the reading is stale, and the modes diverge on the next
    /// condition edge: only `FailClosed` drops the condition to false,
    /// so only it re-fires when a fresh hot reading arrives.
    #[test]
    fn freshness_boundary_age_equal_to_max_age_is_fresh() {
        for mode in [
            FreshnessMode::FailClosed,
            FreshnessMode::FailOpen,
            FreshnessMode::HoldLastValue,
        ] {
            let (mut compiled, home_a) = setup();
            let (mut ast, home_b) = setup();
            ast.set_use_compiled(false);
            for engine in [&mut compiled, &mut ast] {
                engine.add_rule(hot_rule("tom", 1, 26, 25)).unwrap();
                engine
                    .context_mut()
                    .set_freshness_policy(FreshnessPolicy::new(
                        mode,
                        SimDuration::from_minutes(10),
                    ));
            }
            for home in [&home_a, &home_b] {
                home.thermometer
                    .set_reading(Rational::from_integer(28), SimTime::EPOCH)
                    .unwrap();
            }

            // First evaluation at exactly max_age: fresh on the nose, so
            // the rule fires in every mode.
            let at_boundary = mins(10);
            let rc = compiled.step(at_boundary);
            let ra = ast.step(at_boundary);
            assert_eq!(rc, ra, "mode {mode}: boundary step diverges");
            assert_eq!(
                rc.firings.len(),
                1,
                "mode {mode}: age == max_age must count as fresh"
            );

            // One millisecond past the boundary the reading is stale.
            // Sensor changes keep their *own* timestamp for staleness, so
            // a still-hot reading stamped back at the epoch forces a
            // re-evaluation over stale data. FailClosed drops the
            // condition to false; a fresh hot reading then produces a
            // new rising edge and a re-fire. FailOpen and HoldLastValue
            // both keep the condition true (stale-true and held-true
            // respectively), so no edge.
            let past = at_boundary + SimDuration::from_millis(1);
            for home in [&home_a, &home_b] {
                home.thermometer
                    .set_reading(Rational::from_integer(27), SimTime::EPOCH)
                    .unwrap();
            }
            let rc = compiled.step(past);
            let ra = ast.step(past);
            assert_eq!(rc, ra, "mode {mode}: past-boundary step diverges");
            assert!(rc.firings.is_empty(), "mode {mode}: stale data never fires");

            let refresh = past + SimDuration::from_millis(1);
            for home in [&home_a, &home_b] {
                home.thermometer
                    .set_reading(Rational::from_integer(28), refresh)
                    .unwrap();
            }
            let rc = compiled.step(refresh);
            let ra = ast.step(refresh);
            assert_eq!(rc, ra, "mode {mode}: refresh step diverges");
            let expected = usize::from(mode == FreshnessMode::FailClosed);
            assert_eq!(rc.firings.len(), expected, "mode {mode}: re-fire count");
        }
    }

    /// After a sensor device drops out permanently, `HoldLastValue`
    /// keeps evaluating the last reading indefinitely: the rule's
    /// condition never goes false, the device hold survives, and the
    /// compiled-IR and AST paths agree at every step. `FailClosed` over
    /// the same dropout lets the condition lapse once the reading ages
    /// out.
    #[test]
    fn hold_last_value_survives_permanent_device_dropout() {
        let plan = FaultPlan::new().fail_from(mins(2));
        let (mut compiled, home_a) = faulty_setup("thermo-lr", plan.clone());
        let (mut ast, home_b) = faulty_setup("thermo-lr", plan);
        ast.set_use_compiled(false);
        for engine in [&mut compiled, &mut ast] {
            engine.add_rule(hot_rule("tom", 1, 26, 25)).unwrap();
            engine
                .context_mut()
                .set_freshness_policy(FreshnessPolicy::new(
                    FreshnessMode::HoldLastValue,
                    SimDuration::from_minutes(10),
                ));
        }
        // Last reading before the device dies at minute 2.
        for home in [&home_a, &home_b] {
            home.thermometer
                .set_reading(Rational::from_integer(28), mins(1))
                .unwrap();
        }
        let rc = compiled.step(mins(1));
        let ra = ast.step(mins(1));
        assert_eq!(rc, ra);
        assert_eq!(rc.firings.len(), 1);

        // Hours past the dropout: the reading is long stale but held, so
        // the condition stays true — no release, no re-fire, the hold
        // survives.
        for m in [20u64, 60, 180, 600] {
            let rc = compiled.step(mins(m));
            let ra = ast.step(mins(m));
            assert_eq!(rc, ra, "dropout step at minute {m} diverges");
            assert!(rc.firings.is_empty(), "minute {m}: held value re-fired");
            assert!(rc.releases.is_empty(), "minute {m}: held value released");
        }
        for engine in [&compiled, &ast] {
            assert_eq!(
                engine.holder(&DeviceId::new("aircon-lr")),
                Some(RuleId::new(1)),
                "hold must survive the dropout"
            );
        }
    }
}
