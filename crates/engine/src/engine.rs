//! The rule execution module (paper §4.1): event ingestion, condition
//! evaluation, runtime conflict arbitration and device dispatch.

use crate::context::ContextStore;
use crate::error::EngineError;
use crate::eval::{Evaluator, HeldTracker};
use crate::index::TriggerIndex;
use cadel_conflict::{PriorityOrder, PriorityStore, Resolution};
use cadel_obs::{Event as ObsEvent, LazyCounter, LazyGauge, LazyHistogram, Level, Span, Stopwatch};
use cadel_rule::{ActionSpec, Rule, RuleDb, Verb};
use cadel_types::{DeviceId, RuleId, SimTime, Value};
use cadel_upnp::{ControlPoint, Subscription, UpnpError};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Engine steps executed.
static STEPS: LazyCounter = LazyCounter::new("engine_steps_total");
/// Device property-change events ingested across all steps.
static EVENTS_INGESTED: LazyCounter = LazyCounter::new("engine_events_ingested_total");
/// Rule conditions evaluated across all steps.
static RULES_EVALUATED: LazyCounter = LazyCounter::new("engine_rules_evaluated_total");
/// Evaluations served by a compiled program.
static EVAL_COMPILED: LazyCounter = LazyCounter::new("engine_eval_compiled_total");
/// Evaluations interpreted from the AST (compiled mode off, or fallback).
static EVAL_AST: LazyCounter = LazyCounter::new("engine_eval_ast_total");
/// Evaluations that *wanted* a compiled program but fell back to the AST
/// because compilation had failed for that rule.
static AST_FALLBACKS: LazyCounter = LazyCounter::new("engine_ast_fallback_total");
/// Firings dispatched to a device (fresh acquisition).
static FIRINGS_DISPATCHED: LazyCounter = LazyCounter::new("engine_firings_dispatched_total");
/// Firings suppressed by a higher-priority rule.
static FIRINGS_SUPPRESSED: LazyCounter = LazyCounter::new("engine_firings_suppressed_total");
/// Firings that displaced a previous holder.
static FIRINGS_REPLACED: LazyCounter = LazyCounter::new("engine_firings_replaced_total");
/// Firings whose dispatch failed at the device.
static FIRINGS_FAILED: LazyCounter = LazyCounter::new("engine_firings_failed_total");
/// `until`-clause releases performed.
static RELEASES: LazyCounter = LazyCounter::new("engine_releases_total");
/// held-for timer states currently tracked.
static HELDFOR_TRACKED: LazyGauge = LazyGauge::new("engine_heldfor_tracked");
/// Wall-clock latency of one engine step.
static STEP_NS: LazyHistogram = LazyHistogram::new("engine_step_duration_ns");

/// The event channel on which the engine announces suppressed firings, so
/// fallback rules ("if I cannot use the TV, record the game instead") can
/// react. Event name format: `"<device-udn>:<loser-owner>"`.
pub const CONFLICT_CHANNEL: &str = "conflict";

/// What happened to one rule firing during a step.
#[derive(Clone, Debug, PartialEq)]
pub enum FiringOutcome {
    /// The action was sent to the device.
    Dispatched,
    /// A higher-priority rule holds the device; this firing was dropped
    /// and a [`CONFLICT_CHANNEL`] event was raised.
    SuppressedBy(RuleId),
    /// The action was sent, displacing the previous holder.
    Replaced(RuleId),
    /// Dispatch failed at the device.
    Failed(UpnpError),
}

impl fmt::Display for FiringOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FiringOutcome::Dispatched => write!(f, "dispatched"),
            FiringOutcome::SuppressedBy(winner) => write!(f, "suppressed by {winner}"),
            FiringOutcome::Replaced(old) => write!(f, "replaced {old}"),
            FiringOutcome::Failed(err) => write!(f, "failed: {err}"),
        }
    }
}

/// A rule firing recorded in a step report.
#[derive(Clone, Debug, PartialEq)]
pub struct Firing {
    /// The rule that fired.
    pub rule: RuleId,
    /// The device it targeted.
    pub device: DeviceId,
    /// What happened.
    pub outcome: FiringOutcome,
}

impl fmt::Display for Firing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}: {}", self.rule, self.device, self.outcome)
    }
}

/// The observable result of one engine step.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StepReport {
    /// Firings attempted this step, in device order.
    pub firings: Vec<Firing>,
    /// Rules whose `until` condition released their action, with the
    /// device they released.
    pub releases: Vec<(RuleId, DeviceId)>,
}

impl StepReport {
    /// Whether nothing happened.
    pub fn is_empty(&self) -> bool {
        self.firings.is_empty() && self.releases.is_empty()
    }

    /// The firings that actually reached a device.
    pub fn dispatched(&self) -> Vec<&Firing> {
        self.firings
            .iter()
            .filter(|f| {
                matches!(
                    f.outcome,
                    FiringOutcome::Dispatched | FiringOutcome::Replaced(_)
                )
            })
            .collect()
    }
}

impl fmt::Display for StepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "idle");
        }
        let mut sep = "";
        for firing in &self.firings {
            write!(f, "{sep}{firing}")?;
            sep = "; ";
        }
        for (rule, device) in &self.releases {
            write!(f, "{sep}{rule} released {device}")?;
            sep = "; ";
        }
        Ok(())
    }
}

struct ActiveHolder {
    rule: RuleId,
}

/// The rule execution engine.
///
/// Owns the rule database, the priority store, the context store and the
/// UPnP control point. The driver (home server or simulator) advances it
/// by calling [`Engine::step`] with the current simulated time; each step
/// drains pending UPnP events, re-evaluates the affected rules, arbitrates
/// simultaneous firings per device by priority, and dispatches winning
/// actions.
pub struct Engine {
    control: ControlPoint,
    subscription: Subscription,
    rules: RuleDb,
    priorities: PriorityStore,
    ctx: ContextStore,
    held: HeldTracker,
    index: TriggerIndex,
    use_trigger_index: bool,
    use_compiled: bool,
    last_state: HashMap<RuleId, bool>,
    holders: HashMap<DeviceId, ActiveHolder>,
    /// Rules whose condition currently holds, per target device. Losers
    /// stay in here and re-contend whenever arbitration runs again — so a
    /// context change (Alan arrives) can promote a previously suppressed
    /// rule without a fresh condition edge.
    contenders: HashMap<DeviceId, BTreeSet<RuleId>>,
    /// Rules released by their `until` clause; excluded from contention
    /// until their condition goes false (prevents release/re-fire flap).
    latched: BTreeSet<RuleId>,
    /// Rules whose current suppression was already announced on the
    /// conflict channel (avoids re-raising every step).
    suppress_noted: BTreeSet<RuleId>,
    /// Rules whose compiled-program fallback was already reported as a
    /// structured event (the counter still ticks on every occurrence).
    fallback_noted: BTreeSet<RuleId>,
}

impl Engine {
    /// Creates an engine over a control point. Device locations are read
    /// from the registry so presence readers map to their places.
    pub fn new(control: ControlPoint) -> Engine {
        let subscription = control.subscribe_all();
        let mut ctx = ContextStore::default();
        for description in control.registry().descriptions() {
            if let Some(place) = description.location() {
                ctx.set_device_place(description.udn().clone(), place.clone());
            }
        }
        let rules = RuleDb::new();
        ctx.attach_interner(rules.interner().clone());
        Engine {
            control,
            subscription,
            rules,
            priorities: PriorityStore::new(),
            ctx,
            held: HeldTracker::new(),
            index: TriggerIndex::new(),
            use_trigger_index: true,
            use_compiled: true,
            last_state: HashMap::new(),
            holders: HashMap::new(),
            contenders: HashMap::new(),
            latched: BTreeSet::new(),
            suppress_noted: BTreeSet::new(),
            fallback_noted: BTreeSet::new(),
        }
    }

    /// Disables the sensor-trigger index: every step re-evaluates every
    /// rule. Exists for the A3 ablation benchmark.
    pub fn set_use_trigger_index(&mut self, enabled: bool) {
        self.use_trigger_index = enabled;
    }

    /// Disables compiled-program evaluation: conditions are interpreted
    /// from their ASTs instead. Exists for parity testing and the compiled
    /// vs. interpreted benchmark; both modes produce identical
    /// [`StepReport`]s.
    pub fn set_use_compiled(&mut self, enabled: bool) {
        self.use_compiled = enabled;
    }

    /// The control point.
    pub fn control(&self) -> &ControlPoint {
        &self.control
    }

    /// The rule database (shared with the registration workflow).
    pub fn rules(&self) -> &RuleDb {
        &self.rules
    }

    /// Mutable access to the rule database. Prefer [`Engine::add_rule`] /
    /// [`Engine::remove_rule`], which maintain the trigger index.
    pub fn rules_mut(&mut self) -> &mut RuleDb {
        &mut self.rules
    }

    /// The priority store.
    pub fn priorities(&self) -> &PriorityStore {
        &self.priorities
    }

    /// Registers a priority order.
    pub fn add_priority(&mut self, order: PriorityOrder) -> usize {
        self.priorities.add_order(order)
    }

    /// The context store.
    pub fn context(&self) -> &ContextStore {
        &self.ctx
    }

    /// Mutable context access (scenario scripting: direct presence or
    /// event injection).
    pub fn context_mut(&mut self) -> &mut ContextStore {
        &mut self.ctx
    }

    /// Adds a compiled rule and indexes its triggers.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Rule`] on id collisions.
    pub fn add_rule(&mut self, rule: Rule) -> Result<RuleId, EngineError> {
        let id = rule.id();
        self.index.add_rule(&rule);
        self.rules.insert(rule)?;
        Ok(id)
    }

    /// Removes a rule and de-indexes it.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Rule`] for unknown ids.
    pub fn remove_rule(&mut self, id: RuleId) -> Result<(), EngineError> {
        let rule = self.rules.remove(id)?;
        self.index.remove_rule(&rule);
        self.last_state.remove(&id);
        self.holders.retain(|_, h| h.rule != id);
        self.latched.remove(&id);
        self.suppress_noted.remove(&id);
        self.fallback_noted.remove(&id);
        for set in self.contenders.values_mut() {
            set.remove(&id);
        }
        Ok(())
    }

    /// Drains device events, advances the clock, re-evaluates rules,
    /// arbitrates conflicts and dispatches actions.
    pub fn step(&mut self, now: SimTime) -> StepReport {
        let sw = Stopwatch::start();
        let mut span = Span::new("engine.step");
        let mut evaluated: u64 = 0;
        let mut eval_compiled: u64 = 0;
        let mut eval_ast: u64 = 0;

        // 1. Ingest events.
        let changes = self.subscription.drain();
        self.ctx.set_now(now);
        // Catch the slot boards up with names interned since the last step
        // (mutators keep them current otherwise).
        if self.use_compiled {
            self.ctx.sync_ir();
        }
        let mut affected: BTreeSet<RuleId> = BTreeSet::new();
        for change in &changes {
            self.ctx.apply_property_change(change);
            if self.use_trigger_index {
                self.index
                    .affected_by_change(change, &self.ctx, &mut affected);
            }
        }

        // 2. Candidate set.
        let candidates: Vec<RuleId> = if self.use_trigger_index {
            // Affected rules + time-sensitive rules + everything currently
            // true (for falling edges / until releases) + unevaluated.
            let mut set = affected;
            set.extend(self.index.temporal_rules());
            for (id, state) in &self.last_state {
                if *state {
                    set.insert(*id);
                }
            }
            for rule in self.rules.iter() {
                if !self.last_state.contains_key(&rule.id()) {
                    set.insert(rule.id());
                }
            }
            set.into_iter().collect()
        } else {
            self.rules.iter().map(|r| r.id()).collect()
        };

        // 3. Evaluate candidates: refresh last_state, the per-device
        //    contender sets, and collect fresh edges plus until-releases.
        let mut newly_true: BTreeSet<RuleId> = BTreeSet::new();
        let mut releases: Vec<(RuleId, DeviceId)> = Vec::new();
        // Devices whose current holder's condition just lapsed: suppressed
        // contenders must get a chance to take over.
        let mut holder_lapsed: BTreeSet<DeviceId> = BTreeSet::new();
        for id in candidates {
            // Evaluation borrows the stored rule (and its compiled
            // program) in place — no per-candidate clone.
            let Some(rule) = self.rules.get(id) else {
                continue;
            };
            if !rule.is_enabled() {
                continue;
            }
            // Borrowed, not cloned: a candidate that stays false (the
            // common case) must not pay for an owned device id.
            let device = rule.action().device();
            let program = if self.use_compiled {
                let program = self.rules.program(id);
                if program.is_none() {
                    // Wanted the compiled path, ended up interpreting: a
                    // degradation worth a counter tick per occurrence and
                    // one structured event per rule.
                    AST_FALLBACKS.inc();
                    if self.fallback_noted.insert(id) && cadel_obs::enabled() {
                        cadel_obs::emit(
                            ObsEvent::new("engine.ast_fallback", Level::Warn)
                                .with_field("rule", id.raw())
                                .with_field("owner", rule.owner().as_str())
                                .with_field("device", device.as_str()),
                        );
                    }
                }
                program
            } else {
                None
            };
            evaluated += 1;
            let now_true = match program {
                Some(program) => {
                    eval_compiled += 1;
                    cadel_ir::condition_holds(program.as_ref(), &self.ctx, &mut self.held)
                }
                None => {
                    eval_ast += 1;
                    Evaluator::new(&self.ctx, &mut self.held).condition_holds(rule.condition())
                }
            };
            let prev = self.last_state.insert(id, now_true).unwrap_or(false);

            // `until` releases apply to the active holder even after its
            // trigger condition has passed ("turn on … until 10 pm" turns
            // the light off at 10 pm however long ago the arrival was).
            if let Some(until) = rule.until() {
                let holder_here = self
                    .holders
                    .get(device)
                    .map(|h| h.rule == id)
                    .unwrap_or(false);
                if holder_here {
                    let until_true = match program {
                        Some(program) => {
                            cadel_ir::until_holds(program.as_ref(), &self.ctx, &mut self.held)
                                .unwrap_or(false)
                        }
                        None => Evaluator::new(&self.ctx, &mut self.held).condition_holds(until),
                    };
                    if until_true {
                        // Inlined `release`: invoke the inverse action and
                        // free the device (a method call would require
                        // `&mut self` while `rule` is borrowed).
                        if let Some(inverse) = rule.action().verb().inverse() {
                            let inverse_action = ActionSpec::new(device.clone(), inverse);
                            let _ = self.invoke_action(&inverse_action);
                        }
                        self.holders.remove(device);
                        releases.push((id, device.clone()));
                        // Latch until the condition goes false so the rule
                        // does not immediately re-acquire the device.
                        if now_true {
                            self.latched.insert(id);
                        }
                        if let Some(set) = self.contenders.get_mut(device) {
                            set.remove(&id);
                        }
                    }
                }
            }

            if !now_true {
                // A false condition clears the latch and any suppression
                // note, and leaves the contender pool.
                self.latched.remove(&id);
                self.suppress_noted.remove(&id);
                if let Some(set) = self.contenders.get_mut(device) {
                    set.remove(&id);
                }
                if self.holders.get(device).map(|h| h.rule) == Some(id) {
                    holder_lapsed.insert(device.clone());
                }
                continue;
            }
            if !prev {
                newly_true.insert(id);
            }
            if !self.latched.contains(&id) {
                // Clone the key only when this device has no contender set
                // yet.
                match self.contenders.get_mut(device) {
                    Some(set) => {
                        set.insert(id);
                    }
                    None => {
                        self.contenders.insert(device.clone(), BTreeSet::from([id]));
                    }
                }
            }
        }

        // 4. Re-arbitrate every device whose outcome could have changed:
        //    any device with a fresh edge, and any device with several
        //    live contenders (a context change alone can flip priorities).
        let mut devices: BTreeSet<DeviceId> = BTreeSet::new();
        for id in &newly_true {
            if let Some(rule) = self.rules.get(*id) {
                devices.insert(rule.action().device().clone());
            }
        }
        for (device, set) in &self.contenders {
            if set.len() >= 2 {
                devices.insert(device.clone());
            }
        }
        devices.extend(holder_lapsed);

        let mut firings = Vec::new();
        for device in devices {
            let contenders: Vec<RuleId> = self
                .contenders
                .get(&device)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default();
            if contenders.is_empty() {
                continue;
            }
            // Put the current live holder first for the unresolved
            // fallback (prefer the status quo).
            let holder = self
                .holders
                .get(&device)
                .map(|h| h.rule)
                .filter(|id| contenders.contains(id));
            let mut ordered = contenders.clone();
            if let Some(h) = holder {
                ordered.retain(|id| *id != h);
                ordered.insert(0, h);
            }

            let winner = self.arbitrate(&device, &ordered);

            // Dispatch when the winner is not already holding the device —
            // or re-assert on a fresh edge of the holder itself. A holder
            // whose condition has lapsed is not "displaced": only live
            // holders count as previous for the Replaced outcome and its
            // conflict-channel announcement.
            if holder != Some(winner) || newly_true.contains(&winner) {
                let outcome = self.dispatch(winner, holder);
                if matches!(outcome, FiringOutcome::Failed(_)) {
                    // Do not retry every step; wait for a fresh edge.
                    if let Some(set) = self.contenders.get_mut(&device) {
                        set.remove(&winner);
                    }
                    self.last_state.insert(winner, false);
                } else {
                    self.suppress_noted.remove(&winner);
                    // Announce the displaced holder's defeat so fallback
                    // rules ("record it instead") can react.
                    if let FiringOutcome::Replaced(old) = outcome {
                        self.note_suppression(&device, old);
                    }
                }
                firings.push(Firing {
                    rule: winner,
                    device: device.clone(),
                    outcome,
                });
            }

            // Report fresh losers (and announce each continuous
            // suppression once).
            for id in contenders {
                if id == winner {
                    continue;
                }
                let fresh = newly_true.contains(&id);
                let unannounced = !self.suppress_noted.contains(&id);
                if fresh || unannounced {
                    self.note_suppression(&device, id);
                }
                if fresh {
                    firings.push(Firing {
                        rule: id,
                        device: device.clone(),
                        outcome: FiringOutcome::SuppressedBy(winner),
                    });
                }
            }
        }

        STEPS.inc();
        EVENTS_INGESTED.add(changes.len() as u64);
        RULES_EVALUATED.add(evaluated);
        EVAL_COMPILED.add(eval_compiled);
        EVAL_AST.add(eval_ast);
        RELEASES.add(releases.len() as u64);
        if cadel_obs::enabled() {
            for firing in &firings {
                match firing.outcome {
                    FiringOutcome::Dispatched => FIRINGS_DISPATCHED.inc(),
                    FiringOutcome::SuppressedBy(_) => FIRINGS_SUPPRESSED.inc(),
                    FiringOutcome::Replaced(_) => FIRINGS_REPLACED.inc(),
                    FiringOutcome::Failed(_) => FIRINGS_FAILED.inc(),
                }
            }
            HELDFOR_TRACKED.set(self.held.tracked() as i64);
            span.add_field("events", changes.len() as u64);
            span.add_field("evaluated", evaluated);
            span.add_field("firings", firings.len() as u64);
            span.add_field("releases", releases.len() as u64);
        }
        STEP_NS.record(&sw);
        drop(span);

        StepReport { firings, releases }
    }

    /// Raises the conflict-channel event for a suppressed/displaced rule
    /// (once per continuous suppression).
    fn note_suppression(&mut self, device: &DeviceId, loser: RuleId) {
        if self.suppress_noted.insert(loser) {
            if let Some(rule) = self.rules.get(loser) {
                let owner = rule.owner().clone();
                self.ctx
                    .raise_event(CONFLICT_CHANNEL, &format!("{device}:{owner}"));
            }
        }
    }

    /// Picks the winning rule among simultaneous contenders on a device,
    /// consulting the context-scoped priority store; ties fall back to the
    /// current holder, then to the earliest-registered rule.
    fn arbitrate(&mut self, device: &DeviceId, contenders: &[RuleId]) -> RuleId {
        debug_assert!(!contenders.is_empty());
        let ctx = &self.ctx;
        let held = &mut self.held;
        let resolution = self.priorities.resolve(device, contenders, |condition| {
            Evaluator::new(ctx, held).condition_holds(condition)
        });
        match resolution {
            Resolution::Winner(id) => id,
            Resolution::Unresolved(mut ids) => {
                ids.sort();
                // Holder first (it is placed at the front by the caller),
                // else the earliest rule.
                self.holders
                    .get(device)
                    .map(|h| h.rule)
                    .filter(|id| contenders.contains(id))
                    .unwrap_or_else(|| ids[0])
            }
        }
    }

    fn dispatch(&mut self, id: RuleId, previous_holder: Option<RuleId>) -> FiringOutcome {
        let Some(rule) = self.rules.get(id) else {
            return FiringOutcome::Failed(UpnpError::DeviceFault("rule vanished".into()));
        };
        let action = rule.action().clone();
        match self.invoke_action(&action) {
            Ok(()) => {
                self.holders
                    .insert(action.device().clone(), ActiveHolder { rule: id });
                match previous_holder {
                    Some(old) if old != id => FiringOutcome::Replaced(old),
                    _ => FiringOutcome::Dispatched,
                }
            }
            Err(e) => FiringOutcome::Failed(e),
        }
    }

    /// Translates an [`ActionSpec`] into UPnP invocations.
    fn invoke_action(&self, action: &ActionSpec) -> Result<(), UpnpError> {
        let device = action.device();
        let at = self.ctx.now();
        match action.verb() {
            Verb::Set => {
                // "Set" applies each setting through its own SetX action.
                for setting in action.settings() {
                    let name = format!("Set{}", capitalize(setting.parameter()));
                    let args = vec![(setting.parameter().to_owned(), setting.value().clone())];
                    self.control.invoke(device, &name, &args, at)?;
                }
                Ok(())
            }
            verb => {
                let name = verb_action_name(verb);
                let args: Vec<(String, Value)> = action
                    .settings()
                    .iter()
                    .map(|s| (s.parameter().to_owned(), s.value().clone()))
                    .collect();
                self.control.invoke(device, &name, &args, at)?;
                Ok(())
            }
        }
    }

    /// The rule currently holding a device, if any.
    pub fn holder(&self, device: &DeviceId) -> Option<RuleId> {
        self.holders.get(device).map(|h| h.rule)
    }
}

fn capitalize(word: &str) -> String {
    let mut out = String::with_capacity(word.len());
    for part in word.split_whitespace() {
        let mut chars = part.chars();
        if let Some(first) = chars.next() {
            out.extend(first.to_uppercase());
            out.extend(chars);
        }
    }
    out
}

fn verb_action_name(verb: &Verb) -> String {
    match verb {
        Verb::TurnOn => "TurnOn".to_owned(),
        Verb::TurnOff => "TurnOff".to_owned(),
        Verb::Record => "Record".to_owned(),
        Verb::Play => "Play".to_owned(),
        Verb::Stop => "Stop".to_owned(),
        Verb::Lock => "Lock".to_owned(),
        Verb::Unlock => "Unlock".to_owned(),
        Verb::Dim => "Dim".to_owned(),
        Verb::Brighten => "Brighten".to_owned(),
        Verb::Show => "Show".to_owned(),
        Verb::Notify => "Notify".to_owned(),
        Verb::Set => "Set".to_owned(),
        Verb::Custom(s) => capitalize(s),
        // `Verb` is non-exhaustive: fall back to the display phrase.
        other => capitalize(other.phrase()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadel_devices::LivingRoomHome;
    use cadel_rule::{Atom, Condition, ConstraintAtom, EventAtom, PresenceAtom};
    use cadel_simplex::RelOp;
    use cadel_types::{PersonId, Quantity, Rational, SensorKey, SimDuration, Unit};
    use cadel_upnp::{Registry, VirtualDevice};

    fn setup() -> (Engine, LivingRoomHome) {
        let registry = Registry::new();
        let home = LivingRoomHome::install(&registry);
        let engine = Engine::new(ControlPoint::new(registry));
        (engine, home)
    }

    fn hot_rule(owner: &str, id: u64, threshold: i64, setpoint: i64) -> Rule {
        let cond = Condition::Atom(Atom::Constraint(ConstraintAtom::new(
            SensorKey::new(DeviceId::new("thermo-lr"), "temperature"),
            RelOp::Gt,
            Quantity::from_integer(threshold, Unit::Celsius),
        )));
        Rule::builder(PersonId::new(owner))
            .condition(cond)
            .action(
                ActionSpec::new(DeviceId::new("aircon-lr"), Verb::TurnOn).with_setting(
                    "temperature",
                    Quantity::from_integer(setpoint, Unit::Celsius),
                ),
            )
            .build(RuleId::new(id))
            .unwrap()
    }

    #[test]
    fn sensor_event_triggers_rule_and_dispatches() {
        let (mut engine, home) = setup();
        engine.add_rule(hot_rule("tom", 1, 26, 25)).unwrap();

        // Nothing yet.
        let report = engine.step(SimTime::EPOCH);
        assert!(report.firings.is_empty());

        // Temperature rises past the threshold.
        home.thermometer
            .set_reading(Rational::from_integer(28), SimTime::from_millis(1000))
            .unwrap();
        let report = engine.step(SimTime::from_millis(1000));
        assert_eq!(report.firings.len(), 1);
        assert_eq!(report.firings[0].outcome, FiringOutcome::Dispatched);
        // The aircon actually turned on with Tom's setpoint.
        assert_eq!(home.aircon.query("power").unwrap(), Value::Bool(true));
        assert_eq!(
            home.aircon.query("setpoint").unwrap(),
            Value::Number(Quantity::from_integer(25, Unit::Celsius))
        );
        assert_eq!(
            engine.holder(&DeviceId::new("aircon-lr")),
            Some(RuleId::new(1))
        );
    }

    #[test]
    fn edge_triggering_fires_once() {
        let (mut engine, home) = setup();
        engine.add_rule(hot_rule("tom", 1, 26, 25)).unwrap();
        home.thermometer
            .set_reading(Rational::from_integer(28), SimTime::EPOCH)
            .unwrap();
        let r1 = engine.step(SimTime::from_millis(1));
        assert_eq!(r1.firings.len(), 1);
        // Still hot: no re-firing.
        let r2 = engine.step(SimTime::from_millis(2));
        assert!(r2.firings.is_empty());
        // Cools below, then heats again: fires again.
        home.thermometer
            .set_reading(Rational::from_integer(24), SimTime::from_millis(3))
            .unwrap();
        engine.step(SimTime::from_millis(3));
        home.thermometer
            .set_reading(Rational::from_integer(29), SimTime::from_millis(4))
            .unwrap();
        let r3 = engine.step(SimTime::from_millis(4));
        assert_eq!(r3.firings.len(), 1);
    }

    #[test]
    fn priority_arbitrates_simultaneous_firings() {
        let (mut engine, home) = setup();
        // Tom (rule 1, 25°) and Alan (rule 2, 24°) both trigger above 26°.
        engine.add_rule(hot_rule("tom", 1, 26, 25)).unwrap();
        engine.add_rule(hot_rule("alan", 2, 25, 24)).unwrap();
        engine.add_priority(PriorityOrder::new(
            DeviceId::new("aircon-lr"),
            vec![RuleId::new(2), RuleId::new(1)],
        ));
        home.thermometer
            .set_reading(Rational::from_integer(28), SimTime::EPOCH)
            .unwrap();
        let report = engine.step(SimTime::from_millis(1));
        assert_eq!(report.firings.len(), 2);
        let alan = report
            .firings
            .iter()
            .find(|f| f.rule == RuleId::new(2))
            .unwrap();
        let tom = report
            .firings
            .iter()
            .find(|f| f.rule == RuleId::new(1))
            .unwrap();
        assert!(matches!(alan.outcome, FiringOutcome::Dispatched));
        assert_eq!(tom.outcome, FiringOutcome::SuppressedBy(RuleId::new(2)));
        // Alan's setpoint won.
        assert_eq!(
            home.aircon.query("setpoint").unwrap(),
            Value::Number(Quantity::from_integer(24, Unit::Celsius))
        );
        // The conflict event was raised for Tom's suppression.
        assert!(engine.context().event_active("conflict", "aircon-lr:tom"));
    }

    #[test]
    fn later_higher_priority_rule_replaces_holder() {
        let (mut engine, home) = setup();
        engine.add_rule(hot_rule("tom", 1, 26, 25)).unwrap();
        engine.add_rule(hot_rule("alan", 2, 29, 24)).unwrap();
        engine.add_priority(PriorityOrder::new(
            DeviceId::new("aircon-lr"),
            vec![RuleId::new(2), RuleId::new(1)],
        ));
        // 27°: only Tom triggers.
        home.thermometer
            .set_reading(Rational::from_integer(27), SimTime::EPOCH)
            .unwrap();
        engine.step(SimTime::from_millis(1));
        assert_eq!(
            engine.holder(&DeviceId::new("aircon-lr")),
            Some(RuleId::new(1))
        );
        // 30°: Alan triggers and outranks the holder.
        home.thermometer
            .set_reading(Rational::from_integer(30), SimTime::from_millis(2))
            .unwrap();
        let report = engine.step(SimTime::from_millis(2));
        let alan = report
            .firings
            .iter()
            .find(|f| f.rule == RuleId::new(2))
            .unwrap();
        assert_eq!(alan.outcome, FiringOutcome::Replaced(RuleId::new(1)));
        assert_eq!(
            engine.holder(&DeviceId::new("aircon-lr")),
            Some(RuleId::new(2))
        );
    }

    #[test]
    fn holder_with_priority_suppresses_newcomer() {
        let (mut engine, home) = setup();
        engine.add_rule(hot_rule("tom", 1, 26, 25)).unwrap();
        engine.add_rule(hot_rule("alan", 2, 29, 24)).unwrap();
        // Tom outranks Alan here.
        engine.add_priority(PriorityOrder::new(
            DeviceId::new("aircon-lr"),
            vec![RuleId::new(1), RuleId::new(2)],
        ));
        home.thermometer
            .set_reading(Rational::from_integer(27), SimTime::EPOCH)
            .unwrap();
        engine.step(SimTime::from_millis(1));
        home.thermometer
            .set_reading(Rational::from_integer(30), SimTime::from_millis(2))
            .unwrap();
        let report = engine.step(SimTime::from_millis(2));
        let alan = report
            .firings
            .iter()
            .find(|f| f.rule == RuleId::new(2))
            .unwrap();
        assert_eq!(alan.outcome, FiringOutcome::SuppressedBy(RuleId::new(1)));
        assert_eq!(
            home.aircon.query("setpoint").unwrap(),
            Value::Number(Quantity::from_integer(25, Unit::Celsius))
        );
    }

    #[test]
    fn presence_event_rule_via_upnp_path() {
        let (mut engine, home) = setup();
        let cond = Condition::Atom(Atom::Presence(PresenceAtom::person_at(
            "tom",
            "living room",
        )));
        let rule = Rule::builder(PersonId::new("tom"))
            .condition(cond)
            .action(
                ActionSpec::new(DeviceId::new("stereo-lr"), Verb::Play)
                    .with_setting("content", Value::from("jazz music")),
            )
            .build(RuleId::new(1))
            .unwrap();
        engine.add_rule(rule).unwrap();

        home.living_presence
            .person_entered(&PersonId::new("tom"), SimTime::EPOCH);
        let report = engine.step(SimTime::from_millis(1));
        assert_eq!(report.dispatched().len(), 1);
        assert_eq!(home.stereo.query("playing").unwrap(), Value::Bool(true));
        assert_eq!(
            home.stereo.query("content").unwrap(),
            Value::from("jazz music")
        );
    }

    #[test]
    fn broadcast_event_rule() {
        let (mut engine, home) = setup();
        let cond = Condition::Atom(Atom::Event(EventAtom::new("tv-guide", "baseball game")));
        let rule = Rule::builder(PersonId::new("alan"))
            .condition(cond)
            .action(ActionSpec::new(DeviceId::new("tv-lr"), Verb::TurnOn))
            .build(RuleId::new(1))
            .unwrap();
        engine.add_rule(rule).unwrap();
        home.tv_guide.announce("Baseball Game", SimTime::EPOCH);
        let report = engine.step(SimTime::from_millis(1));
        assert_eq!(report.dispatched().len(), 1);
        assert_eq!(home.tv.query("power").unwrap(), Value::Bool(true));
    }

    #[test]
    fn until_clause_releases_with_inverse_action() {
        let (mut engine, home) = setup();
        // Turn on the hall light when someone arrives, until 22:00.
        let cond = Condition::Atom(Atom::Event(EventAtom::new("person", "returns home")));
        let until = Condition::Atom(Atom::Time(cadel_types::TimeWindow::new(
            cadel_types::TimeOfDay::hm(22, 0).unwrap(),
            cadel_types::TimeOfDay::MIDNIGHT,
        )));
        let rule = Rule::builder(PersonId::new("tom"))
            .condition(cond)
            .action(ActionSpec::new(DeviceId::new("light-hall"), Verb::TurnOn))
            .until(until)
            .build(RuleId::new(1))
            .unwrap();
        engine.add_rule(rule).unwrap();

        // Arrive at 21:00.
        let t_arrive = SimTime::EPOCH + SimDuration::from_hours(21);
        home.hall_presence
            .announce_arrival(&PersonId::new("tom"), "returns home", t_arrive);
        let report = engine.step(t_arrive);
        assert_eq!(report.dispatched().len(), 1);
        assert_eq!(home.hall_light.query("power").unwrap(), Value::Bool(true));

        // At 22:05 the until window opens: the light is released (turned
        // off via the inverse verb).
        let t_release = SimTime::EPOCH + SimDuration::from_hours(22) + SimDuration::from_minutes(5);
        let report = engine.step(t_release);
        assert_eq!(
            report.releases,
            vec![(RuleId::new(1), DeviceId::new("light-hall"))]
        );
        assert_eq!(home.hall_light.query("power").unwrap(), Value::Bool(false));
        assert_eq!(engine.holder(&DeviceId::new("light-hall")), None);
    }

    #[test]
    fn trigger_index_and_full_scan_agree() {
        let (mut engine_a, home_a) = setup();
        let (mut engine_b, home_b) = setup();
        engine_b.set_use_trigger_index(false);
        for engine in [&mut engine_a, &mut engine_b] {
            engine.add_rule(hot_rule("tom", 1, 26, 25)).unwrap();
            engine.add_rule(hot_rule("alan", 2, 25, 24)).unwrap();
            engine.add_priority(PriorityOrder::new(
                DeviceId::new("aircon-lr"),
                vec![RuleId::new(2), RuleId::new(1)],
            ));
        }
        for (home, t) in [(&home_a, 1u64), (&home_b, 1u64)] {
            home.thermometer
                .set_reading(Rational::from_integer(28), SimTime::from_millis(t))
                .unwrap();
        }
        let ra = engine_a.step(SimTime::from_millis(2));
        let rb = engine_b.step(SimTime::from_millis(2));
        assert_eq!(ra, rb);
    }

    #[test]
    fn disabled_rules_do_not_fire() {
        let (mut engine, home) = setup();
        let rule = hot_rule("tom", 1, 26, 25).with_enabled(false);
        engine.add_rule(rule).unwrap();
        home.thermometer
            .set_reading(Rational::from_integer(30), SimTime::EPOCH)
            .unwrap();
        let report = engine.step(SimTime::from_millis(1));
        assert!(report.firings.is_empty());
    }

    #[test]
    fn remove_rule_stops_it() {
        let (mut engine, home) = setup();
        engine.add_rule(hot_rule("tom", 1, 26, 25)).unwrap();
        engine.remove_rule(RuleId::new(1)).unwrap();
        home.thermometer
            .set_reading(Rational::from_integer(30), SimTime::EPOCH)
            .unwrap();
        assert!(engine.step(SimTime::from_millis(1)).firings.is_empty());
        assert!(engine.remove_rule(RuleId::new(1)).is_err());
    }

    #[test]
    fn firing_and_report_display_are_readable() {
        let report = StepReport {
            firings: vec![
                Firing {
                    rule: RuleId::new(1),
                    device: DeviceId::new("aircon-lr"),
                    outcome: FiringOutcome::Dispatched,
                },
                Firing {
                    rule: RuleId::new(2),
                    device: DeviceId::new("aircon-lr"),
                    outcome: FiringOutcome::SuppressedBy(RuleId::new(1)),
                },
            ],
            releases: vec![(RuleId::new(3), DeviceId::new("light-hall"))],
        };
        assert_eq!(
            report.to_string(),
            "rule#1 -> aircon-lr: dispatched; \
             rule#2 -> aircon-lr: suppressed by rule#1; \
             rule#3 released light-hall"
        );
        assert_eq!(StepReport::default().to_string(), "idle");
        assert_eq!(
            FiringOutcome::Replaced(RuleId::new(9)).to_string(),
            "replaced rule#9"
        );
    }

    #[test]
    fn failed_dispatch_is_reported() {
        let (mut engine, home) = setup();
        // A rule whose action the device rejects (out-of-range setpoint).
        let rule = Rule::builder(PersonId::new("tom"))
            .condition(Condition::Atom(Atom::Event(EventAtom::new(
                "tv-guide", "x",
            ))))
            .action(
                ActionSpec::new(DeviceId::new("aircon-lr"), Verb::TurnOn)
                    .with_setting("temperature", Quantity::from_integer(99, Unit::Celsius)),
            )
            .build(RuleId::new(1))
            .unwrap();
        engine.add_rule(rule).unwrap();
        home.tv_guide.announce("x", SimTime::EPOCH);
        let report = engine.step(SimTime::from_millis(1));
        assert!(matches!(
            report.firings[0].outcome,
            FiringOutcome::Failed(_)
        ));
        assert_eq!(engine.holder(&DeviceId::new("aircon-lr")), None);
    }
}
