//! Engine errors.

use cadel_conflict::ConflictError;
use cadel_rule::RuleError;
use cadel_upnp::UpnpError;
use std::error::Error;
use std::fmt;

/// Errors raised by the rule execution module.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EngineError {
    /// A device interaction failed.
    Upnp(UpnpError),
    /// The rule layer reported a problem.
    Rule(RuleError),
    /// Conflict checking failed.
    Conflict(ConflictError),
    /// A runtime-state checkpoint could not be imported (out-of-schema
    /// document). The message names the offending field.
    Persist(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Upnp(e) => write!(f, "device error: {e}"),
            EngineError::Rule(e) => write!(f, "rule error: {e}"),
            EngineError::Conflict(e) => write!(f, "conflict error: {e}"),
            EngineError::Persist(message) => write!(f, "persist error: {message}"),
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Upnp(e) => Some(e),
            EngineError::Rule(e) => Some(e),
            EngineError::Conflict(e) => Some(e),
            EngineError::Persist(_) => None,
        }
    }
}

impl From<UpnpError> for EngineError {
    fn from(e: UpnpError) -> Self {
        EngineError::Upnp(e)
    }
}

impl From<RuleError> for EngineError {
    fn from(e: RuleError) -> Self {
        EngineError::Rule(e)
    }
}

impl From<ConflictError> for EngineError {
    fn from(e: ConflictError) -> Self {
        EngineError::Conflict(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadel_types::DeviceId;

    #[test]
    fn error_is_well_behaved() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<EngineError>();
        let e = EngineError::from(UpnpError::UnknownDevice(DeviceId::new("x")));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("device error"));
    }
}
