//! The trigger index: which rules can be affected by which changes.
//!
//! Re-evaluating all 10,000 registered rules on every thermometer tick
//! would waste the home server's CPU; the index maps each sensor key,
//! place and event channel to the rules whose conditions mention them, so
//! a step only touches the relevant rules. Rules with time-of-day,
//! weekday, date or duration atoms are *temporal* and re-evaluated every
//! step (the clock always advances). The A3 ablation benchmark compares
//! this against the index-less full scan.

use crate::context::{
    ContextStore, ARRIVAL_VARIABLE, OCCUPANTS_VARIABLE, ON_AIR_VARIABLE, TV_GUIDE_CHANNEL,
};
use cadel_rule::{Atom, Condition, Rule};
use cadel_types::{PlaceId, RuleId, SensorKey};
use cadel_upnp::PropertyChange;
use std::collections::{BTreeSet, HashMap};

/// Channels whose events are raised internally by the engine (not through
/// UPnP changes); rules listening on them are treated as temporal.
const INTERNAL_CHANNELS: &[&str] = &["conflict"];

/// Maps context changes to potentially affected rules.
#[derive(Clone, Debug, Default)]
pub struct TriggerIndex {
    by_sensor: HashMap<SensorKey, BTreeSet<RuleId>>,
    by_place: HashMap<PlaceId, BTreeSet<RuleId>>,
    by_event_channel: HashMap<String, BTreeSet<RuleId>>,
    temporal: BTreeSet<RuleId>,
}

impl TriggerIndex {
    /// Creates an empty index.
    pub fn new() -> TriggerIndex {
        TriggerIndex::default()
    }

    /// Indexes a rule's condition and `until` clause.
    pub fn add_rule(&mut self, rule: &Rule) {
        self.walk(rule.id(), rule.condition(), true);
        if let Some(until) = rule.until() {
            self.walk(rule.id(), until, true);
        }
    }

    /// Removes a rule from the index.
    pub fn remove_rule(&mut self, rule: &Rule) {
        self.walk(rule.id(), rule.condition(), false);
        if let Some(until) = rule.until() {
            self.walk(rule.id(), until, false);
        }
        self.temporal.remove(&rule.id());
    }

    fn walk(&mut self, id: RuleId, condition: &Condition, add: bool) {
        match condition {
            Condition::True => {}
            Condition::Atom(atom) => self.index_atom(id, atom, add),
            Condition::And(cs) | Condition::Or(cs) => {
                for c in cs {
                    self.walk(id, c, add);
                }
            }
        }
    }

    fn index_atom(&mut self, id: RuleId, atom: &Atom, add: bool) {
        fn toggle<K: std::hash::Hash + Eq + Clone>(
            map: &mut HashMap<K, BTreeSet<RuleId>>,
            key: &K,
            id: RuleId,
            add: bool,
        ) {
            if add {
                map.entry(key.clone()).or_default().insert(id);
            } else if let Some(set) = map.get_mut(key) {
                set.remove(&id);
                if set.is_empty() {
                    map.remove(key);
                }
            }
        }
        match atom {
            Atom::Constraint(c) => toggle(&mut self.by_sensor, c.sensor(), id, add),
            Atom::State(s) => toggle(&mut self.by_sensor, &s.sensor_key(), id, add),
            Atom::Presence(p) => toggle(&mut self.by_place, p.place(), id, add),
            Atom::Event(e) => {
                if INTERNAL_CHANNELS.contains(&e.channel()) {
                    if add {
                        self.temporal.insert(id);
                    }
                } else {
                    toggle(&mut self.by_event_channel, &e.channel().to_owned(), id, add);
                }
            }
            Atom::Time(_) | Atom::Weekday(_) | Atom::Date(_) => {
                if add {
                    self.temporal.insert(id);
                }
            }
            Atom::HeldFor { inner, .. } => {
                // Duration atoms are both event- and time-driven.
                if add {
                    self.temporal.insert(id);
                }
                self.index_atom(id, inner, add);
            }
            // Unknown future atom kinds: evaluate every step (safe).
            _ => {
                if add {
                    self.temporal.insert(id);
                }
            }
        }
    }

    /// Rules that must be re-evaluated every step.
    pub fn temporal_rules(&self) -> impl Iterator<Item = RuleId> + '_ {
        self.temporal.iter().copied()
    }

    /// Adds to `out` every rule potentially affected by a property change.
    pub fn affected_by_change(
        &self,
        change: &PropertyChange,
        ctx: &ContextStore,
        out: &mut BTreeSet<RuleId>,
    ) {
        let key = SensorKey::new(change.device.clone(), change.variable.clone());
        if let Some(rules) = self.by_sensor.get(&key) {
            out.extend(rules.iter().copied());
        }
        match change.variable.as_str() {
            OCCUPANTS_VARIABLE => {
                if let Some(place) = ctx.device_place(&change.device) {
                    if let Some(rules) = self.by_place.get(place) {
                        out.extend(rules.iter().copied());
                    }
                }
            }
            ARRIVAL_VARIABLE => {
                if let Some(payload) = change.value.as_text() {
                    if let Some((channel, _)) = payload.split_once('|') {
                        let channel = channel.trim().to_ascii_lowercase();
                        if let Some(rules) = self.by_event_channel.get(&channel) {
                            out.extend(rules.iter().copied());
                        }
                        if channel.starts_with("person:") {
                            if let Some(rules) = self.by_event_channel.get("person") {
                                out.extend(rules.iter().copied());
                            }
                        }
                    }
                }
            }
            ON_AIR_VARIABLE => {
                if let Some(rules) = self.by_event_channel.get(TV_GUIDE_CHANNEL) {
                    out.extend(rules.iter().copied());
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadel_rule::{ActionSpec, ConstraintAtom, EventAtom, PresenceAtom, Rule, StateAtom, Verb};
    use cadel_simplex::RelOp;
    use cadel_types::{DeviceId, PersonId, Quantity, SimDuration, SimTime, Unit, Value};

    fn rule_with(id: u64, condition: Condition) -> Rule {
        Rule::builder(PersonId::new("x"))
            .condition(condition)
            .action(ActionSpec::new(DeviceId::new("dev"), Verb::TurnOn))
            .build(RuleId::new(id))
            .unwrap()
    }

    fn change(device: &str, variable: &str, value: Value) -> PropertyChange {
        PropertyChange {
            device: DeviceId::new(device),
            variable: variable.to_owned(),
            value,
            seq: 0,
            at: SimTime::EPOCH,
        }
    }

    fn affected(index: &TriggerIndex, ctx: &ContextStore, c: &PropertyChange) -> Vec<u64> {
        let mut out = BTreeSet::new();
        index.affected_by_change(c, ctx, &mut out);
        out.into_iter().map(|r| r.raw()).collect()
    }

    #[test]
    fn sensor_changes_map_to_constraint_rules() {
        let mut index = TriggerIndex::new();
        let ctx = ContextStore::default();
        let cond = Condition::Atom(Atom::Constraint(ConstraintAtom::new(
            SensorKey::new(DeviceId::new("thermo"), "temperature"),
            RelOp::Gt,
            Quantity::from_integer(26, Unit::Celsius),
        )));
        index.add_rule(&rule_with(1, cond));
        let c = change(
            "thermo",
            "temperature",
            Value::Number(Quantity::from_integer(30, Unit::Celsius)),
        );
        assert_eq!(affected(&index, &ctx, &c), vec![1]);
        // Unrelated change touches nothing.
        let c = change("hygro", "humidity", Value::Bool(true));
        assert!(affected(&index, &ctx, &c).is_empty());
    }

    #[test]
    fn state_atoms_index_their_sensor_key() {
        let mut index = TriggerIndex::new();
        let ctx = ContextStore::default();
        let cond = Condition::Atom(Atom::State(StateAtom::new(
            DeviceId::new("tv"),
            "power",
            Value::Bool(true),
        )));
        index.add_rule(&rule_with(2, cond));
        let c = change("tv", "power", Value::Bool(true));
        assert_eq!(affected(&index, &ctx, &c), vec![2]);
    }

    #[test]
    fn occupant_changes_map_through_device_place() {
        let mut index = TriggerIndex::new();
        let mut ctx = ContextStore::default();
        ctx.set_device_place(DeviceId::new("rfid-lr"), PlaceId::new("living room"));
        let cond = Condition::Atom(Atom::Presence(PresenceAtom::person_at(
            "tom",
            "living room",
        )));
        index.add_rule(&rule_with(3, cond));
        let c = change("rfid-lr", "occupants", Value::from("tom"));
        // Both the raw sensor key (none indexed) and the place rules.
        assert_eq!(affected(&index, &ctx, &c), vec![3]);
        // Unknown reader: no mapping.
        let c = change("rfid-x", "occupants", Value::from("tom"));
        assert!(affected(&index, &ctx, &c).is_empty());
    }

    #[test]
    fn arrival_changes_map_to_event_channels() {
        let mut index = TriggerIndex::new();
        let ctx = ContextStore::default();
        let named = Condition::Atom(Atom::Event(EventAtom::new(
            "person:alan",
            "got home from work",
        )));
        let generic = Condition::Atom(Atom::Event(EventAtom::new("person", "returns home")));
        index.add_rule(&rule_with(4, named));
        index.add_rule(&rule_with(5, generic));
        let c = change(
            "rfid-hall",
            "arrival",
            Value::from("person:alan|got home from work"),
        );
        assert_eq!(affected(&index, &ctx, &c), vec![4, 5]);
    }

    #[test]
    fn on_air_changes_map_to_tv_guide_rules() {
        let mut index = TriggerIndex::new();
        let ctx = ContextStore::default();
        let cond = Condition::Atom(Atom::Event(EventAtom::new("tv-guide", "baseball game")));
        index.add_rule(&rule_with(6, cond));
        let c = change("epg", "on-air", Value::from("baseball game"));
        assert_eq!(affected(&index, &ctx, &c), vec![6]);
    }

    #[test]
    fn temporal_rules_cover_time_and_heldfor_and_internal_channels() {
        let mut index = TriggerIndex::new();
        let time_rule = rule_with(
            7,
            Condition::Atom(Atom::Time(cadel_types::DayPart::Night.window())),
        );
        let held_rule = rule_with(
            8,
            Condition::Atom(Atom::held_for(
                Atom::State(StateAtom::new(
                    DeviceId::new("door"),
                    "locked",
                    Value::Bool(false),
                )),
                SimDuration::from_hours(1),
            )),
        );
        let conflict_rule = rule_with(
            9,
            Condition::Atom(Atom::Event(EventAtom::new("conflict", "tv:alan"))),
        );
        index.add_rule(&time_rule);
        index.add_rule(&held_rule);
        index.add_rule(&conflict_rule);
        let temporal: Vec<u64> = index.temporal_rules().map(|r| r.raw()).collect();
        assert_eq!(temporal, vec![7, 8, 9]);
        // The held-for rule is *also* indexed on its inner sensor.
        let ctx = ContextStore::default();
        let c = change("door", "locked", Value::Bool(false));
        assert_eq!(affected(&index, &ctx, &c), vec![8]);
    }

    #[test]
    fn remove_rule_deindexes() {
        let mut index = TriggerIndex::new();
        let ctx = ContextStore::default();
        let cond = Condition::Atom(Atom::Constraint(ConstraintAtom::new(
            SensorKey::new(DeviceId::new("thermo"), "temperature"),
            RelOp::Gt,
            Quantity::from_integer(26, Unit::Celsius),
        )));
        let rule = rule_with(1, cond);
        index.add_rule(&rule);
        index.remove_rule(&rule);
        let c = change(
            "thermo",
            "temperature",
            Value::Number(Quantity::from_integer(30, Unit::Celsius)),
        );
        assert!(affected(&index, &ctx, &c).is_empty());
    }
}
