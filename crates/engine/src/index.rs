//! The trigger index: slot-keyed inverted indexes over the compiled
//! [`ProgramArena`](cadel_ir::ProgramArena), plus deadline heaps for
//! dwell windows and freshness expiry, so a step's candidate set is
//! proportional to the *dirty set* — what actually changed since the
//! last step — rather than to the number of registered rules.
//!
//! Rules are mapped to dense ordinals (with a free-list so churn does
//! not grow the tables) and posted on sorted inverted lists keyed by
//! interned [`SensorSlot`]/[`PlaceSlot`]/[`ChannelSlot`] — the same
//! slots the arena extracted from each rule's condition *and* `until`
//! footprint. Candidate collection unions, into a reusable scratch
//! bitset:
//!
//! * the posting lists of every slot the [`ContextStore`] dirt log
//!   recorded since the last drain;
//! * `held for` dwell deadlines that have come due (a tracker
//!   transition to `Some(since)` schedules `since + duration` on a
//!   min-heap; ineligible dwells — over events or clock windows — are
//!   temporal instead);
//! * freshness deadlines (`stamp + max_age + 1ms`) for stamped sensors
//!   under an active [`FreshnessPolicy`](crate::FreshnessPolicy), so
//!   staleness no longer forces a full scan;
//! * the always-on sets: `temporal` rules (clock windows, event dwells,
//!   uncompiled rules), currently-`true` rules (falling edges, transient
//!   expiry and `until` releases), and `pending` rules that have never
//!   committed a verdict.
//!
//! Over-approximation is always safe — evaluating an unchanged rule
//! commits a no-op — so stale heap entries and freed ordinals are
//! tolerated with lazy deletion; under-approximation is never safe, so
//! every mutation path either posts dirt or lands in an always-on set.

use crate::context::ContextStore;
use crate::eval::HeldTracker;
use cadel_ir::{ChannelSlot, PlaceSlot, SensorSlot, SharedInterner};
use cadel_rule::RuleDb;
use cadel_types::{RuleId, SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};

/// One millisecond: freshness deadlines fire the step *after* the last
/// instant a reading is still fresh (`now - stamp <= max_age` is
/// inclusive).
const ONE_MS: SimDuration = SimDuration::from_millis(1);

/// The rules registered against one `held for` fingerprint, and the
/// dwell duration encoded in it.
#[derive(Clone, Debug)]
struct FpEntry {
    duration: SimDuration,
    /// Sorted ordinals of rules whose condition contains this dwell.
    rules: Vec<u32>,
}

/// Slot-keyed inverted indexes and deadline heaps mapping context dirt
/// to the rules whose verdicts could have changed. See the module docs
/// for the candidate-set contract.
#[derive(Debug)]
pub struct TriggerIndex {
    interner: SharedInterner,
    ord_of: HashMap<RuleId, u32>,
    id_of: Vec<RuleId>,
    live: Vec<bool>,
    free: Vec<u32>,
    /// Sorted ordinal posting lists, indexed by slot index.
    by_sensor: Vec<Vec<u32>>,
    by_place: Vec<Vec<u32>>,
    by_channel: Vec<Vec<u32>>,
    /// Rules that must be evaluated every step: clock/date windows,
    /// ineligible dwells, and rules with no compiled program.
    temporal: BTreeSet<u32>,
    /// Rules whose last committed verdict was `true` — falling edges
    /// (transient-event expiry, dwell resets, `until` releases) happen
    /// without new dirt, so these stay candidates until they fall.
    true_set: BTreeSet<u32>,
    /// Rules that have never committed a verdict (newly added, restored
    /// without state, or disabled — evaluation skips them so they never
    /// commit).
    pending: BTreeSet<u32>,
    by_fingerprint: HashMap<String, FpEntry>,
    /// `(since + duration, ordinal)` dwell deadlines, lazy-deleted.
    held_heap: BinaryHeap<Reverse<(SimTime, u32)>>,
    /// `(stamp + max_age + 1ms, sensor slot index)` freshness expiry
    /// deadlines, lazy-deleted; empty while no policy is active.
    fresh_heap: BinaryHeap<Reverse<(SimTime, u32)>>,
    /// Scratch bitset over ordinals plus the list of set bits, reused
    /// across steps so steady-state collection allocates nothing.
    dirty_words: Vec<u64>,
    dirty_out: Vec<u32>,
}

impl TriggerIndex {
    /// Creates an empty index over the rule database's interner.
    pub fn new(interner: SharedInterner) -> TriggerIndex {
        TriggerIndex {
            interner,
            ord_of: HashMap::new(),
            id_of: Vec::new(),
            live: Vec::new(),
            free: Vec::new(),
            by_sensor: Vec::new(),
            by_place: Vec::new(),
            by_channel: Vec::new(),
            temporal: BTreeSet::new(),
            true_set: BTreeSet::new(),
            pending: BTreeSet::new(),
            by_fingerprint: HashMap::new(),
            held_heap: BinaryHeap::new(),
            fresh_heap: BinaryHeap::new(),
            dirty_words: Vec::new(),
            dirty_out: Vec::new(),
        }
    }

    /// Number of indexed rules.
    pub fn len(&self) -> usize {
        self.ord_of.len()
    }

    /// Whether no rules are indexed.
    pub fn is_empty(&self) -> bool {
        self.ord_of.is_empty()
    }

    /// Indexes a rule already present in `db`. Posts its arena footprint
    /// on the inverted lists, registers its dwell fingerprints (arming
    /// deadlines for windows already open in `held`), arms freshness
    /// deadlines for its already-stamped sensors when a policy is
    /// active, and marks it pending so it is evaluated until its first
    /// committed verdict. Rules without a compiled program are temporal.
    pub(crate) fn insert(
        &mut self,
        id: RuleId,
        db: &RuleDb,
        ctx: &ContextStore,
        held: &HeldTracker,
    ) {
        if self.ord_of.contains_key(&id) {
            // Callers deindex before replacing; tolerate a stray
            // re-insert by unposting the current footprint first.
            self.remove(id, db);
        }
        let ord = self.alloc_ord(id);
        self.pending.insert(ord);
        let Some(r) = db.program_ref(id).copied() else {
            self.temporal.insert(ord);
            return;
        };
        let arena = db.arena();
        if r.temporal() {
            self.temporal.insert(ord);
        }
        for &slot in arena.sensor_slots(&r) {
            post(&mut self.by_sensor, slot.index(), ord);
        }
        for &slot in arena.place_slots(&r) {
            post(&mut self.by_place, slot.index(), ord);
        }
        for &slot in arena.channel_slots(&r) {
            post(&mut self.by_channel, slot.index(), ord);
        }
        for &key in arena.held_keys(&r) {
            let (fingerprint, duration) = arena.held_fingerprint(key);
            let entry = self
                .by_fingerprint
                .entry(fingerprint.to_owned())
                .or_insert_with(|| FpEntry {
                    duration,
                    rules: Vec::new(),
                });
            if let Err(pos) = entry.rules.binary_search(&ord) {
                entry.rules.insert(pos, ord);
            }
            // A dwell window may already be open (rule added after
            // restore, or sharing a fingerprint with an existing rule).
            if let Some(since) = held.held_since(fingerprint) {
                self.held_heap.push(Reverse((since + duration, ord)));
            }
        }
        if let Some(max_age) = ctx.freshness_policy().max_age {
            let interner = self.interner.read().expect("interner lock poisoned");
            for &slot in arena.sensor_slots(&r) {
                // Resolve the stamp through the string-keyed store: the
                // mirror boards may not have synced a newly-interned
                // slot yet.
                if let Some(key) = interner.sensor_key(slot) {
                    if let Some(stamp) = ctx.sensor_updated_at(key) {
                        self.fresh_heap
                            .push(Reverse((stamp + max_age + ONE_MS, slot.index() as u32)));
                    }
                }
            }
        }
    }

    /// Unposts a rule and frees its ordinal. Must be called while the
    /// rule (and its arena footprint) is still present in `db`. Stale
    /// heap entries for the freed ordinal are left behind and skipped
    /// lazily.
    pub(crate) fn remove(&mut self, id: RuleId, db: &RuleDb) {
        let Some(ord) = self.ord_of.remove(&id) else {
            return;
        };
        self.live[ord as usize] = false;
        self.temporal.remove(&ord);
        self.true_set.remove(&ord);
        self.pending.remove(&ord);
        if let Some(r) = db.program_ref(id).copied() {
            let arena = db.arena();
            for &slot in arena.sensor_slots(&r) {
                unpost(&mut self.by_sensor, slot.index(), ord);
            }
            for &slot in arena.place_slots(&r) {
                unpost(&mut self.by_place, slot.index(), ord);
            }
            for &slot in arena.channel_slots(&r) {
                unpost(&mut self.by_channel, slot.index(), ord);
            }
            for &key in arena.held_keys(&r) {
                let (fingerprint, _) = arena.held_fingerprint(key);
                let emptied = match self.by_fingerprint.get_mut(fingerprint) {
                    Some(entry) => {
                        if let Ok(pos) = entry.rules.binary_search(&ord) {
                            entry.rules.remove(pos);
                        }
                        entry.rules.is_empty()
                    }
                    None => false,
                };
                if emptied {
                    self.by_fingerprint.remove(fingerprint);
                }
            }
        }
        self.free.push(ord);
    }

    /// Marks every rule reading a dirtied sensor, and arms its freshness
    /// deadline when a staleness policy is active.
    pub(crate) fn note_sensor_dirt(
        &mut self,
        slot: SensorSlot,
        stamp: SimTime,
        max_age: Option<SimDuration>,
    ) {
        let has_listeners = match self.by_sensor.get(slot.index()) {
            Some(list) => {
                for &ord in list {
                    Self::mark(&mut self.dirty_words, &mut self.dirty_out, &self.live, ord);
                }
                !list.is_empty()
            }
            None => false,
        };
        // No listener now means no listener at expiry either: a rule
        // added later re-arms its own deadlines from the stamps.
        if has_listeners {
            if let Some(max_age) = max_age {
                self.fresh_heap
                    .push(Reverse((stamp + max_age + ONE_MS, slot.index() as u32)));
            }
        }
    }

    /// Marks every rule with a presence predicate over a dirtied place.
    pub(crate) fn mark_place(&mut self, slot: PlaceSlot) {
        if let Some(list) = self.by_place.get(slot.index()) {
            for &ord in list {
                Self::mark(&mut self.dirty_words, &mut self.dirty_out, &self.live, ord);
            }
        }
    }

    /// Marks every rule listening on a dirtied event channel.
    pub(crate) fn mark_channel(&mut self, slot: ChannelSlot) {
        if let Some(list) = self.by_channel.get(slot.index()) {
            for &ord in list {
                Self::mark(&mut self.dirty_words, &mut self.dirty_out, &self.live, ord);
            }
        }
    }

    /// Drains due deadlines, unions the always-on sets into the scratch
    /// bitset, and writes the candidate rule ids (ascending, deduped)
    /// into `out`. Clears the scratch for the next step; `out`'s
    /// capacity is retained by the caller.
    pub(crate) fn collect_candidates(&mut self, now: SimTime, out: &mut Vec<RuleId>) {
        out.clear();
        while let Some(&Reverse((deadline, ord))) = self.held_heap.peek() {
            if deadline > now {
                break;
            }
            self.held_heap.pop();
            Self::mark(&mut self.dirty_words, &mut self.dirty_out, &self.live, ord);
        }
        while let Some(&Reverse((deadline, slot))) = self.fresh_heap.peek() {
            if deadline > now {
                break;
            }
            self.fresh_heap.pop();
            if let Some(list) = self.by_sensor.get(slot as usize) {
                for &ord in list {
                    Self::mark(&mut self.dirty_words, &mut self.dirty_out, &self.live, ord);
                }
            }
        }
        for set in [&self.temporal, &self.true_set, &self.pending] {
            for &ord in set.iter() {
                Self::mark(&mut self.dirty_words, &mut self.dirty_out, &self.live, ord);
            }
        }
        for &ord in &self.dirty_out {
            if self.live[ord as usize] {
                out.push(self.id_of[ord as usize]);
            }
            self.dirty_words[(ord / 64) as usize] &= !(1u64 << (ord % 64));
        }
        self.dirty_out.clear();
        out.sort_unstable();
    }

    /// Records a committed verdict: the rule leaves `pending`, and
    /// enters or leaves the `true` set.
    pub(crate) fn on_committed(&mut self, id: RuleId, now_true: bool) {
        let Some(&ord) = self.ord_of.get(&id) else {
            return;
        };
        self.pending.remove(&ord);
        if now_true {
            self.true_set.insert(ord);
        } else {
            self.true_set.remove(&ord);
        }
    }

    /// Records that dispatch finally failed and the engine reset the
    /// rule's last state to `false` so it can re-fire. The condition may
    /// still hold, in which case a full scan sees a fresh edge on the
    /// very next step — so the rule must stay a candidate (pending)
    /// until its next commit settles it into `true_set` or out.
    pub(crate) fn force_false(&mut self, id: RuleId) {
        if let Some(&ord) = self.ord_of.get(&id) {
            if self.live[ord as usize] {
                self.true_set.remove(&ord);
                self.pending.insert(ord);
            }
        }
    }

    /// Observes a committed dwell-tracker transition. An opening window
    /// (`Some(since)`) arms `since + duration` for every rule sharing
    /// the fingerprint; a reset needs nothing — stale deadlines mark
    /// rules whose dwell then evaluates false, a harmless no-op.
    pub(crate) fn on_held_transition(&mut self, fingerprint: &str, change: Option<SimTime>) {
        let Some(since) = change else {
            return;
        };
        if let Some(entry) = self.by_fingerprint.get(fingerprint) {
            let deadline = since + entry.duration;
            for &ord in &entry.rules {
                self.held_heap.push(Reverse((deadline, ord)));
            }
        }
    }

    /// Re-arms the freshness heap after the policy changed: old
    /// deadlines are dropped, every stamped sensor gets a deadline under
    /// the new `max_age`, and every rule is marked dirty once so
    /// verdicts flipped by the policy itself are re-evaluated.
    pub(crate) fn on_policy_changed(
        &mut self,
        stamped: &[(SensorSlot, SimTime)],
        max_age: Option<SimDuration>,
    ) {
        self.fresh_heap.clear();
        if let Some(max_age) = max_age {
            for &(slot, stamp) in stamped {
                self.fresh_heap
                    .push(Reverse((stamp + max_age + ONE_MS, slot.index() as u32)));
            }
        }
        self.mark_all();
    }

    /// Rebuilds all runtime-derived state after a snapshot import: dwell
    /// deadlines from the restored tracker, freshness deadlines from the
    /// restored stamps and policy, `true`/`pending` membership from the
    /// restored last-state map, and one full dirty sweep so the first
    /// step re-evaluates everything against the restored context.
    pub(crate) fn rearm_after_import(
        &mut self,
        ctx: &ContextStore,
        held: &HeldTracker,
        last_state: &HashMap<RuleId, bool>,
    ) {
        self.held_heap.clear();
        for (fingerprint, since) in held.entries() {
            if let Some(entry) = self.by_fingerprint.get(&fingerprint) {
                let deadline = since + entry.duration;
                for &ord in &entry.rules {
                    self.held_heap.push(Reverse((deadline, ord)));
                }
            }
        }
        self.fresh_heap.clear();
        if let Some(max_age) = ctx.freshness_policy().max_age {
            for (slot, stamp) in ctx.stamped_sensor_slots() {
                self.fresh_heap
                    .push(Reverse((stamp + max_age + ONE_MS, slot.index() as u32)));
            }
        }
        self.true_set.clear();
        self.pending.clear();
        for (id, &ord) in &self.ord_of {
            match last_state.get(id) {
                Some(true) => {
                    self.true_set.insert(ord);
                }
                Some(false) => {}
                None => {
                    self.pending.insert(ord);
                }
            }
        }
        self.mark_all();
    }

    /// Allocates a dense ordinal for a new rule, reusing freed slots.
    fn alloc_ord(&mut self, id: RuleId) -> u32 {
        let ord = match self.free.pop() {
            Some(ord) => {
                self.id_of[ord as usize] = id;
                self.live[ord as usize] = true;
                ord
            }
            None => {
                let ord = self.id_of.len() as u32;
                self.id_of.push(id);
                self.live.push(true);
                ord
            }
        };
        while self.dirty_words.len() * 64 <= ord as usize {
            self.dirty_words.push(0);
        }
        self.ord_of.insert(id, ord);
        ord
    }

    /// Marks every live rule dirty (policy changes, snapshot import).
    fn mark_all(&mut self) {
        for ord in 0..self.id_of.len() as u32 {
            Self::mark(&mut self.dirty_words, &mut self.dirty_out, &self.live, ord);
        }
    }

    /// Sets one ordinal's scratch bit, recording first-time sets on the
    /// drain list. Associated fn so callers can hold posting-list
    /// borrows of disjoint fields.
    fn mark(words: &mut [u64], out: &mut Vec<u32>, live: &[bool], ord: u32) {
        if !live[ord as usize] {
            return;
        }
        let word = &mut words[(ord / 64) as usize];
        let bit = 1u64 << (ord % 64);
        if *word & bit == 0 {
            *word |= bit;
            out.push(ord);
        }
    }

    /// Structural view for churn tests: every posting, membership and
    /// fingerprint registration mapped back to rule ids, in sorted
    /// order. Runtime state (true/pending sets, heaps, scratch) is
    /// excluded — it depends on history, not structure.
    #[cfg(test)]
    fn structure(&self) -> IndexStructure {
        let ids = |ords: &[u32]| -> Vec<RuleId> {
            let mut ids: Vec<RuleId> = ords.iter().map(|&o| self.id_of[o as usize]).collect();
            ids.sort_unstable();
            ids
        };
        let lists = |postings: &[Vec<u32>]| -> Vec<(usize, Vec<RuleId>)> {
            postings
                .iter()
                .enumerate()
                .filter(|(_, l)| !l.is_empty())
                .map(|(slot, l)| (slot, ids(l)))
                .collect()
        };
        let temporal_ords: Vec<u32> = self.temporal.iter().copied().collect();
        let mut fingerprints: Vec<(String, u64, Vec<RuleId>)> = self
            .by_fingerprint
            .iter()
            .map(|(fp, e)| (fp.clone(), e.duration.as_millis(), ids(&e.rules)))
            .collect();
        fingerprints.sort();
        IndexStructure {
            by_sensor: lists(&self.by_sensor),
            by_place: lists(&self.by_place),
            by_channel: lists(&self.by_channel),
            temporal: ids(&temporal_ords),
            fingerprints,
        }
    }
}

/// See [`TriggerIndex::structure`].
#[cfg(test)]
#[derive(Debug, PartialEq, Eq)]
struct IndexStructure {
    by_sensor: Vec<(usize, Vec<RuleId>)>,
    by_place: Vec<(usize, Vec<RuleId>)>,
    by_channel: Vec<(usize, Vec<RuleId>)>,
    temporal: Vec<RuleId>,
    fingerprints: Vec<(String, u64, Vec<RuleId>)>,
}

/// Inserts an ordinal into a slot's sorted posting list, growing the
/// table to cover the slot.
fn post(lists: &mut Vec<Vec<u32>>, slot: usize, ord: u32) {
    if lists.len() <= slot {
        lists.resize_with(slot + 1, Vec::new);
    }
    let list = &mut lists[slot];
    if let Err(pos) = list.binary_search(&ord) {
        list.insert(pos, ord);
    }
}

/// Removes an ordinal from a slot's posting list.
fn unpost(lists: &mut [Vec<u32>], slot: usize, ord: u32) {
    if let Some(list) = lists.get_mut(slot) {
        if let Ok(pos) = list.binary_search(&ord) {
            list.remove(pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{FreshnessMode, FreshnessPolicy};
    use cadel_rule::{
        ActionSpec, Atom, Condition, ConstraintAtom, EventAtom, PresenceAtom, Rule, Subject, Verb,
    };
    use cadel_simplex::RelOp;
    use cadel_types::{Date, DeviceId, PersonId, PlaceId, Quantity, SensorKey, Unit, Value};

    fn mins(m: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_minutes(m)
    }

    fn rule_with(id: u64, condition: Condition) -> Rule {
        Rule::builder(PersonId::new("tom"))
            .condition(condition)
            .action(ActionSpec::new(DeviceId::new("aircon-lr"), Verb::TurnOn))
            .build(RuleId::new(id))
            .unwrap()
    }

    fn temp_atom() -> Atom {
        Atom::Constraint(ConstraintAtom::new(
            SensorKey::new(DeviceId::new("thermo-lr"), "temperature"),
            RelOp::Gt,
            Quantity::from_integer(26, Unit::Celsius),
        ))
    }

    fn setup(rules: Vec<Rule>) -> (RuleDb, ContextStore, HeldTracker, TriggerIndex) {
        let mut db = RuleDb::new();
        let mut ctx = ContextStore::new(Date::new(2005, 6, 6).unwrap());
        ctx.attach_interner(db.interner().clone());
        let held = HeldTracker::new();
        let mut index = TriggerIndex::new(db.interner().clone());
        for rule in rules {
            let id = rule.id();
            db.insert(rule).unwrap();
            index.insert(id, &db, &ctx, &held);
        }
        (db, ctx, held, index)
    }

    fn candidates(index: &mut TriggerIndex, now: SimTime) -> Vec<u64> {
        let mut out = Vec::new();
        index.collect_candidates(now, &mut out);
        out.iter().map(|id| id.raw()).collect()
    }

    /// Forwards the context's dirt log into the index, like the engine's
    /// candidate phase does.
    fn drain_dirt(index: &mut TriggerIndex, ctx: &mut ContextStore) {
        let max_age = ctx.freshness_policy().max_age;
        for &(slot, stamp) in ctx.dirty_sensors() {
            index.note_sensor_dirt(slot, stamp, max_age);
        }
        for &slot in ctx.dirty_places() {
            index.mark_place(slot);
        }
        for &slot in ctx.dirty_channels() {
            index.mark_channel(slot);
        }
        ctx.clear_dirt();
    }

    #[test]
    fn sensor_dirt_marks_only_listeners() {
        let r1 = rule_with(1, Condition::Atom(temp_atom()));
        let r2 = rule_with(
            2,
            Condition::Atom(Atom::Constraint(ConstraintAtom::new(
                SensorKey::new(DeviceId::new("lux-lr"), "illuminance"),
                RelOp::Lt,
                Quantity::from_integer(100, Unit::Lux),
            ))),
        );
        let (_db, mut ctx, _held, mut index) = setup(vec![r1, r2]);
        // Both are pending until their first committed verdict.
        assert_eq!(candidates(&mut index, mins(0)), [1, 2]);
        index.on_committed(RuleId::new(1), false);
        index.on_committed(RuleId::new(2), false);
        assert_eq!(candidates(&mut index, mins(1)), [] as [u64; 0]);

        ctx.set_now(mins(2));
        ctx.set_value(
            SensorKey::new(DeviceId::new("thermo-lr"), "temperature"),
            Value::Number(Quantity::from_integer(28, Unit::Celsius)),
        );
        drain_dirt(&mut index, &mut ctx);
        assert_eq!(candidates(&mut index, mins(2)), [1]);
    }

    #[test]
    fn true_rules_stay_candidates_until_they_fall() {
        let (_db, _ctx, _held, mut index) = setup(vec![rule_with(1, Condition::Atom(temp_atom()))]);
        index.on_committed(RuleId::new(1), true);
        assert_eq!(candidates(&mut index, mins(1)), [1]);
        assert_eq!(candidates(&mut index, mins(2)), [1]);
        index.on_committed(RuleId::new(1), false);
        assert_eq!(candidates(&mut index, mins(3)), [] as [u64; 0]);
        // A final dispatch failure resets last_state to false while the
        // condition may still hold: the rule keeps re-firing under a full
        // scan, so it must stay a candidate until its next commit.
        index.on_committed(RuleId::new(1), true);
        index.force_false(RuleId::new(1));
        assert_eq!(candidates(&mut index, mins(4)), [1]);
        assert_eq!(candidates(&mut index, mins(5)), [1]);
        index.on_committed(RuleId::new(1), false);
        assert_eq!(candidates(&mut index, mins(6)), [] as [u64; 0]);
    }

    #[test]
    fn place_and_channel_dirt_mark_their_rules() {
        let presence = rule_with(
            1,
            Condition::Atom(Atom::Presence(PresenceAtom::new(
                Subject::Somebody,
                PlaceId::new("living room"),
            ))),
        );
        let event = rule_with(
            2,
            Condition::Atom(Atom::Event(EventAtom::new("door", "ding"))),
        );
        let (db, _ctx, _held, mut index) = setup(vec![presence, event]);
        index.on_committed(RuleId::new(1), false);
        index.on_committed(RuleId::new(2), false);

        let (place, channel) = {
            let interner = db.interner().read().unwrap();
            (
                interner.lookup_place(&PlaceId::new("living room")).unwrap(),
                interner.lookup_channel_normalized("door").unwrap(),
            )
        };
        index.mark_place(place);
        assert_eq!(candidates(&mut index, mins(1)), [1]);
        index.mark_channel(channel);
        assert_eq!(candidates(&mut index, mins(2)), [2]);
        assert_eq!(candidates(&mut index, mins(3)), [] as [u64; 0]);
    }

    #[test]
    fn dwell_deadline_fires_exactly_once() {
        let dwell = rule_with(
            1,
            Condition::Atom(Atom::held_for(temp_atom(), SimDuration::from_minutes(10))),
        );
        let (_db, _ctx, _held, mut index) = setup(vec![dwell]);
        // Eligible dwell over a numeric read: not temporal.
        assert!(index.temporal.is_empty());
        index.on_committed(RuleId::new(1), false);

        let fingerprint = index.by_fingerprint.keys().next().unwrap().clone();
        index.on_held_transition(&fingerprint, Some(mins(5)));
        assert_eq!(candidates(&mut index, mins(14)), [] as [u64; 0]);
        assert_eq!(candidates(&mut index, mins(15)), [1]);
        assert_eq!(candidates(&mut index, mins(16)), [] as [u64; 0]);
        // A reset arms nothing.
        index.on_held_transition(&fingerprint, None);
        assert_eq!(candidates(&mut index, mins(30)), [] as [u64; 0]);
    }

    #[test]
    fn freshness_deadline_replaces_the_full_scan() {
        let (_db, mut ctx, _held, mut index) =
            setup(vec![rule_with(1, Condition::Atom(temp_atom()))]);
        index.on_committed(RuleId::new(1), false);
        ctx.set_freshness_policy(FreshnessPolicy::new(
            FreshnessMode::FailClosed,
            SimDuration::from_minutes(5),
        ));
        index.on_policy_changed(&ctx.stamped_sensor_slots(), ctx.freshness_policy().max_age);
        // Policy change marks everything once.
        assert_eq!(candidates(&mut index, mins(0)), [1]);

        ctx.set_now(mins(1));
        ctx.set_value(
            SensorKey::new(DeviceId::new("thermo-lr"), "temperature"),
            Value::Number(Quantity::from_integer(28, Unit::Celsius)),
        );
        drain_dirt(&mut index, &mut ctx);
        assert_eq!(candidates(&mut index, mins(1)), [1]);
        // Fresh through minute 6 (`max_age` is inclusive); the deadline
        // marks the rule once at 6:00:00.001, i.e. by minute 7.
        assert_eq!(candidates(&mut index, mins(6)), [] as [u64; 0]);
        assert_eq!(candidates(&mut index, mins(7)), [1]);
        assert_eq!(candidates(&mut index, mins(8)), [] as [u64; 0]);
    }

    #[test]
    fn churned_index_matches_fresh_rebuild() {
        let mk = |id: u64| match id % 4 {
            0 => rule_with(id, Condition::Atom(temp_atom())),
            1 => rule_with(
                id,
                Condition::Atom(Atom::Presence(PresenceAtom::new(
                    Subject::Somebody,
                    PlaceId::new("kitchen"),
                ))),
            ),
            2 => rule_with(
                id,
                Condition::Atom(Atom::Event(EventAtom::new("door", "ding"))),
            ),
            _ => rule_with(
                id,
                Condition::Atom(Atom::held_for(temp_atom(), SimDuration::from_minutes(id))),
            ),
        };
        let (mut db, ctx, held, mut index) = setup((0..24).map(mk).collect());
        // Deterministic churn: remove every third, re-add some fresh ids,
        // replace a few in place with a different condition shape.
        for id in (0..24u64).step_by(3) {
            index.remove(RuleId::new(id), &db);
            db.remove(RuleId::new(id)).unwrap();
        }
        for id in (0..24u64).step_by(6) {
            let rule = mk(id + 1000);
            let rid = rule.id();
            db.insert(rule).unwrap();
            index.insert(rid, &db, &ctx, &held);
        }
        for id in [1u64, 5, 7] {
            let shape = mk(id + 2);
            let replacement = rule_with(id, shape.condition().clone());
            index.remove(RuleId::new(id), &db);
            db.replace(replacement).unwrap();
            index.insert(RuleId::new(id), &db, &ctx, &held);
        }

        let mut rebuilt = TriggerIndex::new(db.interner().clone());
        let ids: Vec<RuleId> = db.iter().map(|r| r.id()).collect();
        for id in ids {
            rebuilt.insert(id, &db, &ctx, &held);
        }
        assert_eq!(index.structure(), rebuilt.structure());

        // Identical candidate sets for the same dirt (all rules are
        // still pending in both, so runtime state matches too).
        let place = db
            .interner()
            .read()
            .unwrap()
            .lookup_place(&PlaceId::new("kitchen"))
            .unwrap();
        index.mark_place(place);
        rebuilt.mark_place(place);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        index.collect_candidates(mins(1), &mut a);
        rebuilt.collect_candidates(mins(1), &mut b);
        assert_eq!(a, b);
    }
}
