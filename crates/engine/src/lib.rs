//! The CADEL rule execution module (paper §4.1).
//!
//! "The rule execution module does not execute rules by interpreting
//! CADEL descriptions; a CADEL description is expressed as an equivalent
//! *rule object* … It receives events from external components and issues
//! commands to devices through the communication interface module."
//!
//! The pieces:
//!
//! * [`ContextStore`] — the live picture of the home (sensor values,
//!   presence, active events, clock/calendar), fed by UPnP
//!   property-change events.
//! * [`Evaluator`] / [`HeldTracker`] — condition evaluation, including the
//!   temporal bookkeeping behind "door unlocked **for 1 hour**".
//! * [`TriggerIndex`] — slot-keyed inverted indexes over the compiled
//!   program arena plus dwell/freshness deadline heaps, so a step's cost
//!   scales with the dirty set, not the rule count (benchmarks P3/P4
//!   measure the win and verify the full-scan ablation agrees).
//! * [`Engine`] — the step loop: drain events → evaluate → arbitrate
//!   simultaneous firings per device via the context-scoped
//!   [`PriorityStore`](cadel_conflict::PriorityStore) → dispatch actions
//!   through the UPnP control point, honouring `until` releases and
//!   raising [`CONFLICT_CHANNEL`] events for suppressed rules.
//! * [`Resilience`] — fault tolerance around dispatch: per-device
//!   circuit breakers (tripped devices defer firings instead of failing
//!   them), sim-time retries with bounded exponential backoff and
//!   deterministic jitter, and a dead-letter queue replayed on device
//!   recovery. Paired with the [`FreshnessPolicy`] staleness semantics
//!   of the context store (see docs/RESILIENCE.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod engine;
pub mod error;
pub mod eval;
pub mod index;
pub mod resilience;

pub use context::{ContextStore, FreshnessMode, FreshnessPolicy};
pub use engine::persist::{freshness_policy_from_json, freshness_policy_to_json};
pub use engine::{coalescible, Engine, Firing, FiringOutcome, StepReport, CONFLICT_CHANNEL};
pub use error::EngineError;
pub use eval::{Evaluator, HeldTracker};
pub use index::TriggerIndex;
pub use resilience::{
    ActuationError, BreakerState, BreakerStatus, CircuitBreaker, DeadLetter, Resilience,
    ResilienceConfig, ResilienceStatus, RetryEntry, RetryKind,
};
