//! The context store: the engine's live picture of the home.
//!
//! Everything a rule condition can test is mirrored here, fed by UPnP
//! property-change events:
//!
//! * **Sensor/state values** — any property change is stored under its
//!   `(device, variable)` [`SensorKey`].
//! * **Presence** — changes of a presence reader's `occupants` variable
//!   (comma-separated person list) update who is at the reader's place.
//! * **Events** — changes of an `arrival` variable (`"<channel>|<name>"`)
//!   raise a *transient* event fact that stays active for a configurable
//!   window; changes of the TV guide's `on-air` variable maintain a
//!   *persistent* broadcast fact that lasts until the program ends.
//!
//! Transient-event windows are **inclusive at both ends**: an event raised
//! at `t` with window `W` is active on every step whose clock satisfies
//! `t <= now <= t + W`, and expires strictly after `t + W`. This mirrors
//! the freshness rule (a reading aged exactly `max_age` is still fresh)
//! and is honored identically by the string-keyed path
//! ([`ContextStore::event_active`]) and the compiled-IR slot path
//! ([`ContextView::event_active_slot`]).
//! * **Clock/calendar** — the current [`SimTime`] plus the weekday/date of
//!   day zero, so time-window, weekday and date atoms can be decided.
//!
//! Sensor values additionally carry the sim instant of their last update;
//! a configurable [`FreshnessPolicy`] decides how conjuncts over *stale*
//! readings evaluate (fail-closed, fail-open, or hold the last value).
//! Both evaluation paths — the compiled IR via [`ContextView::sensor_read`]
//! and the AST interpreter via [`ContextStore::sensor_read_key`] — share
//! one policy implementation, preserving lockstep parity.

use cadel_ir::{
    ChannelSlot, ContextView, EventSlot, PlaceSlot, SensorRead, SensorSlot, SharedInterner,
};
use cadel_obs::{Event as ObsEvent, LazyCounter, Level};
use cadel_types::{
    Date, DeviceId, PersonId, PlaceId, SensorKey, SimDuration, SimTime, Value, Weekday,
};
use cadel_upnp::PropertyChange;
use std::collections::{BTreeMap, BTreeSet, HashMap};

static STALE_READS: LazyCounter = LazyCounter::new("engine_stale_reads_total");

/// Default lifetime of transient events ("Alan got home from work").
pub const DEFAULT_EVENT_WINDOW: SimDuration = SimDuration::from_minutes(10);

/// The variable name presence readers publish occupant lists on.
pub const OCCUPANTS_VARIABLE: &str = "occupants";
/// The variable name arrival announcements are published on.
pub const ARRIVAL_VARIABLE: &str = "arrival";
/// The variable name the TV guide publishes the current program on.
pub const ON_AIR_VARIABLE: &str = "on-air";
/// The event channel of broadcast programs.
pub const TV_GUIDE_CHANNEL: &str = "tv-guide";
/// The generic person-event channel ("someone returns home").
pub const ANY_PERSON_CHANNEL: &str = "person";

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct EventFact {
    channel: String,
    name: String,
}

/// How a conjunct over a *stale* sensor reading evaluates.
///
/// Readings carry the sim timestamp of their last update; a
/// [`FreshnessPolicy`] with a `max_age` marks older readings stale and
/// this mode decides what the evaluators (compiled IR and AST alike) do
/// with them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FreshnessMode {
    /// Stale readings evaluate as if absent: the predicate is false.
    FailClosed,
    /// Stale readings force the predicate true.
    FailOpen,
    /// Stale readings keep their last value (the behavior with no
    /// staleness semantics at all).
    #[default]
    HoldLastValue,
}

impl std::fmt::Display for FreshnessMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FreshnessMode::FailClosed => "fail-closed",
            FreshnessMode::FailOpen => "fail-open",
            FreshnessMode::HoldLastValue => "hold-last-value",
        })
    }
}

/// When a sensor reading counts as stale and what to do about it.
///
/// The default policy (`HoldLastValue`, no `max_age`) is exactly the
/// legacy behavior: readings never expire.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FreshnessPolicy {
    /// Degraded-evaluation mode for stale readings.
    pub mode: FreshnessMode,
    /// Maximum age before a reading counts as stale; `None` disables
    /// staleness entirely.
    pub max_age: Option<SimDuration>,
}

impl FreshnessPolicy {
    /// A policy marking readings older than `max_age` stale, degraded per
    /// `mode`.
    pub fn new(mode: FreshnessMode, max_age: SimDuration) -> FreshnessPolicy {
        FreshnessPolicy {
            mode,
            max_age: Some(max_age),
        }
    }
}

/// Dense, slot-indexed mirror of the context for compiled-rule evaluation.
///
/// The string-keyed maps of [`ContextStore`] remain the source of truth;
/// the mirror is updated incrementally by every mutator (for names the
/// interner already knows) and rebuilt wholesale by
/// [`ContextStore::sync_ir`] whenever the interner's revision changed
/// (i.e. new rules interned new names).
#[derive(Clone, Debug)]
struct IrMirror {
    interner: SharedInterner,
    /// Interner revision the boards were last rebuilt against. `None`
    /// until the first [`ContextStore::sync_ir`].
    seen_revision: Option<u64>,
    sensor_board: Vec<Option<Value>>,
    /// Last-update instant per sensor slot, parallel to `sensor_board`
    /// (the dense mirror of `ContextStore::sensor_stamps`).
    stamp_board: Vec<Option<SimTime>>,
    /// Expiry instant per transient event slot (compared against `now` at
    /// query time, mirroring [`ContextStore::event_active`]).
    transient_board: Vec<Option<SimTime>>,
    persistent_board: Vec<bool>,
}

/// The engine's view of current context.
#[derive(Clone, Debug)]
pub struct ContextStore {
    now: SimTime,
    epoch_date: Date,
    sensor_values: HashMap<SensorKey, Value>,
    /// Sim instant each sensor value was last written (staleness source).
    sensor_stamps: HashMap<SensorKey, SimTime>,
    freshness: FreshnessPolicy,
    presence: HashMap<PersonId, PlaceId>,
    place_occupants: HashMap<PlaceId, BTreeSet<PersonId>>,
    device_places: HashMap<DeviceId, PlaceId>,
    transient_events: BTreeMap<EventFact, SimTime>,
    persistent_events: BTreeSet<EventFact>,
    event_window: SimDuration,
    ir: Option<IrMirror>,
    /// Dirt log: interned slots mutated since the engine last drained it.
    /// Every mutator — property-change ingest *and* direct scenario writes
    /// like [`ContextStore::set_value`] or [`ContextStore::raise_event`] —
    /// records the slots it touched, so the trigger index never misses a
    /// change regardless of which door it came through. Names the interner
    /// does not know have no slot, and correctly produce no dirt: no rule
    /// can mention them. Entries may repeat; marking is idempotent.
    dirty_sensors: Vec<(SensorSlot, SimTime)>,
    dirty_places: Vec<PlaceSlot>,
    dirty_channels: Vec<ChannelSlot>,
}

impl ContextStore {
    /// Creates a store whose simulation epoch (day 0) falls on
    /// `epoch_date`.
    pub fn new(epoch_date: Date) -> ContextStore {
        ContextStore {
            now: SimTime::EPOCH,
            epoch_date,
            sensor_values: HashMap::new(),
            sensor_stamps: HashMap::new(),
            freshness: FreshnessPolicy::default(),
            presence: HashMap::new(),
            place_occupants: HashMap::new(),
            device_places: HashMap::new(),
            transient_events: BTreeMap::new(),
            persistent_events: BTreeSet::new(),
            event_window: DEFAULT_EVENT_WINDOW,
            ir: None,
            dirty_sensors: Vec::new(),
            dirty_places: Vec::new(),
            dirty_channels: Vec::new(),
        }
    }

    /// Attaches the rule database's interner so this store can serve
    /// compiled-rule evaluation through dense slot-indexed boards. Until an
    /// interner is attached, [`ContextView`] reads return nothing.
    pub fn attach_interner(&mut self, interner: SharedInterner) {
        self.ir = Some(IrMirror {
            interner,
            seen_revision: None,
            sensor_board: Vec::new(),
            stamp_board: Vec::new(),
            transient_board: Vec::new(),
            persistent_board: Vec::new(),
        });
    }

    /// Brings the slot boards up to date with the interner.
    ///
    /// Cheap when no new names were interned since the last call (one
    /// relaxed read-lock and revision compare); on a revision change the
    /// boards are rebuilt from the string-keyed maps, which stay the source
    /// of truth.
    pub fn sync_ir(&mut self) {
        let Some(mirror) = &mut self.ir else {
            return;
        };
        let interner = mirror.interner.read().expect("interner lock poisoned");
        if mirror.seen_revision == Some(interner.revision()) {
            return;
        }
        mirror.sensor_board = (0..interner.sensor_count())
            .map(|i| {
                interner
                    .sensor_key(SensorSlot::new(i as u32))
                    .and_then(|key| self.sensor_values.get(key).cloned())
            })
            .collect();
        mirror.stamp_board = (0..interner.sensor_count())
            .map(|i| {
                interner
                    .sensor_key(SensorSlot::new(i as u32))
                    .and_then(|key| self.sensor_stamps.get(key).copied())
            })
            .collect();
        mirror.transient_board = vec![None; interner.event_count()];
        mirror.persistent_board = vec![false; interner.event_count()];
        for i in 0..interner.event_count() {
            let slot = EventSlot::new(i as u32);
            let Some((channel, name)) = interner.event_key(slot) else {
                continue;
            };
            let fact = EventFact {
                channel: channel.to_owned(),
                name: name.to_owned(),
            };
            mirror.persistent_board[i] = self.persistent_events.contains(&fact);
            mirror.transient_board[i] = self.transient_events.get(&fact).copied();
        }
        mirror.seen_revision = Some(interner.revision());
    }

    /// Writes a sensor value and its update instant through to the boards
    /// when the interner knows the key. Names never mentioned by a rule
    /// have no slot and are (correctly) skipped.
    fn mirror_sensor(&mut self, key: &SensorKey, value: &Value, at: SimTime) {
        if let Some(mirror) = &mut self.ir {
            let interner = mirror.interner.read().expect("interner lock poisoned");
            if let Some(slot) = interner.lookup_sensor(key) {
                if slot.index() >= mirror.sensor_board.len() {
                    mirror.sensor_board.resize(slot.index() + 1, None);
                    mirror.stamp_board.resize(slot.index() + 1, None);
                }
                mirror.sensor_board[slot.index()] = Some(value.clone());
                mirror.stamp_board[slot.index()] = Some(at);
                self.dirty_sensors.push((slot, at));
            }
        }
    }

    /// Logs dirt for a place whose occupancy (or a person's presence at
    /// it) changed.
    fn log_place_dirt(&mut self, place: &PlaceId) {
        if let Some(mirror) = &self.ir {
            let interner = mirror.interner.read().expect("interner lock poisoned");
            if let Some(slot) = interner.lookup_place(place) {
                self.dirty_places.push(slot);
            }
        }
    }

    /// Logs dirt for an event channel. `channel` must already be
    /// normalized (trimmed, lowercase) — this is the alloc-free path.
    fn log_channel_dirt(&mut self, channel: &str) {
        if let Some(mirror) = &self.ir {
            let interner = mirror.interner.read().expect("interner lock poisoned");
            if let Some(slot) = interner.lookup_channel_normalized(channel) {
                self.dirty_channels.push(slot);
            }
        }
    }

    /// Writes a transient event's expiry through to the board. Inputs must
    /// be normalized (trimmed, lowercase).
    fn mirror_transient(&mut self, channel: &str, name: &str, expiry: SimTime) {
        if let Some(mirror) = &mut self.ir {
            let interner = mirror.interner.read().expect("interner lock poisoned");
            if let Some(slot) = interner.lookup_event_normalized(channel, name) {
                if slot.index() >= mirror.transient_board.len() {
                    mirror.transient_board.resize(slot.index() + 1, None);
                }
                mirror.transient_board[slot.index()] = Some(expiry);
            }
        }
    }

    /// Writes a persistent event flag through to the board. Inputs must be
    /// normalized (trimmed, lowercase).
    fn mirror_persistent(&mut self, channel: &str, name: &str, active: bool) {
        if let Some(mirror) = &mut self.ir {
            let interner = mirror.interner.read().expect("interner lock poisoned");
            if let Some(slot) = interner.lookup_event_normalized(channel, name) {
                if slot.index() >= mirror.persistent_board.len() {
                    mirror.persistent_board.resize(slot.index() + 1, false);
                }
                mirror.persistent_board[slot.index()] = active;
            }
        }
    }

    /// Overrides the transient-event lifetime.
    pub fn set_event_window(&mut self, window: SimDuration) {
        self.event_window = window;
    }

    /// Registers where a device is installed (needed to map `occupants`
    /// updates to a place).
    pub fn set_device_place(&mut self, device: DeviceId, place: PlaceId) {
        self.device_places.insert(device, place);
    }

    /// Where a device is installed, when registered via
    /// [`ContextStore::set_device_place`].
    pub fn device_place(&self, device: &DeviceId) -> Option<&PlaceId> {
        self.device_places.get(device)
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock and expires transient events. An event whose
    /// window ends exactly at `now` is still active this step (inclusive
    /// boundary) and is dropped on the next advance past it.
    pub fn set_now(&mut self, now: SimTime) {
        self.now = now;
        self.transient_events.retain(|_, expiry| *expiry >= now);
    }

    /// The weekday at the current instant.
    pub fn weekday(&self) -> Weekday {
        self.epoch_date.weekday().advance(self.now.day_index())
    }

    /// The calendar date at the current instant.
    pub fn date(&self) -> Date {
        self.epoch_date.advance(self.now.day_index())
    }

    /// The latest value of a sensor/state variable.
    pub fn value(&self, key: &SensorKey) -> Option<&Value> {
        self.sensor_values.get(key)
    }

    /// Directly stores a sensor/state value (scenario scripting and
    /// initial state snapshots), stamped with the current instant.
    pub fn set_value(&mut self, key: SensorKey, value: Value) {
        self.mirror_sensor(&key, &value, self.now);
        self.sensor_stamps.insert(key.clone(), self.now);
        self.sensor_values.insert(key, value);
    }

    /// When a sensor value was last written, if it ever was.
    pub fn sensor_updated_at(&self, key: &SensorKey) -> Option<SimTime> {
        self.sensor_stamps.get(key).copied()
    }

    /// Sets the staleness policy for sensor reads.
    pub fn set_freshness_policy(&mut self, policy: FreshnessPolicy) {
        self.freshness = policy;
    }

    /// The active staleness policy.
    pub fn freshness_policy(&self) -> FreshnessPolicy {
        self.freshness
    }

    /// Applies the freshness policy to a raw `(value, last-update)` pair.
    /// Shared by the slot-indexed ([`ContextView::sensor_read`]) and
    /// string-keyed ([`ContextStore::sensor_read_key`]) paths so compiled
    /// and AST evaluation stay in lockstep.
    fn read_policy<'a>(&self, value: Option<&'a Value>, stamp: Option<SimTime>) -> SensorRead<'a> {
        let Some(value) = value else {
            return SensorRead::AssumeFalse;
        };
        let Some(max_age) = self.freshness.max_age else {
            return SensorRead::Value(value);
        };
        let fresh = stamp.map(|s| self.now.since(s) <= max_age).unwrap_or(false);
        if fresh {
            return SensorRead::Value(value);
        }
        STALE_READS.inc();
        if cadel_obs::enabled() {
            let mut event = ObsEvent::new("context.stale_read", Level::Debug)
                .with_field("mode", self.freshness.mode.to_string());
            if let Some(s) = stamp {
                event = event.with_field("age_ms", self.now.since(s).as_millis());
            }
            cadel_obs::emit(event);
        }
        match self.freshness.mode {
            FreshnessMode::FailClosed => SensorRead::AssumeFalse,
            FreshnessMode::FailOpen => SensorRead::AssumeTrue,
            FreshnessMode::HoldLastValue => SensorRead::Value(value),
        }
    }

    /// The policy-mediated reading for a string-keyed sensor (the AST
    /// evaluator's entry point; mirrors [`ContextView::sensor_read`]).
    pub fn sensor_read_key(&self, key: &SensorKey) -> SensorRead<'_> {
        self.read_policy(
            self.sensor_values.get(key),
            self.sensor_stamps.get(key).copied(),
        )
    }

    /// Where a person currently is, if known.
    pub fn person_place(&self, person: &PersonId) -> Option<&PlaceId> {
        self.presence.get(person)
    }

    /// Who is currently at a place.
    pub fn occupants(&self, place: &PlaceId) -> Vec<&PersonId> {
        self.place_occupants
            .get(place)
            .map(|s| s.iter().collect())
            .unwrap_or_default()
    }

    /// Directly sets a person's location (`None` removes them).
    pub fn set_presence(&mut self, person: PersonId, place: Option<PlaceId>) {
        if let Some(previous) = self.presence.get(&person).cloned() {
            self.log_place_dirt(&previous);
            if let Some(set) = self.place_occupants.get_mut(&previous) {
                set.remove(&person);
            }
        }
        match place {
            Some(p) => {
                self.log_place_dirt(&p);
                self.place_occupants
                    .entry(p.clone())
                    .or_default()
                    .insert(person.clone());
                self.presence.insert(person, p);
            }
            None => {
                self.presence.remove(&person);
            }
        }
    }

    /// Raises a transient event, active until the event window elapses.
    pub fn raise_event(&mut self, channel: &str, name: &str) {
        let fact = EventFact {
            channel: channel.trim().to_ascii_lowercase(),
            name: name.trim().to_ascii_lowercase(),
        };
        let expiry = self.now + self.event_window;
        self.mirror_transient(&fact.channel, &fact.name, expiry);
        self.log_channel_dirt(&fact.channel);
        self.transient_events.insert(fact, expiry);
    }

    /// Sets a persistent event fact (active until cleared).
    pub fn set_persistent_event(&mut self, channel: &str, name: &str) {
        let fact = EventFact {
            channel: channel.trim().to_ascii_lowercase(),
            name: name.trim().to_ascii_lowercase(),
        };
        self.mirror_persistent(&fact.channel, &fact.name, true);
        self.log_channel_dirt(&fact.channel);
        self.persistent_events.insert(fact);
    }

    /// Clears every persistent event on a channel.
    pub fn clear_persistent_channel(&mut self, channel: &str) {
        let channel = channel.trim().to_ascii_lowercase();
        self.log_channel_dirt(&channel);
        self.persistent_events.retain(|f| f.channel != channel);
        if let Some(mirror) = &mut self.ir {
            let interner = mirror.interner.read().expect("interner lock poisoned");
            for slot in interner.channel_slots(&channel) {
                if let Some(flag) = mirror.persistent_board.get_mut(slot.index()) {
                    *flag = false;
                }
            }
        }
    }

    /// Whether an event is currently active (case-insensitive). Transient
    /// events are active through the end of their window inclusive: raised
    /// at `t` with window `W`, the last active instant is exactly `t + W`.
    pub fn event_active(&self, channel: &str, name: &str) -> bool {
        let fact = EventFact {
            channel: channel.trim().to_ascii_lowercase(),
            name: name.trim().to_ascii_lowercase(),
        };
        self.persistent_events.contains(&fact)
            || self
                .transient_events
                .get(&fact)
                .map(|expiry| *expiry >= self.now)
                .unwrap_or(false)
    }

    /// Ingests a UPnP property change, applying the conventions described
    /// at the module level.
    pub fn apply_property_change(&mut self, change: &PropertyChange) {
        match change.variable.as_str() {
            OCCUPANTS_VARIABLE => {
                if let (Some(place), Some(list)) = (
                    self.device_places.get(&change.device).cloned(),
                    change.value.as_text(),
                ) {
                    let new_set: BTreeSet<PersonId> = list
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(PersonId::new)
                        .collect();
                    let old_set = self
                        .place_occupants
                        .get(&place)
                        .cloned()
                        .unwrap_or_default();
                    // Departures below bypass `set_presence`, so dirty the
                    // reader's place here once up front.
                    self.log_place_dirt(&place);
                    for gone in old_set.difference(&new_set) {
                        if self.presence.get(gone) == Some(&place) {
                            self.presence.remove(gone);
                        }
                    }
                    for person in &new_set {
                        self.set_presence(person.clone(), Some(place.clone()));
                    }
                    self.place_occupants.insert(place, new_set);
                }
            }
            ARRIVAL_VARIABLE => {
                if let Some(payload) = change.value.as_text() {
                    if let Some((channel, name)) = payload.split_once('|') {
                        self.raise_event(channel, name);
                        // "someone returns home" listens on the generic
                        // person channel.
                        if channel.starts_with("person:") {
                            self.raise_event(ANY_PERSON_CHANNEL, name);
                        }
                    }
                }
            }
            ON_AIR_VARIABLE => {
                if let Some(listing) = change.value.as_text() {
                    self.clear_persistent_channel(TV_GUIDE_CHANNEL);
                    for program in listing.split(';') {
                        let program = program.trim();
                        if !program.is_empty() {
                            self.set_persistent_event(TV_GUIDE_CHANNEL, program);
                        }
                    }
                }
            }
            _ => {}
        }
        // Every change, including the special ones, is visible as a state
        // value (so "the TV is turned on" reads power(tv)), stamped with
        // the change's own timestamp for staleness tracking.
        let key = SensorKey::new(change.device.clone(), change.variable.clone());
        self.mirror_sensor(&key, &change.value, change.at);
        self.sensor_stamps.insert(key.clone(), change.at);
        self.sensor_values.insert(key, change.value.clone());
    }

    /// Sensor slots written since the last [`ContextStore::clear_dirt`],
    /// with the stamp of each write.
    pub(crate) fn dirty_sensors(&self) -> &[(SensorSlot, SimTime)] {
        &self.dirty_sensors
    }

    /// Places whose occupancy changed since the last clear.
    pub(crate) fn dirty_places(&self) -> &[PlaceSlot] {
        &self.dirty_places
    }

    /// Event channels with raised/cleared facts since the last clear.
    pub(crate) fn dirty_channels(&self) -> &[ChannelSlot] {
        &self.dirty_channels
    }

    /// Empties the dirt log (capacity is retained, so a steady-state step
    /// with no traffic performs no allocation).
    pub(crate) fn clear_dirt(&mut self) {
        self.dirty_sensors.clear();
        self.dirty_places.clear();
        self.dirty_channels.clear();
    }

    /// Every interned sensor slot that has a recorded update stamp. Used
    /// to rebuild the freshness deadline heap when the policy changes.
    pub(crate) fn stamped_sensor_slots(&self) -> Vec<(SensorSlot, SimTime)> {
        let Some(mirror) = &self.ir else {
            return Vec::new();
        };
        let interner = mirror.interner.read().expect("interner lock poisoned");
        self.sensor_stamps
            .iter()
            .filter_map(|(key, at)| interner.lookup_sensor(key).map(|slot| (slot, *at)))
            .collect()
    }

    fn place_has_occupants(&self, place: &PlaceId) -> bool {
        self.place_occupants
            .get(place)
            .map(|s| !s.is_empty())
            .unwrap_or(false)
    }
}

/// Slot-indexed reads for compiled-rule evaluation. Meaningful only after
/// [`ContextStore::attach_interner`] and [`ContextStore::sync_ir`]; without
/// them every slot reads as absent/inactive.
impl ContextView for ContextStore {
    fn sensor_value(&self, slot: SensorSlot) -> Option<&Value> {
        self.ir.as_ref()?.sensor_board.get(slot.index())?.as_ref()
    }

    fn sensor_read(&self, slot: SensorSlot) -> SensorRead<'_> {
        let Some(mirror) = &self.ir else {
            return SensorRead::AssumeFalse;
        };
        let value = mirror
            .sensor_board
            .get(slot.index())
            .and_then(|v| v.as_ref());
        let stamp = mirror.stamp_board.get(slot.index()).copied().flatten();
        self.read_policy(value, stamp)
    }

    fn event_active_slot(&self, slot: EventSlot) -> bool {
        let Some(mirror) = &self.ir else {
            return false;
        };
        if mirror
            .persistent_board
            .get(slot.index())
            .copied()
            .unwrap_or(false)
        {
            return true;
        }
        mirror
            .transient_board
            .get(slot.index())
            .copied()
            .flatten()
            .map(|expiry| expiry >= self.now)
            .unwrap_or(false)
    }

    fn person_place(&self, person: &PersonId) -> Option<&PlaceId> {
        ContextStore::person_place(self, person)
    }

    fn place_occupied(&self, place: &PlaceId) -> bool {
        self.place_has_occupants(place)
    }

    fn now(&self) -> SimTime {
        ContextStore::now(self)
    }

    fn weekday(&self) -> Weekday {
        ContextStore::weekday(self)
    }

    fn date(&self) -> Date {
        ContextStore::date(self)
    }
}

impl Default for ContextStore {
    fn default() -> Self {
        // 2005-06-06, a Monday — the week of ICDCS 2005.
        ContextStore::new(Date::new(2005, 6, 6).expect("static date is valid"))
    }
}

/// Persistence support: deterministic iteration for checkpoint export and
/// stamp-preserving restore for replay. Crate-internal — the public
/// surface is `Engine::export_runtime_json`/`import_runtime_json`.
impl ContextStore {
    /// Every stored sensor value with its last-update stamp, sorted by
    /// key so checkpoint output is byte-stable.
    pub(crate) fn sensor_entries(&self) -> Vec<(SensorKey, Value, SimTime)> {
        let mut entries: Vec<_> = self
            .sensor_values
            .iter()
            .map(|(key, value)| {
                let at = self
                    .sensor_stamps
                    .get(key)
                    .copied()
                    .unwrap_or(SimTime::EPOCH);
                (key.clone(), value.clone(), at)
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries
    }

    /// Restores a sensor value under its *original* stamp (unlike
    /// [`ContextStore::set_value`], which stamps with the current clock),
    /// so freshness verdicts survive a restart unchanged.
    pub(crate) fn restore_sensor(&mut self, key: SensorKey, value: Value, at: SimTime) {
        self.mirror_sensor(&key, &value, at);
        self.sensor_stamps.insert(key.clone(), at);
        self.sensor_values.insert(key, value);
    }

    /// Every person with a known place, sorted by person.
    pub(crate) fn presence_entries(&self) -> Vec<(PersonId, PlaceId)> {
        let mut entries: Vec<_> = self
            .presence
            .iter()
            .map(|(person, place)| (person.clone(), place.clone()))
            .collect();
        entries.sort();
        entries
    }

    /// Active transient events with their expiry instants, in fact order.
    pub(crate) fn transient_event_entries(&self) -> Vec<(String, String, SimTime)> {
        self.transient_events
            .iter()
            .map(|(fact, expiry)| (fact.channel.clone(), fact.name.clone(), *expiry))
            .collect()
    }

    /// Restores a transient event under its original expiry (unlike
    /// [`ContextStore::raise_event`], which restarts the event window).
    pub(crate) fn restore_transient_event(&mut self, channel: &str, name: &str, expiry: SimTime) {
        let fact = EventFact {
            channel: channel.trim().to_ascii_lowercase(),
            name: name.trim().to_ascii_lowercase(),
        };
        self.mirror_transient(&fact.channel, &fact.name, expiry);
        self.log_channel_dirt(&fact.channel);
        self.transient_events.insert(fact, expiry);
    }

    /// Active persistent events, in fact order.
    pub(crate) fn persistent_event_entries(&self) -> Vec<(String, String)> {
        self.persistent_events
            .iter()
            .map(|fact| (fact.channel.clone(), fact.name.clone()))
            .collect()
    }

    /// The transient-event window currently in force.
    pub(crate) fn event_window(&self) -> SimDuration {
        self.event_window
    }

    /// Drops all *dynamic* context (sensor readings, presence, events)
    /// ahead of a checkpoint import, which restores a complete snapshot.
    /// Registry-derived device places survive: they come from the world,
    /// not from the checkpoint. The IR boards are cleared and marked for
    /// a full rebuild on the next [`ContextStore::sync_ir`].
    pub(crate) fn clear_dynamic_state(&mut self) {
        self.sensor_values.clear();
        self.sensor_stamps.clear();
        self.presence.clear();
        self.place_occupants.clear();
        self.transient_events.clear();
        self.persistent_events.clear();
        if let Some(mirror) = &mut self.ir {
            mirror.seen_revision = None;
            mirror.sensor_board.clear();
            mirror.stamp_board.clear();
            mirror.transient_board.clear();
            mirror.persistent_board.clear();
        }
        self.clear_dirt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadel_types::{Quantity, Unit};

    fn change(device: &str, variable: &str, value: Value) -> PropertyChange {
        PropertyChange {
            device: DeviceId::new(device),
            variable: variable.to_owned(),
            value,
            seq: 0,
            at: SimTime::EPOCH,
        }
    }

    #[test]
    fn sensor_values_are_stored() {
        let mut ctx = ContextStore::default();
        ctx.apply_property_change(&change(
            "thermo",
            "temperature",
            Value::Number(Quantity::from_integer(27, Unit::Celsius)),
        ));
        let key = SensorKey::new(DeviceId::new("thermo"), "temperature");
        assert_eq!(
            ctx.value(&key),
            Some(&Value::Number(Quantity::from_integer(27, Unit::Celsius)))
        );
        assert!(ctx
            .value(&SensorKey::new(DeviceId::new("x"), "y"))
            .is_none());
    }

    #[test]
    fn occupants_update_presence() {
        let mut ctx = ContextStore::default();
        ctx.set_device_place(DeviceId::new("rfid-lr"), PlaceId::new("living room"));
        ctx.apply_property_change(&change("rfid-lr", "occupants", Value::from("tom")));
        assert_eq!(
            ctx.person_place(&PersonId::new("tom")),
            Some(&PlaceId::new("living room"))
        );
        ctx.apply_property_change(&change("rfid-lr", "occupants", Value::from("alan,tom")));
        assert_eq!(ctx.occupants(&PlaceId::new("living room")).len(), 2);
        // Tom leaves.
        ctx.apply_property_change(&change("rfid-lr", "occupants", Value::from("alan")));
        assert_eq!(ctx.person_place(&PersonId::new("tom")), None);
        assert_eq!(
            ctx.person_place(&PersonId::new("alan")),
            Some(&PlaceId::new("living room"))
        );
    }

    #[test]
    fn moving_between_places_updates_both() {
        let mut ctx = ContextStore::default();
        ctx.set_device_place(DeviceId::new("rfid-hall"), PlaceId::new("hall"));
        ctx.set_device_place(DeviceId::new("rfid-lr"), PlaceId::new("living room"));
        ctx.apply_property_change(&change("rfid-hall", "occupants", Value::from("emily")));
        ctx.apply_property_change(&change("rfid-lr", "occupants", Value::from("emily")));
        // The living-room reader saw her last.
        assert_eq!(
            ctx.person_place(&PersonId::new("emily")),
            Some(&PlaceId::new("living room"))
        );
        // Hall reader reports empty.
        ctx.apply_property_change(&change("rfid-hall", "occupants", Value::from("")));
        assert_eq!(
            ctx.person_place(&PersonId::new("emily")),
            Some(&PlaceId::new("living room"))
        );
        assert!(ctx.occupants(&PlaceId::new("hall")).is_empty());
    }

    #[test]
    fn arrival_raises_transient_events_that_expire() {
        let mut ctx = ContextStore::default();
        ctx.apply_property_change(&change(
            "rfid-hall",
            "arrival",
            Value::from("person:alan|got home from work"),
        ));
        assert!(ctx.event_active("person:alan", "got home from work"));
        assert!(ctx.event_active("person", "got home from work")); // generic
        assert!(!ctx.event_active("person:emily", "got home from work"));
        // The empty reset publish does not clear the fact...
        ctx.apply_property_change(&change("rfid-hall", "arrival", Value::from("")));
        assert!(ctx.event_active("person:alan", "got home from work"));
        // ...but the window elapsing does.
        ctx.set_now(SimTime::EPOCH + DEFAULT_EVENT_WINDOW + SimDuration::from_secs(1));
        assert!(!ctx.event_active("person:alan", "got home from work"));
    }

    #[test]
    fn on_air_is_persistent_until_replaced() {
        let mut ctx = ContextStore::default();
        ctx.apply_property_change(&change("epg", "on-air", Value::from("Baseball Game")));
        assert!(ctx.event_active("tv-guide", "baseball game"));
        ctx.set_now(SimTime::EPOCH + SimDuration::from_hours(3));
        assert!(ctx.event_active("tv-guide", "baseball game")); // still on
        ctx.apply_property_change(&change("epg", "on-air", Value::from("News")));
        assert!(!ctx.event_active("tv-guide", "baseball game"));
        assert!(ctx.event_active("tv-guide", "news"));
        ctx.apply_property_change(&change("epg", "on-air", Value::from("")));
        assert!(!ctx.event_active("tv-guide", "news"));
    }

    #[test]
    fn calendar_advances_with_days() {
        let mut ctx = ContextStore::default(); // epoch = Monday 2005-06-06
        assert_eq!(ctx.weekday(), Weekday::Monday);
        ctx.set_now(SimTime::EPOCH + SimDuration::from_hours(49));
        assert_eq!(ctx.weekday(), Weekday::Wednesday);
        assert_eq!(ctx.date(), Date::new(2005, 6, 8).unwrap());
    }

    #[test]
    fn property_changes_stamp_with_their_own_time() {
        let mut ctx = ContextStore::default();
        let at = SimTime::EPOCH + SimDuration::from_minutes(90);
        ctx.apply_property_change(&PropertyChange {
            at,
            ..change(
                "thermo",
                "temperature",
                Value::Number(Quantity::from_integer(27, Unit::Celsius)),
            )
        });
        let key = SensorKey::new(DeviceId::new("thermo"), "temperature");
        assert_eq!(ctx.sensor_updated_at(&key), Some(at));
        assert_eq!(
            ctx.sensor_updated_at(&SensorKey::new(DeviceId::new("x"), "y")),
            None
        );
    }

    #[test]
    fn staleness_policy_degrades_reads() {
        let mut ctx = ContextStore::default();
        let key = SensorKey::new(DeviceId::new("thermo"), "temperature");
        let reading = Value::Number(Quantity::from_integer(30, Unit::Celsius));
        ctx.set_value(key.clone(), reading.clone());
        assert_eq!(ctx.sensor_updated_at(&key), Some(SimTime::EPOCH));

        // Default policy: readings never expire.
        ctx.set_now(SimTime::EPOCH + SimDuration::from_hours(5));
        assert_eq!(ctx.sensor_read_key(&key), SensorRead::Value(&reading));

        // With a 10-minute window the reading is long stale.
        let max = SimDuration::from_minutes(10);
        ctx.set_freshness_policy(FreshnessPolicy::new(FreshnessMode::FailClosed, max));
        assert_eq!(ctx.sensor_read_key(&key), SensorRead::AssumeFalse);
        ctx.set_freshness_policy(FreshnessPolicy::new(FreshnessMode::FailOpen, max));
        assert_eq!(ctx.sensor_read_key(&key), SensorRead::AssumeTrue);
        ctx.set_freshness_policy(FreshnessPolicy::new(FreshnessMode::HoldLastValue, max));
        assert_eq!(ctx.sensor_read_key(&key), SensorRead::Value(&reading));

        // Rewriting the value refreshes the stamp; an age of exactly
        // `max_age` still counts as fresh.
        ctx.set_freshness_policy(FreshnessPolicy::new(FreshnessMode::FailClosed, max));
        ctx.set_value(key.clone(), reading.clone());
        assert_eq!(ctx.sensor_read_key(&key), SensorRead::Value(&reading));
        ctx.set_now(ctx.now() + max);
        assert_eq!(ctx.sensor_read_key(&key), SensorRead::Value(&reading));
        ctx.set_now(ctx.now() + SimDuration::from_millis(1));
        assert_eq!(ctx.sensor_read_key(&key), SensorRead::AssumeFalse);

        // Absent keys fail closed under every mode.
        let missing = SensorKey::new(DeviceId::new("x"), "y");
        ctx.set_freshness_policy(FreshnessPolicy::new(FreshnessMode::FailOpen, max));
        assert_eq!(ctx.sensor_read_key(&missing), SensorRead::AssumeFalse);
    }

    #[test]
    fn custom_event_window() {
        let mut ctx = ContextStore::default();
        ctx.set_event_window(SimDuration::from_secs(30));
        ctx.raise_event("person", "arrives");
        ctx.set_now(SimTime::EPOCH + SimDuration::from_secs(29));
        assert!(ctx.event_active("person", "arrives"));
        ctx.set_now(SimTime::EPOCH + SimDuration::from_secs(31));
        assert!(!ctx.event_active("person", "arrives"));
    }

    #[test]
    fn event_window_boundary_is_inclusive() {
        // An event raised at t with window W is active at exactly t + W
        // (mirroring the `age == max_age` freshness rule) and gone one
        // millisecond later — whether the clock lands on the boundary
        // directly or arrives there via `set_now` expiry.
        let window = SimDuration::from_secs(30);
        let boundary = SimTime::EPOCH + window;

        let mut ctx = ContextStore::default();
        ctx.set_event_window(window);
        ctx.raise_event("person", "arrives");
        ctx.set_now(boundary);
        assert!(ctx.event_active("person", "arrives"));
        ctx.set_now(boundary + SimDuration::from_millis(1));
        assert!(!ctx.event_active("person", "arrives"));

        // Same verdicts when `now` was already past raise time before the
        // query (no intermediate set_now at the boundary).
        let mut ctx = ContextStore::default();
        ctx.set_event_window(window);
        ctx.raise_event("person", "arrives");
        ctx.set_now(boundary + SimDuration::from_millis(1));
        assert!(!ctx.event_active("person", "arrives"));
    }
}
