//! Condition evaluation against the live context, including the temporal
//! state needed for "held for" atoms.

use crate::context::ContextStore;
use cadel_ir::{HeldObserver, SensorRead};
use cadel_rule::{Atom, Condition, PresenceAtom, Subject};
use cadel_types::{SimTime, Value};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;

thread_local! {
    /// Reusable buffer for AST `HeldFor` fingerprints. The compiled path
    /// bakes fingerprints into its programs at lowering time; the
    /// interpreter used to allocate a fresh `String` per evaluation of
    /// every `HeldFor` atom — the hot-path allocation this scratch removes.
    /// The buffer is only borrowed *after* the inner atom has been fully
    /// evaluated, so nested `HeldFor` atoms cannot re-enter the borrow.
    static FINGERPRINT_SCRATCH: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Tracks since when each duration-qualified atom's inner fact has been
/// continuously true, so `door unlocked for 1 hour` can be decided.
///
/// Observed through the [`Evaluator`] on every engine evaluation — the
/// tracker records false→true transitions and resets on true→false.
#[derive(Clone, Debug, Default)]
pub struct HeldTracker {
    since: HashMap<String, SimTime>,
}

impl HeldTracker {
    /// Creates an empty tracker.
    pub fn new() -> HeldTracker {
        HeldTracker::default()
    }

    fn observe(&mut self, fingerprint: &str, inner_true: bool, now: SimTime) -> Option<SimTime> {
        if inner_true {
            if let Some(since) = self.since.get(fingerprint) {
                return Some(*since);
            }
            // Owned allocation only on the false→true transition.
            self.since.insert(fingerprint.to_owned(), now);
            Some(now)
        } else {
            self.since.remove(fingerprint);
            None
        }
    }

    /// Number of atoms currently being tracked as true.
    pub fn tracked(&self) -> usize {
        self.since.len()
    }

    /// Every tracked `(fingerprint, since)` pair, sorted by fingerprint
    /// so checkpoint export is byte-stable.
    pub(crate) fn entries(&self) -> Vec<(String, SimTime)> {
        let mut entries: Vec<_> = self
            .since
            .iter()
            .map(|(fingerprint, since)| (fingerprint.clone(), *since))
            .collect();
        entries.sort();
        entries
    }

    /// Restores a tracked atom under its original start-of-truth instant.
    pub(crate) fn restore(&mut self, fingerprint: String, since: SimTime) {
        self.since.insert(fingerprint, since);
    }

    /// Since when a fingerprint's inner fact has been continuously true,
    /// without observing (read-only; the [`HeldOverlay`] base lookup).
    pub(crate) fn held_since(&self, fingerprint: &str) -> Option<SimTime> {
        self.since.get(fingerprint).copied()
    }

    /// Applies one transition recorded by a [`HeldOverlay`] during
    /// read-only evaluation: `Some(since)` starts tracking, `None` stops.
    pub(crate) fn apply(&mut self, fingerprint: String, change: Option<SimTime>) {
        match change {
            Some(since) => {
                self.since.insert(fingerprint, since);
            }
            None => {
                self.since.remove(&fingerprint);
            }
        }
    }
}

/// Held-for observation against an *immutable* [`HeldTracker`], recording
/// transitions instead of applying them — the observer handed to parallel
/// evaluation workers, whose phase must not mutate shared state.
///
/// Within one rule the overlay gives the same read-your-writes visibility
/// the mutable tracker would (an `until` clause sees its trigger's
/// observations). Across rules every worker sees the step-start snapshot;
/// that matches the serial engine because fingerprints are pure functions
/// of the atom, so two rules sharing a fingerprint evaluate its inner fact
/// identically against the same immutable context and can never record
/// conflicting transitions. The serial commit phase drains the recorded
/// transitions and applies them in ascending `RuleId` order.
#[derive(Debug)]
pub(crate) struct HeldOverlay<'a> {
    base: &'a HeldTracker,
    overlay: HashMap<String, Option<SimTime>>,
}

impl<'a> HeldOverlay<'a> {
    /// An empty overlay over the step-start tracker snapshot.
    pub(crate) fn new(base: &'a HeldTracker) -> HeldOverlay<'a> {
        HeldOverlay {
            base,
            overlay: HashMap::new(),
        }
    }

    /// Drains the recorded transitions, sorted by fingerprint so commit
    /// application (and anything derived from it) is byte-stable.
    pub(crate) fn take_transitions(&mut self) -> Vec<(String, Option<SimTime>)> {
        if self.overlay.is_empty() {
            return Vec::new();
        }
        let mut out: Vec<_> = self.overlay.drain().collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

impl HeldObserver for HeldOverlay<'_> {
    fn observe(&mut self, fingerprint: &str, inner_true: bool, now: SimTime) -> Option<SimTime> {
        let current = match self.overlay.get(fingerprint) {
            Some(entry) => *entry,
            None => self.base.held_since(fingerprint),
        };
        if inner_true {
            if let Some(since) = current {
                return Some(since);
            }
            self.overlay.insert(fingerprint.to_owned(), Some(now));
            Some(now)
        } else {
            // Record the removal only when there is something to remove,
            // mirroring `HeldTracker::observe`'s no-op remove.
            if current.is_some() {
                self.overlay.insert(fingerprint.to_owned(), None);
            }
            None
        }
    }
}

/// Compiled programs and the AST interpreter share one tracker: lowering
/// reproduces the interpreter's fingerprints byte-for-byte, so both
/// evaluation paths observe (and reset) the same continuous-truth state.
impl cadel_ir::HeldObserver for HeldTracker {
    fn observe(&mut self, fingerprint: &str, inner_true: bool, now: SimTime) -> Option<SimTime> {
        HeldTracker::observe(self, fingerprint, inner_true, now)
    }
}

/// Evaluates conditions against a [`ContextStore`].
///
/// Generic over the held-for observer so the same interpreter serves the
/// serial engine (mutable [`HeldTracker`]) and the parallel evaluation
/// workers (read-only `HeldOverlay`).
pub struct Evaluator<'a, H = HeldTracker> {
    ctx: &'a ContextStore,
    held: &'a mut H,
}

impl<'a, H: HeldObserver> Evaluator<'a, H> {
    /// Creates an evaluator borrowing the context and the held-for state.
    pub fn new(ctx: &'a ContextStore, held: &'a mut H) -> Evaluator<'a, H> {
        Evaluator { ctx, held }
    }

    /// Whether a condition holds right now.
    pub fn condition_holds(&mut self, condition: &Condition) -> bool {
        match condition {
            Condition::True => true,
            Condition::Atom(atom) => self.atom_holds(atom),
            Condition::And(cs) => cs.iter().all(|c| self.condition_holds(c)),
            Condition::Or(cs) => cs.iter().any(|c| self.condition_holds(c)),
        }
    }

    /// Whether an atom holds right now.
    pub fn atom_holds(&mut self, atom: &Atom) -> bool {
        match atom {
            // Sensor-backed atoms read through the freshness policy, the
            // same one the compiled path applies in `ir::eval_pred` —
            // degraded verdicts must agree between the two evaluators.
            Atom::Constraint(c) => match self.ctx.sensor_read_key(c.sensor()) {
                SensorRead::Value(Value::Number(q)) => {
                    if !q.is_comparable_to(&c.threshold()) {
                        cadel_ir::note_type_mismatch("ast", c.sensor(), q);
                    }
                    c.holds_for(q)
                }
                SensorRead::Value(other) => {
                    // Present but non-numeric: false, but no longer
                    // silently — the mismatch is counted and reported.
                    cadel_ir::note_type_mismatch("ast", c.sensor(), other);
                    false
                }
                SensorRead::AssumeFalse => false,
                SensorRead::AssumeTrue => true,
            },
            Atom::State(s) => match self.ctx.sensor_read_key(&s.sensor_key()) {
                SensorRead::Value(v) => s.holds_for(v),
                SensorRead::AssumeTrue => true,
                SensorRead::AssumeFalse => false,
            },
            Atom::Presence(p) => self.presence_holds(p),
            Atom::Event(e) => self.ctx.event_active(e.channel(), e.name()),
            Atom::Time(w) => w.contains(self.ctx.now().time_of_day()),
            Atom::Weekday(w) => self.ctx.weekday() == *w,
            Atom::Date(d) => self.ctx.date() == *d,
            Atom::HeldFor { inner, duration } => {
                let inner_true = self.atom_holds(inner);
                let now = self.ctx.now();
                FINGERPRINT_SCRATCH.with(|scratch| {
                    let mut fingerprint = scratch.borrow_mut();
                    fingerprint.clear();
                    write!(fingerprint, "{inner}~{}", duration.as_millis())
                        .expect("formatting into a String cannot fail");
                    match self.held.observe(&fingerprint, inner_true, now) {
                        Some(since) => now.since(since) >= *duration,
                        None => false,
                    }
                })
            }
            // `Atom` is non-exhaustive: future atom kinds default to false
            // (fail closed) until evaluation support is added.
            _ => false,
        }
    }

    fn presence_holds(&self, p: &PresenceAtom) -> bool {
        match p.subject() {
            Subject::Person(person) => self.ctx.person_place(person) == Some(p.place()),
            Subject::Somebody => !self.ctx.occupants(p.place()).is_empty(),
            Subject::Nobody => self.ctx.occupants(p.place()).is_empty(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadel_rule::{ConstraintAtom, EventAtom, StateAtom};
    use cadel_simplex::RelOp;
    use cadel_types::{
        DayPart, DeviceId, PersonId, PlaceId, Quantity, SensorKey, SimDuration, Unit,
    };

    fn ctx_at(now: SimTime) -> ContextStore {
        let mut ctx = ContextStore::default();
        ctx.set_now(now);
        ctx
    }

    fn eval(ctx: &ContextStore, held: &mut HeldTracker, atom: &Atom) -> bool {
        Evaluator::new(ctx, held).atom_holds(atom)
    }

    #[test]
    fn constraint_atoms_need_a_reading() {
        let mut ctx = ctx_at(SimTime::EPOCH);
        let mut held = HeldTracker::new();
        let key = SensorKey::new(DeviceId::new("thermo"), "temperature");
        let atom = Atom::Constraint(ConstraintAtom::new(
            key.clone(),
            RelOp::Gt,
            Quantity::from_integer(26, Unit::Celsius),
        ));
        assert!(!eval(&ctx, &mut held, &atom)); // no reading yet
        ctx.set_value(
            key.clone(),
            Value::Number(Quantity::from_integer(28, Unit::Celsius)),
        );
        assert!(eval(&ctx, &mut held, &atom));
        ctx.set_value(
            key,
            Value::Number(Quantity::from_integer(25, Unit::Celsius)),
        );
        assert!(!eval(&ctx, &mut held, &atom));
    }

    #[test]
    fn state_atom_evaluation() {
        let mut ctx = ctx_at(SimTime::EPOCH);
        let mut held = HeldTracker::new();
        let atom = Atom::State(StateAtom::new(
            DeviceId::new("tv"),
            "power",
            Value::Bool(true),
        ));
        assert!(!eval(&ctx, &mut held, &atom));
        ctx.set_value(
            SensorKey::new(DeviceId::new("tv"), "power"),
            Value::Bool(true),
        );
        assert!(eval(&ctx, &mut held, &atom));
    }

    #[test]
    fn stale_readings_follow_the_freshness_policy() {
        use crate::context::{FreshnessMode, FreshnessPolicy};

        let mut ctx = ctx_at(SimTime::EPOCH);
        let mut held = HeldTracker::new();
        let key = SensorKey::new(DeviceId::new("thermo"), "temperature");
        let hot = Atom::Constraint(ConstraintAtom::new(
            key.clone(),
            RelOp::Gt,
            Quantity::from_integer(26, Unit::Celsius),
        ));
        let cold = Atom::Constraint(ConstraintAtom::new(
            key.clone(),
            RelOp::Lt,
            Quantity::from_integer(0, Unit::Celsius),
        ));
        ctx.set_value(
            key,
            Value::Number(Quantity::from_integer(30, Unit::Celsius)),
        );
        ctx.set_now(SimTime::EPOCH + SimDuration::from_hours(1)); // reading now 1h old
        let max = SimDuration::from_minutes(10);

        ctx.set_freshness_policy(FreshnessPolicy::new(FreshnessMode::HoldLastValue, max));
        assert!(eval(&ctx, &mut held, &hot)); // last value still used
        assert!(!eval(&ctx, &mut held, &cold));

        ctx.set_freshness_policy(FreshnessPolicy::new(FreshnessMode::FailClosed, max));
        assert!(!eval(&ctx, &mut held, &hot)); // 30°C reading ignored
        assert!(!eval(&ctx, &mut held, &cold));

        ctx.set_freshness_policy(FreshnessPolicy::new(FreshnessMode::FailOpen, max));
        assert!(eval(&ctx, &mut held, &hot));
        assert!(eval(&ctx, &mut held, &cold)); // even the false predicate
    }

    #[test]
    fn presence_subjects() {
        let mut ctx = ctx_at(SimTime::EPOCH);
        let mut held = HeldTracker::new();
        let lr = PlaceId::new("living room");
        let tom_at = Atom::Presence(PresenceAtom::person_at("tom", "living room"));
        let somebody = Atom::Presence(PresenceAtom::new(Subject::Somebody, lr.clone()));
        let nobody = Atom::Presence(PresenceAtom::new(Subject::Nobody, lr.clone()));

        assert!(!eval(&ctx, &mut held, &tom_at));
        assert!(!eval(&ctx, &mut held, &somebody));
        assert!(eval(&ctx, &mut held, &nobody));

        ctx.set_presence(PersonId::new("tom"), Some(lr));
        assert!(eval(&ctx, &mut held, &tom_at));
        assert!(eval(&ctx, &mut held, &somebody));
        assert!(!eval(&ctx, &mut held, &nobody));
    }

    #[test]
    fn time_window_evaluation() {
        let mut held = HeldTracker::new();
        let evening = Atom::Time(DayPart::Evening.window());
        // 18:00 is evening; 10:00 is not.
        let ctx = ctx_at(SimTime::EPOCH + SimDuration::from_hours(18));
        assert!(eval(&ctx, &mut held, &evening));
        let ctx = ctx_at(SimTime::EPOCH + SimDuration::from_hours(10));
        assert!(!eval(&ctx, &mut held, &evening));
    }

    #[test]
    fn held_for_requires_continuous_truth() {
        let mut ctx = ctx_at(SimTime::EPOCH);
        let mut held = HeldTracker::new();
        let key = SensorKey::new(DeviceId::new("door"), "locked");
        let unlocked = Atom::State(StateAtom::new(
            DeviceId::new("door"),
            "locked",
            Value::Bool(false),
        ));
        let for_an_hour = Atom::held_for(unlocked, SimDuration::from_hours(1));

        // Unlocked at t=0.
        ctx.set_value(key.clone(), Value::Bool(false));
        assert!(!eval(&ctx, &mut held, &for_an_hour)); // just started
        assert_eq!(held.tracked(), 1);

        // 30 minutes later: still not an hour.
        ctx.set_now(SimTime::EPOCH + SimDuration::from_minutes(30));
        assert!(!eval(&ctx, &mut held, &for_an_hour));

        // 61 minutes: fires.
        ctx.set_now(SimTime::EPOCH + SimDuration::from_minutes(61));
        assert!(eval(&ctx, &mut held, &for_an_hour));

        // Door relocked: resets the tracker.
        ctx.set_value(key.clone(), Value::Bool(true));
        assert!(!eval(&ctx, &mut held, &for_an_hour));
        assert_eq!(held.tracked(), 0);

        // Unlocked again: the hour starts over.
        ctx.set_value(key, Value::Bool(false));
        ctx.set_now(SimTime::EPOCH + SimDuration::from_minutes(90));
        assert!(!eval(&ctx, &mut held, &for_an_hour));
        ctx.set_now(SimTime::EPOCH + SimDuration::from_minutes(151));
        assert!(eval(&ctx, &mut held, &for_an_hour));
    }

    #[test]
    fn condition_tree_evaluation() {
        let mut ctx = ctx_at(SimTime::EPOCH);
        let mut held = HeldTracker::new();
        ctx.raise_event("tv-guide", "baseball game");
        let baseball = Condition::Atom(Atom::Event(EventAtom::new("tv-guide", "baseball game")));
        let movie = Condition::Atom(Atom::Event(EventAtom::new("tv-guide", "movie")));

        let mut ev = Evaluator::new(&ctx, &mut held);
        assert!(ev.condition_holds(&Condition::True));
        assert!(ev.condition_holds(&baseball));
        assert!(!ev.condition_holds(&movie));
        assert!(ev.condition_holds(&baseball.clone().or(movie.clone())));
        assert!(!ev.condition_holds(&baseball.and(movie)));
    }
}
