//! The read-only parallel evaluation phase of the sharded engine step.
//!
//! [`Engine::step`](crate::Engine::step) runs in three phases: a batched
//! ingest (serial, mutates the context), this evaluation phase (read-only,
//! optionally parallel), and a serial commit. Workers here share the
//! engine's state immutably — the [`ContextStore`] snapshot, the rule
//! database with its compiled programs, the step-start [`HeldTracker`] and
//! the holder table — and return per-rule [`EvalVerdict`]s plus the
//! held-for transitions they *observed* (via [`HeldOverlay`]) instead of
//! mutating anything. The commit phase applies verdicts in ascending
//! `RuleId` order, so a parallel run is byte-identical to a serial one;
//! see `docs/CONCURRENCY.md` for the determinism argument.
//!
//! Sharding is by contiguous chunks of the ascending candidate list:
//! concatenating the shard outputs in shard order restores the global
//! `RuleId` order without a sort.

use super::ActiveHolder;
use crate::context::ContextStore;
use crate::eval::{Evaluator, HeldOverlay, HeldTracker};
use cadel_rule::RuleDb;
use cadel_types::{DeviceId, RuleId, SimTime};
use std::collections::HashMap;
use std::time::Instant;

/// The outcome of evaluating one candidate rule against the snapshot.
/// Everything the serial commit phase needs; nothing here references
/// worker-local state.
pub(crate) struct EvalVerdict {
    /// The evaluated rule.
    pub rule: RuleId,
    /// Whether the trigger condition holds.
    pub now_true: bool,
    /// Whether the `until` clause demands a release: the rule has one,
    /// currently holds its device, and the clause evaluates true.
    pub until_release: bool,
    /// Compiled evaluation was requested but unavailable (AST fallback).
    pub fallback: bool,
    /// The verdict came from a compiled program.
    pub compiled: bool,
    /// Held-for transitions observed while evaluating this rule, sorted
    /// by fingerprint; `Some(since)` starts tracking, `None` stops it.
    pub held: Vec<(String, Option<SimTime>)>,
}

/// Immutable borrows of everything evaluation reads. Built once per step
/// and shared by every worker thread — all fields are `Sync`, which the
/// `thread::scope` spawn below enforces at compile time.
pub(crate) struct EvalContext<'a> {
    pub rules: &'a RuleDb,
    pub ctx: &'a ContextStore,
    pub held: &'a HeldTracker,
    pub holders: &'a HashMap<DeviceId, ActiveHolder>,
    pub use_compiled: bool,
}

/// Timing evidence from one evaluation pass, for the shard metrics.
/// Owned by the engine and recycled across steps so the idle hot path
/// performs no per-step allocations.
#[derive(Default)]
pub(crate) struct EvalStats {
    /// Worker threads actually used (1 = serial path).
    pub threads: usize,
    /// Candidates per shard, parallel to `shard_ns`.
    pub shard_sizes: Vec<usize>,
    /// Wall-clock nanoseconds each shard spent evaluating.
    pub shard_ns: Vec<u64>,
}

impl EvalStats {
    fn reset(&mut self, threads: usize) {
        self.threads = threads;
        self.shard_sizes.clear();
        self.shard_ns.clear();
    }
}

impl EvalContext<'_> {
    /// Evaluates one rule against the snapshot. `None` for vanished or
    /// disabled rules (they produce no verdict, exactly as the serial
    /// loop skipped them). The overlay is drained into the verdict, so
    /// one overlay serves a whole shard.
    fn eval_rule(&self, id: RuleId, overlay: &mut HeldOverlay<'_>) -> Option<EvalVerdict> {
        let rule = self.rules.get(id)?;
        if !rule.is_enabled() {
            return None;
        }
        let device = rule.action().device();
        // Compiled evaluation runs over the rule's span in the shared
        // program arena (contiguous predicate/opcode tables) rather than
        // a per-rule allocation.
        let arena = self.rules.arena();
        let program = if self.use_compiled {
            self.rules.program_ref(id).copied()
        } else {
            None
        };
        let fallback = self.use_compiled && program.is_none();
        let now_true = match &program {
            Some(r) => arena.condition_holds(r, self.ctx, overlay),
            None => Evaluator::new(self.ctx, overlay).condition_holds(rule.condition()),
        };
        // The `until` clause is evaluated only while the rule holds its
        // device. The holder table cannot change between the step-start
        // snapshot and this rule's turn in the commit loop: commits only
        // *remove* a device's holder when that holder itself releases, so
        // a rule that was not holding at snapshot time is not holding at
        // commit time either (and vice versa).
        let mut until_release = false;
        if let Some(until) = rule.until() {
            let holder_here = self
                .holders
                .get(device)
                .map(|h| h.rule == id)
                .unwrap_or(false);
            if holder_here {
                until_release = match &program {
                    Some(r) => arena.until_holds(r, self.ctx, overlay).unwrap_or(false),
                    None => Evaluator::new(self.ctx, overlay).condition_holds(until),
                };
            }
        }
        Some(EvalVerdict {
            rule: id,
            now_true,
            until_release,
            fallback,
            compiled: program.is_some(),
            held: overlay.take_transitions(),
        })
    }
}

/// Evaluates every candidate, sharded across up to `threads` scoped
/// worker threads (`threads <= 1`, or fewer candidates than threads,
/// falls back to the serial loop). Verdicts come back in ascending
/// `RuleId` order either way.
pub(crate) fn evaluate(
    ec: &EvalContext<'_>,
    candidates: &[RuleId],
    threads: usize,
    stats: &mut EvalStats,
) -> Vec<EvalVerdict> {
    let threads = threads.clamp(1, candidates.len().max(1));
    if threads == 1 {
        let start = Instant::now();
        let mut overlay = HeldOverlay::new(ec.held);
        let verdicts: Vec<EvalVerdict> = candidates
            .iter()
            .filter_map(|&id| ec.eval_rule(id, &mut overlay))
            .collect();
        stats.reset(1);
        stats.shard_sizes.push(candidates.len());
        stats.shard_ns.push(start.elapsed().as_nanos() as u64);
        return verdicts;
    }

    let shard_size = candidates.len().div_ceil(threads);
    let shards: Vec<&[RuleId]> = candidates.chunks(shard_size).collect();
    stats.reset(shards.len());
    stats.shard_sizes.extend(shards.iter().map(|s| s.len()));
    let mut verdicts = Vec::with_capacity(candidates.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|shard| {
                scope.spawn(move || {
                    let start = Instant::now();
                    let mut overlay = HeldOverlay::new(ec.held);
                    let out: Vec<EvalVerdict> = shard
                        .iter()
                        .filter_map(|&id| ec.eval_rule(id, &mut overlay))
                        .collect();
                    (out, start.elapsed().as_nanos() as u64)
                })
            })
            .collect();
        for handle in handles {
            let (out, ns) = handle.join().expect("evaluation worker panicked");
            verdicts.extend(out);
            stats.shard_ns.push(ns);
        }
    });
    verdicts
}

#[cfg(test)]
mod tests {
    /// The evaluation phase shares these across worker threads; losing
    /// `Sync` on any of them would turn the parallel step into a compile
    /// error far from the cause, so pin it here.
    #[test]
    fn shared_eval_state_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<cadel_rule::RuleDb>();
        assert_sync::<crate::context::ContextStore>();
        assert_sync::<crate::eval::HeldTracker>();
        assert_sync::<cadel_ir::RuleProgram>();
        assert_sync::<cadel_ir::ProgramArena>();
        assert_sync::<super::EvalContext<'_>>();
    }
}
