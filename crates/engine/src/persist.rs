//! Runtime-state checkpointing: export the engine's mid-flight state as
//! a deterministic JSON document and import it into a fresh engine.
//!
//! Rules and priority orders are *not* in here — they are durable
//! mutations with their own WAL records, and compiled IR programs are
//! always rebuilt on replay (`RuleDb` recompiles on insert). What this
//! module captures is everything else a restart would otherwise forget:
//!
//! * the context store's dynamic state (sensor readings **with their
//!   original freshness stamps**, presence, transient events with their
//!   original expiries, persistent events, clock, event window,
//!   freshness policy);
//! * `held_for` trackers (since-instants of duration-qualified atoms);
//! * edge-detection state, device holds, contenders, latches and
//!   notation sets;
//! * the fault-tolerance layer: breaker machines (including grown
//!   cooldowns), the retry queue, the dead-letter queue and the
//!   sequence counter.
//!
//! Export is byte-stable: every hash-map is emitted in sorted order, so
//! two engines in identical states serialize identically — the property
//! the crash-matrix test leans on.
//!
//! This is a child module of `engine` so it can reach the engine's
//! private runtime fields without widening their visibility.

use super::{ActiveHolder, Engine};
use crate::context::{FreshnessMode, FreshnessPolicy};
use crate::error::EngineError;
use crate::resilience::{
    BreakerState, DeadLetter, Resilience, ResilienceConfig, RetryEntry, RetryKind,
};
use cadel_rule::codec::{action_from_json, action_to_json, value_from_json, value_to_json};
use cadel_types::json::Json;
use cadel_types::{DeviceId, PersonId, PlaceId, RuleId, SensorKey, SimDuration, SimTime};
use std::collections::BTreeSet;

/// Schema version of the runtime checkpoint document.
const RUNTIME_VERSION: i64 = 1;

/// Serializes a freshness policy (mode + optional max age).
pub fn freshness_policy_to_json(policy: &FreshnessPolicy) -> Json {
    let mut members = vec![("mode", Json::str(mode_name(policy.mode)))];
    if let Some(max_age) = policy.max_age {
        members.push(("max_age_ms", Json::Int(max_age.as_millis() as i64)));
    }
    Json::obj(members)
}

/// Parses a freshness policy serialized by [`freshness_policy_to_json`].
///
/// # Errors
///
/// Returns [`EngineError::Persist`] on an out-of-schema value.
pub fn freshness_policy_from_json(doc: &Json) -> Result<FreshnessPolicy, EngineError> {
    let mode = match get_str(doc, "mode")? {
        "fail-closed" => FreshnessMode::FailClosed,
        "fail-open" => FreshnessMode::FailOpen,
        "hold-last-value" => FreshnessMode::HoldLastValue,
        other => return Err(bad(format!("unknown freshness mode '{other}'"))),
    };
    let max_age = match doc.get("max_age_ms") {
        Some(ms) => Some(SimDuration::from_millis(int_of(ms, "max_age_ms")? as u64)),
        None => None,
    };
    Ok(FreshnessPolicy { mode, max_age })
}

fn mode_name(mode: FreshnessMode) -> &'static str {
    match mode {
        FreshnessMode::FailClosed => "fail-closed",
        FreshnessMode::FailOpen => "fail-open",
        FreshnessMode::HoldLastValue => "hold-last-value",
    }
}

impl Engine {
    /// Exports the engine's runtime state as a deterministic JSON
    /// document (see the module docs for exactly what is covered).
    /// Identical engine states always produce identical documents.
    pub fn export_runtime_json(&self) -> Json {
        let ctx = &self.ctx;
        let sensors = Json::Arr(
            ctx.sensor_entries()
                .into_iter()
                .map(|(key, value, at)| {
                    Json::obj(vec![
                        ("device", Json::str(key.device().as_str())),
                        ("variable", Json::str(key.variable())),
                        ("value", value_to_json(&value)),
                        ("at", Json::Int(at.as_millis() as i64)),
                    ])
                })
                .collect(),
        );
        let presence = Json::Arr(
            ctx.presence_entries()
                .into_iter()
                .map(|(person, place)| {
                    Json::obj(vec![
                        ("person", Json::str(person.as_str())),
                        ("place", Json::str(place.as_str())),
                    ])
                })
                .collect(),
        );
        let transient = Json::Arr(
            ctx.transient_event_entries()
                .into_iter()
                .map(|(channel, name, expiry)| {
                    Json::obj(vec![
                        ("channel", Json::str(&channel)),
                        ("name", Json::str(&name)),
                        ("expires_at", Json::Int(expiry.as_millis() as i64)),
                    ])
                })
                .collect(),
        );
        let persistent = Json::Arr(
            ctx.persistent_event_entries()
                .into_iter()
                .map(|(channel, name)| {
                    Json::obj(vec![
                        ("channel", Json::str(&channel)),
                        ("name", Json::str(&name)),
                    ])
                })
                .collect(),
        );
        let held = Json::Arr(
            self.held
                .entries()
                .into_iter()
                .map(|(fingerprint, since)| {
                    Json::obj(vec![
                        ("fingerprint", Json::str(&fingerprint)),
                        ("since", Json::Int(since.as_millis() as i64)),
                    ])
                })
                .collect(),
        );

        let mut last_state: Vec<_> = self.last_state.iter().collect();
        last_state.sort_by_key(|(id, _)| **id);
        let last_state = Json::Arr(
            last_state
                .into_iter()
                .map(|(id, state)| {
                    Json::obj(vec![
                        ("rule", Json::Int(id.raw() as i64)),
                        ("state", Json::Bool(*state)),
                    ])
                })
                .collect(),
        );

        let mut holders: Vec<_> = self.holders.iter().collect();
        holders.sort_by_key(|(device, _)| (*device).clone());
        let holders = Json::Arr(
            holders
                .into_iter()
                .map(|(device, holder)| {
                    Json::obj(vec![
                        ("device", Json::str(device.as_str())),
                        ("rule", Json::Int(holder.rule.raw() as i64)),
                    ])
                })
                .collect(),
        );

        let mut contenders: Vec<_> = self
            .contenders
            .iter()
            .filter(|(_, rules)| !rules.is_empty())
            .collect();
        contenders.sort_by_key(|(device, _)| (*device).clone());
        let contenders = Json::Arr(
            contenders
                .into_iter()
                .map(|(device, rules)| {
                    Json::obj(vec![
                        ("device", Json::str(device.as_str())),
                        (
                            "rules",
                            Json::Arr(rules.iter().map(|id| Json::Int(id.raw() as i64)).collect()),
                        ),
                    ])
                })
                .collect(),
        );

        let resilience = resilience_to_json(&self.resilience);

        Json::obj(vec![
            ("version", Json::Int(RUNTIME_VERSION)),
            ("now", Json::Int(ctx.now().as_millis() as i64)),
            (
                "event_window_ms",
                Json::Int(ctx.event_window().as_millis() as i64),
            ),
            (
                "freshness",
                freshness_policy_to_json(&ctx.freshness_policy()),
            ),
            ("sensors", sensors),
            ("presence", presence),
            ("transient_events", transient),
            ("persistent_events", persistent),
            ("held", held),
            ("last_state", last_state),
            ("holders", holders),
            ("contenders", contenders),
            ("latched", rule_set_to_json(&self.latched)),
            ("suppress_noted", rule_set_to_json(&self.suppress_noted)),
            ("fallback_noted", rule_set_to_json(&self.fallback_noted)),
            ("defer_noted", rule_set_to_json(&self.defer_noted)),
            (
                "deferred_devices",
                Json::Arr(
                    self.deferred_devices
                        .iter()
                        .map(|d| Json::str(d.as_str()))
                        .collect(),
                ),
            ),
            ("resilience", resilience),
        ])
    }

    /// Imports a checkpoint produced by [`Engine::export_runtime_json`],
    /// replacing the engine's entire runtime state. Rules and priorities
    /// must already be in place (they replay from their own records);
    /// sensor stamps, event expiries, holds and breaker machines come
    /// back exactly as exported.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Persist`] on an out-of-schema document.
    /// The engine's runtime state is unspecified after an error — import
    /// into a fresh engine (the recovery path always does).
    pub fn import_runtime_json(&mut self, doc: &Json) -> Result<(), EngineError> {
        let version = get_int(doc, "version")?;
        if version != RUNTIME_VERSION {
            return Err(bad(format!(
                "runtime checkpoint version {version} unsupported (expected {RUNTIME_VERSION})"
            )));
        }

        // Clock first: restores below must not be expired by a later
        // set_now, and set_now itself expires nothing when the maps are
        // already clear.
        self.ctx.clear_dynamic_state();
        self.ctx
            .set_now(SimTime::from_millis(get_int(doc, "now")? as u64));
        self.ctx.set_event_window(SimDuration::from_millis(
            get_int(doc, "event_window_ms")? as u64
        ));
        self.ctx
            .set_freshness_policy(freshness_policy_from_json(require(doc, "freshness")?)?);

        for entry in arr_of(doc, "sensors")? {
            let key = SensorKey::new(
                DeviceId::new(get_str(entry, "device")?),
                get_str(entry, "variable")?,
            );
            let value = value_from_json(require(entry, "value")?)
                .map_err(|e| bad(format!("sensor value: {e}")))?;
            let at = SimTime::from_millis(get_int(entry, "at")? as u64);
            self.ctx.restore_sensor(key, value, at);
        }
        for entry in arr_of(doc, "presence")? {
            self.ctx.set_presence(
                PersonId::new(get_str(entry, "person")?),
                Some(PlaceId::new(get_str(entry, "place")?)),
            );
        }
        for entry in arr_of(doc, "persistent_events")? {
            self.ctx
                .set_persistent_event(get_str(entry, "channel")?, get_str(entry, "name")?);
        }
        for entry in arr_of(doc, "transient_events")? {
            self.ctx.restore_transient_event(
                get_str(entry, "channel")?,
                get_str(entry, "name")?,
                SimTime::from_millis(get_int(entry, "expires_at")? as u64),
            );
        }

        self.held = crate::eval::HeldTracker::new();
        for entry in arr_of(doc, "held")? {
            self.held.restore(
                get_str(entry, "fingerprint")?.to_owned(),
                SimTime::from_millis(get_int(entry, "since")? as u64),
            );
        }

        self.last_state.clear();
        for entry in arr_of(doc, "last_state")? {
            let state = require(entry, "state")?
                .as_bool()
                .ok_or_else(|| bad("'state' must be a boolean"))?;
            self.last_state.insert(rule_of(entry, "rule")?, state);
        }
        self.holders.clear();
        for entry in arr_of(doc, "holders")? {
            self.holders.insert(
                DeviceId::new(get_str(entry, "device")?),
                ActiveHolder {
                    rule: rule_of(entry, "rule")?,
                },
            );
        }
        self.contenders.clear();
        for entry in arr_of(doc, "contenders")? {
            let device = DeviceId::new(get_str(entry, "device")?);
            let mut rules = BTreeSet::new();
            for id in arr_of(entry, "rules")? {
                rules.insert(RuleId::new(
                    id.as_int()
                        .ok_or_else(|| bad("contender rule ids must be integers"))?
                        as u64,
                ));
            }
            self.contenders.insert(device, rules);
        }
        self.latched = rule_set_from_json(doc, "latched")?;
        self.suppress_noted = rule_set_from_json(doc, "suppress_noted")?;
        self.fallback_noted = rule_set_from_json(doc, "fallback_noted")?;
        self.defer_noted = rule_set_from_json(doc, "defer_noted")?;
        self.deferred_devices = arr_of(doc, "deferred_devices")?
            .iter()
            .map(|d| {
                d.as_str()
                    .map(DeviceId::new)
                    .ok_or_else(|| bad("deferred device ids must be strings"))
            })
            .collect::<Result<_, _>>()?;

        self.resilience = resilience_from_json(require(doc, "resilience")?)?;

        // Re-arm the trigger index's runtime-derived state (dwell and
        // freshness deadlines, true/pending membership) from the restored
        // snapshot, and remember which policy the deadlines cover.
        self.last_freshness = self.ctx.freshness_policy();
        self.index
            .rearm_after_import(&self.ctx, &self.held, &self.last_state);
        Ok(())
    }
}

fn resilience_to_json(resilience: &Resilience) -> Json {
    let config = resilience.config();
    let config_doc = Json::obj(vec![
        (
            "failure_threshold",
            Json::Int(config.failure_threshold as i64),
        ),
        ("cooldown_ms", Json::Int(config.cooldown.as_millis() as i64)),
        (
            "max_cooldown_ms",
            Json::Int(config.max_cooldown.as_millis() as i64),
        ),
        (
            "retry_base_ms",
            Json::Int(config.retry_base.as_millis() as i64),
        ),
        (
            "retry_cap_ms",
            Json::Int(config.retry_cap.as_millis() as i64),
        ),
        ("max_attempts", Json::Int(config.max_attempts as i64)),
        ("device_budget", Json::Int(config.device_budget as i64)),
        ("jitter_seed", Json::Int(config.jitter_seed as i64)),
        ("dlq_cap", Json::Int(config.dlq_cap as i64)),
    ]);
    let breakers = Json::Arr(
        resilience
            .breaker_entries()
            .map(|(device, breaker)| {
                Json::obj(vec![
                    ("device", Json::str(device.as_str())),
                    ("state", Json::str(breaker_state_name(breaker.state()))),
                    ("failures", Json::Int(breaker.consecutive_failures() as i64)),
                    (
                        "cooldown_ms",
                        Json::Int(breaker.cooldown().as_millis() as i64),
                    ),
                    (
                        "reopen_at",
                        Json::Int(breaker.reopen_at().as_millis() as i64),
                    ),
                ])
            })
            .collect(),
    );
    let queue = Json::Arr(
        resilience
            .queue_entries()
            .iter()
            .map(|entry| {
                Json::obj(vec![
                    ("seq", Json::Int(entry.seq as i64)),
                    ("rule", Json::Int(entry.rule.raw() as i64)),
                    ("device", Json::str(entry.device.as_str())),
                    ("action", action_to_json(&entry.action)),
                    ("kind", Json::str(kind_name(entry.kind))),
                    ("attempt", Json::Int(entry.attempt as i64)),
                    ("next_at", Json::Int(entry.next_at.as_millis() as i64)),
                ])
            })
            .collect(),
    );
    let dlq = Json::Arr(
        resilience
            .dead_letters()
            .iter()
            .map(|letter| {
                Json::obj(vec![
                    ("rule", Json::Int(letter.rule.raw() as i64)),
                    ("device", Json::str(letter.device.as_str())),
                    ("action", action_to_json(&letter.action)),
                    ("kind", Json::str(kind_name(letter.kind))),
                    ("attempts", Json::Int(letter.attempts as i64)),
                    ("reason", Json::str(&letter.reason)),
                    ("at", Json::Int(letter.at.as_millis() as i64)),
                ])
            })
            .collect(),
    );
    Json::obj(vec![
        ("config", config_doc),
        ("next_seq", Json::Int(resilience.next_seq() as i64)),
        ("breakers", breakers),
        ("queue", queue),
        ("dlq", dlq),
    ])
}

fn resilience_from_json(doc: &Json) -> Result<Resilience, EngineError> {
    let config_doc = require(doc, "config")?;
    let config = ResilienceConfig {
        failure_threshold: get_int(config_doc, "failure_threshold")? as u32,
        cooldown: SimDuration::from_millis(get_int(config_doc, "cooldown_ms")? as u64),
        max_cooldown: SimDuration::from_millis(get_int(config_doc, "max_cooldown_ms")? as u64),
        retry_base: SimDuration::from_millis(get_int(config_doc, "retry_base_ms")? as u64),
        retry_cap: SimDuration::from_millis(get_int(config_doc, "retry_cap_ms")? as u64),
        max_attempts: get_int(config_doc, "max_attempts")? as u32,
        device_budget: get_int(config_doc, "device_budget")? as usize,
        jitter_seed: get_int(config_doc, "jitter_seed")? as u64,
        // Absent in checkpoints written before the cap existed.
        dlq_cap: match config_doc.get("dlq_cap").and_then(Json::as_int) {
            Some(cap) => cap as usize,
            None => ResilienceConfig::default().dlq_cap,
        },
    };
    let mut resilience = Resilience::new(config);
    for entry in arr_of(doc, "breakers")? {
        let state = match get_str(entry, "state")? {
            "closed" => BreakerState::Closed,
            "open" => BreakerState::Open,
            "half-open" => BreakerState::HalfOpen,
            other => return Err(bad(format!("unknown breaker state '{other}'"))),
        };
        resilience.restore_breaker(
            DeviceId::new(get_str(entry, "device")?),
            state,
            get_int(entry, "failures")? as u32,
            SimDuration::from_millis(get_int(entry, "cooldown_ms")? as u64),
            SimTime::from_millis(get_int(entry, "reopen_at")? as u64),
        );
    }
    for entry in arr_of(doc, "queue")? {
        resilience.restore_retry(RetryEntry {
            seq: get_int(entry, "seq")? as u64,
            rule: rule_of(entry, "rule")?,
            device: DeviceId::new(get_str(entry, "device")?),
            action: action_from_json(require(entry, "action")?)
                .map_err(|e| bad(format!("retry action: {e}")))?,
            kind: kind_from_name(get_str(entry, "kind")?)?,
            attempt: get_int(entry, "attempt")? as u32,
            next_at: SimTime::from_millis(get_int(entry, "next_at")? as u64),
        });
    }
    for entry in arr_of(doc, "dlq")? {
        resilience.restore_dead_letter(DeadLetter {
            rule: rule_of(entry, "rule")?,
            device: DeviceId::new(get_str(entry, "device")?),
            action: action_from_json(require(entry, "action")?)
                .map_err(|e| bad(format!("dead-letter action: {e}")))?,
            kind: kind_from_name(get_str(entry, "kind")?)?,
            attempts: get_int(entry, "attempts")? as u32,
            reason: get_str(entry, "reason")?.to_owned(),
            at: SimTime::from_millis(get_int(entry, "at")? as u64),
        });
    }
    resilience.restore_next_seq(get_int(doc, "next_seq")? as u64);
    Ok(resilience)
}

fn breaker_state_name(state: BreakerState) -> &'static str {
    match state {
        BreakerState::Closed => "closed",
        BreakerState::Open => "open",
        BreakerState::HalfOpen => "half-open",
    }
}

fn kind_name(kind: RetryKind) -> &'static str {
    match kind {
        RetryKind::Fire => "fire",
        RetryKind::Release => "release",
    }
}

fn kind_from_name(name: &str) -> Result<RetryKind, EngineError> {
    match name {
        "fire" => Ok(RetryKind::Fire),
        "release" => Ok(RetryKind::Release),
        other => Err(bad(format!("unknown retry kind '{other}'"))),
    }
}

fn rule_set_to_json(set: &BTreeSet<RuleId>) -> Json {
    Json::Arr(set.iter().map(|id| Json::Int(id.raw() as i64)).collect())
}

fn rule_set_from_json(doc: &Json, key: &str) -> Result<BTreeSet<RuleId>, EngineError> {
    arr_of(doc, key)?
        .iter()
        .map(|id| {
            id.as_int()
                .map(|raw| RuleId::new(raw as u64))
                .ok_or_else(|| bad(format!("'{key}' entries must be integer rule ids")))
        })
        .collect()
}

fn require<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, EngineError> {
    doc.get(key)
        .ok_or_else(|| bad(format!("missing field '{key}'")))
}

fn arr_of<'a>(doc: &'a Json, key: &str) -> Result<&'a [Json], EngineError> {
    require(doc, key)?
        .as_arr()
        .ok_or_else(|| bad(format!("'{key}' must be an array")))
}

fn get_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, EngineError> {
    require(doc, key)?
        .as_str()
        .ok_or_else(|| bad(format!("'{key}' must be a string")))
}

fn get_int(doc: &Json, key: &str) -> Result<i64, EngineError> {
    int_of(require(doc, key)?, key)
}

fn int_of(doc: &Json, key: &str) -> Result<i64, EngineError> {
    doc.as_int()
        .ok_or_else(|| bad(format!("'{key}' must be an integer")))
}

fn rule_of(doc: &Json, key: &str) -> Result<RuleId, EngineError> {
    Ok(RuleId::new(get_int(doc, key)? as u64))
}

fn bad(message: impl Into<String>) -> EngineError {
    EngineError::Persist(message.into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadel_devices::LivingRoomHome;
    use cadel_rule::{ActionSpec, Atom, Condition, ConstraintAtom, EventAtom, Rule, Verb};
    use cadel_simplex::RelOp;
    use cadel_types::{Quantity, Rational, SensorKey, Unit};
    use cadel_upnp::{ControlPoint, FaultPlan, FaultyDevice, Registry};

    fn mins(m: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_minutes(m)
    }

    fn hot_rule(owner: &str, id: u64, threshold: i64) -> Rule {
        let cond = Condition::Atom(Atom::Constraint(ConstraintAtom::new(
            SensorKey::new(DeviceId::new("thermo-lr"), "temperature"),
            RelOp::Gt,
            Quantity::from_integer(threshold, Unit::Celsius),
        )));
        Rule::builder(PersonId::new(owner))
            .condition(cond)
            .action(ActionSpec::new(DeviceId::new("aircon-lr"), Verb::TurnOn))
            .until(Condition::Atom(Atom::Event(EventAtom::new(
                "home",
                "goodnight",
            ))))
            .build(RuleId::new(id))
            .unwrap()
    }

    fn held_rule(owner: &str, id: u64) -> Rule {
        let inner = Atom::Constraint(ConstraintAtom::new(
            SensorKey::new(DeviceId::new("thermo-lr"), "temperature"),
            RelOp::Gt,
            Quantity::from_integer(20, Unit::Celsius),
        ));
        let cond = Condition::Atom(Atom::held_for(inner, SimDuration::from_minutes(30)));
        Rule::builder(PersonId::new(owner))
            .condition(cond)
            .action(ActionSpec::new(DeviceId::new("lamp-lr"), Verb::TurnOn))
            .build(RuleId::new(id))
            .unwrap()
    }

    /// Builds a mid-scenario engine: a breaker tripped on the aircon, a
    /// retry queued, a `held_for` window half-elapsed, presence and
    /// events in the context store.
    fn busy_engine() -> (Engine, LivingRoomHome) {
        let registry = Registry::new();
        let home = LivingRoomHome::install(&registry);
        FaultyDevice::wrap(
            &registry,
            &DeviceId::new("aircon-lr"),
            FaultPlan::new().fail_between(SimTime::EPOCH, mins(45)),
        )
        .unwrap();
        let mut engine = Engine::new(ControlPoint::new(registry));
        engine.add_rule(hot_rule("tom", 1, 26)).unwrap();
        engine.add_rule(held_rule("alan", 2)).unwrap();
        engine
            .context_mut()
            .set_presence(PersonId::new("tom"), Some(PlaceId::new("living-room")));
        engine
            .context_mut()
            .set_persistent_event("home", "vacation");
        engine.context_mut().raise_event("home", "doorbell");
        home.thermometer
            .set_reading(Rational::from_integer(28), mins(1))
            .unwrap();
        for m in 1..6 {
            engine.step(mins(m));
        }
        (engine, home)
    }

    #[test]
    fn export_import_export_is_a_fixpoint() {
        let (engine, _home) = busy_engine();
        let doc = engine.export_runtime_json();

        // The checkpoint actually captured the interesting state.
        let resilience = doc.get("resilience").unwrap();
        assert!(!resilience
            .get("breakers")
            .unwrap()
            .as_arr()
            .unwrap()
            .is_empty());
        assert!(!doc.get("held").unwrap().as_arr().unwrap().is_empty());
        assert!(!doc.get("sensors").unwrap().as_arr().unwrap().is_empty());

        // Import into a *fresh* engine over an identical (fresh) home.
        let registry = Registry::new();
        LivingRoomHome::install(&registry);
        FaultyDevice::wrap(
            &registry,
            &DeviceId::new("aircon-lr"),
            FaultPlan::new().fail_between(SimTime::EPOCH, mins(45)),
        )
        .unwrap();
        let mut restored = Engine::new(ControlPoint::new(registry));
        restored.add_rule(hot_rule("tom", 1, 26)).unwrap();
        restored.add_rule(held_rule("alan", 2)).unwrap();
        restored.import_runtime_json(&doc).unwrap();

        assert_eq!(restored.export_runtime_json(), doc);
    }

    #[test]
    fn restored_engine_resumes_in_lockstep() {
        let (mut original, home_a) = busy_engine();
        let doc = original.export_runtime_json();

        let registry = Registry::new();
        let home_b = LivingRoomHome::install(&registry);
        FaultyDevice::wrap(
            &registry,
            &DeviceId::new("aircon-lr"),
            FaultPlan::new().fail_between(SimTime::EPOCH, mins(45)),
        )
        .unwrap();
        let mut restored = Engine::new(ControlPoint::new(registry));
        restored.add_rule(hot_rule("tom", 1, 26)).unwrap();
        restored.add_rule(held_rule("alan", 2)).unwrap();
        restored.import_runtime_json(&doc).unwrap();
        // The restored home's devices must mirror the original's live
        // state (a real recovery re-reads the world; here the world is
        // fresh, so replay the one reading that matters).
        home_b
            .thermometer
            .set_reading(Rational::from_integer(28), mins(1))
            .unwrap();
        restored.step(mins(5));
        let _ = home_a; // scenario state beyond the thermometer is idle

        // Drive both engines forward: the held_for window elapses at
        // minute 31, the breaker cooldown and queued retries play out.
        for m in 6..60 {
            let ra = original.step(mins(m));
            let rb = restored.step(mins(m));
            assert_eq!(
                ra.to_string(),
                rb.to_string(),
                "step reports diverge at minute {m}"
            );
        }
        assert_eq!(
            original.export_runtime_json(),
            restored.export_runtime_json()
        );
    }

    #[test]
    fn freshness_policy_round_trips() {
        let policies = [
            FreshnessPolicy::default(),
            FreshnessPolicy {
                mode: FreshnessMode::FailClosed,
                max_age: Some(SimDuration::from_minutes(5)),
            },
            FreshnessPolicy {
                mode: FreshnessMode::FailOpen,
                max_age: Some(SimDuration::from_millis(1)),
            },
            FreshnessPolicy {
                mode: FreshnessMode::HoldLastValue,
                max_age: None,
            },
        ];
        for policy in policies {
            let doc = freshness_policy_to_json(&policy);
            assert_eq!(freshness_policy_from_json(&doc).unwrap(), policy);
        }
    }

    #[test]
    fn import_rejects_out_of_schema_documents() {
        let (mut engine, _home) = busy_engine();
        let err = engine
            .import_runtime_json(&Json::obj(vec![("version", Json::Int(99))]))
            .unwrap_err();
        assert!(err.to_string().contains("version 99"));

        let mut doc = engine.export_runtime_json();
        if let Json::Obj(members) = &mut doc {
            members.retain(|(key, _)| key != "resilience");
        }
        let err = engine.import_runtime_json(&doc).unwrap_err();
        assert!(err.to_string().contains("resilience"));
    }
}
