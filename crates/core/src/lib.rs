//! # CADEL — Context-Aware rule DEfinition Language and framework
//!
//! A Rust reproduction of *"Framework and Rule-based Language for
//! Facilitating Context-aware Computing using Information Appliances"*
//! (Nishigaki, Yasumoto, Shibata, Ito, Higashino — ICDCS 2005).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `cadel-types` | quantities, units, time, topology, identifiers |
//! | [`obs`] | `cadel-obs` | observability: structured events, collectors, metrics registry |
//! | [`simplex`] | `cadel-simplex` | exact rational Simplex feasibility (conflict checking) |
//! | [`ir`] | `cadel-ir` | compiled rule IR: interned slots, condition bytecode, constraint systems |
//! | [`rule`] | `cadel-rule` | rule objects, conditions, actions, rule database |
//! | [`lang`] | `cadel-lang` | the CADEL language: lexer, parser, lexicon, compiler |
//! | [`upnp`] | `cadel-upnp` | simulated UPnP: descriptions, SSDP, control point, eventing |
//! | [`devices`] | `cadel-devices` | virtual appliances and sensors (the living-room home) |
//! | [`conflict`] | `cadel-conflict` | consistency checks, conflict detection, priorities |
//! | [`engine`] | `cadel-engine` | the rule execution module |
//! | [`server`] | `cadel-server` | the home server: registration workflow, guidance, users |
//! | [`store`] | `cadel-store` | durable state: write-ahead log, snapshots, crash recovery |
//! | [`fleet`] | `cadel-fleet` | supervised multi-tenant fleet: panic isolation, quarantine, shedding |
//! | [`api`] | `cadel-api` | hardened TCP/HTTP frontend: governed admission, shedding, event streams |
//! | [`sim`] | `cadel-sim` | discrete-event simulation and the Fig. 1 scenario |
//!
//! # Quickstart
//!
//! ```
//! use cadel::server::{HomeServer, SubmitOutcome};
//! use cadel::devices::LivingRoomHome;
//! use cadel::upnp::{ControlPoint, Registry};
//! use cadel::types::{PersonId, SimTime, Topology};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let registry = Registry::new();
//! let home = LivingRoomHome::install(&registry);
//! let mut topology = Topology::new("home");
//! topology.add_floor("first floor")?;
//! topology.add_room("living room", "first floor")?;
//! topology.add_room("hall", "first floor")?;
//!
//! let mut server = HomeServer::new(ControlPoint::new(registry), topology);
//! let tom = server.add_user("tom")?;
//! let outcome = server.submit(
//!     &tom,
//!     "If humidity is higher than 80 percent, turn on the air conditioner \
//!      with 25 degrees of temperature setting.",
//! )?;
//! assert!(matches!(outcome, SubmitOutcome::Registered { .. }));
//! # let _ = home;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cadel_api as api;
pub use cadel_conflict as conflict;
pub use cadel_devices as devices;
pub use cadel_engine as engine;
pub use cadel_fleet as fleet;
pub use cadel_ir as ir;
pub use cadel_lang as lang;
pub use cadel_obs as obs;
pub use cadel_rule as rule;
pub use cadel_server as server;
pub use cadel_sim as sim;
pub use cadel_simplex as simplex;
pub use cadel_store as store;
pub use cadel_types as types;
pub use cadel_upnp as upnp;
