//! Rationals extended with a symbolic infinitesimal ε.
//!
//! A strict inequality `e < b` over the rationals is satisfiable exactly
//! when `e ≤ b − ε` is satisfiable for *some* (equivalently, all
//! sufficiently small) ε > 0. Representing bounds as `a + b·ε` with ε a
//! formal infinitesimal lets the solver treat strict and non-strict
//! inequalities uniformly and still return exact verdicts — the standard
//! technique from Simplex-based SMT solvers.

use cadel_types::Rational;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Neg, Sub, SubAssign};

use crate::SolveError;

/// A number of the form `real + eps·ε` where ε is a positive infinitesimal.
///
/// Ordering is lexicographic: the real parts dominate and the ε parts break
/// ties, which is exactly the ordering of `a + bε` for all sufficiently
/// small ε > 0.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct EpsRational {
    real: Rational,
    eps: Rational,
}

impl EpsRational {
    /// Zero.
    pub const ZERO: EpsRational = EpsRational {
        real: Rational::ZERO,
        eps: Rational::ZERO,
    };

    /// The infinitesimal ε itself.
    pub const EPSILON: EpsRational = EpsRational {
        real: Rational::ZERO,
        eps: Rational::ONE,
    };

    /// Creates `real + eps·ε`.
    pub fn new(real: Rational, eps: Rational) -> EpsRational {
        EpsRational { real, eps }
    }

    /// Creates a purely real value.
    pub fn from_rational(real: Rational) -> EpsRational {
        EpsRational {
            real,
            eps: Rational::ZERO,
        }
    }

    /// The real (standard) part.
    pub fn real(&self) -> Rational {
        self.real
    }

    /// The coefficient of ε.
    pub fn eps(&self) -> Rational {
        self.eps
    }

    /// Whether this is exactly zero (both parts).
    pub fn is_zero(&self) -> bool {
        self.real.is_zero() && self.eps.is_zero()
    }

    /// Whether the value is `> 0` (for all small ε > 0).
    pub fn is_positive(&self) -> bool {
        self.real.is_positive() || (self.real.is_zero() && self.eps.is_positive())
    }

    /// Whether the value is `< 0` (for all small ε > 0).
    pub fn is_negative(&self) -> bool {
        self.real.is_negative() || (self.real.is_zero() && self.eps.is_negative())
    }

    /// Multiplies by a rational scalar.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Overflow`] on `i128` overflow.
    pub fn scale(self, k: Rational) -> Result<EpsRational, SolveError> {
        Ok(EpsRational {
            real: self.real.checked_mul(k).ok_or(SolveError::Overflow)?,
            eps: self.eps.checked_mul(k).ok_or(SolveError::Overflow)?,
        })
    }

    /// Checked addition.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Overflow`] on `i128` overflow.
    pub fn checked_add(self, other: EpsRational) -> Result<EpsRational, SolveError> {
        Ok(EpsRational {
            real: self
                .real
                .checked_add(other.real)
                .ok_or(SolveError::Overflow)?,
            eps: self
                .eps
                .checked_add(other.eps)
                .ok_or(SolveError::Overflow)?,
        })
    }

    /// Checked subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Overflow`] on `i128` overflow.
    pub fn checked_sub(self, other: EpsRational) -> Result<EpsRational, SolveError> {
        self.checked_add(-other)
    }

    /// Substitutes a concrete positive rational for ε.
    pub fn substitute(self, epsilon: Rational) -> Rational {
        self.real + self.eps * epsilon
    }
}

impl From<Rational> for EpsRational {
    fn from(r: Rational) -> Self {
        EpsRational::from_rational(r)
    }
}

impl Add for EpsRational {
    type Output = EpsRational;
    fn add(self, other: EpsRational) -> EpsRational {
        EpsRational {
            real: self.real + other.real,
            eps: self.eps + other.eps,
        }
    }
}

impl Sub for EpsRational {
    type Output = EpsRational;
    fn sub(self, other: EpsRational) -> EpsRational {
        EpsRational {
            real: self.real - other.real,
            eps: self.eps - other.eps,
        }
    }
}

impl Neg for EpsRational {
    type Output = EpsRational;
    fn neg(self) -> EpsRational {
        EpsRational {
            real: -self.real,
            eps: -self.eps,
        }
    }
}

impl AddAssign for EpsRational {
    fn add_assign(&mut self, other: EpsRational) {
        *self = *self + other;
    }
}

impl SubAssign for EpsRational {
    fn sub_assign(&mut self, other: EpsRational) {
        *self = *self - other;
    }
}

impl PartialOrd for EpsRational {
    fn partial_cmp(&self, other: &EpsRational) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EpsRational {
    fn cmp(&self, other: &EpsRational) -> Ordering {
        self.real
            .cmp(&other.real)
            .then_with(|| self.eps.cmp(&other.eps))
    }
}

impl fmt::Debug for EpsRational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.eps.is_zero() {
            write!(f, "{}", self.real)
        } else if self.real.is_zero() {
            write!(f, "{}ε", self.eps)
        } else {
            write!(
                f,
                "{}{}{}ε",
                self.real,
                if self.eps.is_negative() { "" } else { "+" },
                self.eps
            )
        }
    }
}

impl fmt::Display for EpsRational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    fn r(n: i64) -> Rational {
        Rational::from_integer(n)
    }

    #[test]
    fn ordering_is_lexicographic() {
        let five = EpsRational::from_rational(r(5));
        let five_minus = five - EpsRational::EPSILON;
        let five_plus = five + EpsRational::EPSILON;
        assert!(five_minus < five);
        assert!(five < five_plus);
        assert!(five_minus < five_plus);
        // Real part dominates any ε coefficient.
        let four_plus_huge_eps = EpsRational::new(r(4), r(1_000_000));
        assert!(four_plus_huge_eps < five_minus);
    }

    #[test]
    fn sign_predicates() {
        assert!(EpsRational::EPSILON.is_positive());
        assert!((-EpsRational::EPSILON).is_negative());
        assert!(EpsRational::ZERO.is_zero());
        assert!(!EpsRational::ZERO.is_positive());
        assert!(EpsRational::new(r(-1), r(100)).is_negative());
    }

    #[test]
    fn arithmetic() {
        let a = EpsRational::new(r(2), r(1));
        let b = EpsRational::new(r(3), r(-1));
        assert_eq!(a + b, EpsRational::from_rational(r(5)));
        assert_eq!(a - b, EpsRational::new(r(-1), r(2)));
        assert_eq!(a.scale(r(3)).unwrap(), EpsRational::new(r(6), r(3)));
        assert_eq!(-a, EpsRational::new(r(-2), r(-1)));
    }

    #[test]
    fn substitution_recovers_concrete_value() {
        let v = EpsRational::new(r(5), r(-2));
        assert_eq!(v.substitute(Rational::new(1, 4)), Rational::new(9, 2));
    }

    #[test]
    fn display_forms() {
        assert_eq!(EpsRational::from_rational(r(3)).to_string(), "3");
        assert_eq!(EpsRational::EPSILON.to_string(), "1ε");
        assert_eq!(EpsRational::new(r(2), r(-1)).to_string(), "2-1ε");
    }

    #[cfg(feature = "proptest")]
    fn small() -> impl Strategy<Value = EpsRational> {
        ((-100i64..100), (-100i64..100)).prop_map(|(a, b)| {
            EpsRational::new(Rational::from_integer(a), Rational::from_integer(b))
        })
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn prop_order_matches_small_epsilon_substitution(a in small(), b in small()) {
            // For ε = 1/10^6 (smaller than any ratio formed from our bounded
            // coefficients), the symbolic order equals the concrete order.
            let eps = Rational::new(1, 1_000_000);
            let ca = a.substitute(eps);
            let cb = b.substitute(eps);
            prop_assert_eq!(a.cmp(&b), ca.cmp(&cb));
        }

        #[test]
        fn prop_add_sub_inverse(a in small(), b in small()) {
            prop_assert_eq!(a + b - b, a);
        }
    }
}
