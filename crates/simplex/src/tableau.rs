//! Dense phase-1 simplex over exact rationals with ε-extended bounds.
//!
//! The feasibility question is encoded in standard form:
//!
//! 1. Every constraint is rewritten into `≤`-rows `Σ aⱼxⱼ ≤ b` where `b`
//!    is an [`EpsRational`] (strict inequalities subtract ε — see
//!    [`Constraint::to_le_rows`]).
//! 2. Free variables are split `x = x⁺ − x⁻` with `x⁺, x⁻ ≥ 0`.
//! 3. Each row gains a slack; rows with negative right-hand side are
//!    negated and gain an artificial variable.
//! 4. Phase-1 minimizes the sum of artificials with Bland's rule
//!    (anti-cycling). The system is feasible iff the minimum is exactly
//!    zero — including its ε part, which is what rejects `x < 5 ∧ x > 5`.
//!
//! When feasible, the basic solution is read back and the symbolic ε is
//! replaced by a concrete positive rational small enough to satisfy every
//! original constraint, yielding a checkable witness.

use crate::eps::EpsRational;
use crate::{Constraint, RelOp, Solution, SolveError};
use cadel_obs::{LazyCounter, LazyHistogram};
use cadel_types::Rational;

/// Total pivot operations performed across all phase-1 runs.
static PIVOTS: LazyCounter = LazyCounter::new("simplex_pivots_total");
/// Pivot count distribution per phase-1 run (how hard each system was).
static PIVOTS_PER_RUN: LazyHistogram = LazyHistogram::new("simplex_pivots_per_phase1");

/// Maximum pivots before conceding defeat. Bland's rule guarantees
/// termination, so this is purely a defensive bound against bugs.
fn pivot_limit(rows: usize, cols: usize) -> usize {
    10_000 + 50 * (rows + cols)
}

fn cmul(a: Rational, b: Rational) -> Result<Rational, SolveError> {
    a.checked_mul(b).ok_or(SolveError::Overflow)
}

fn csub(a: Rational, b: Rational) -> Result<Rational, SolveError> {
    a.checked_sub(b).ok_or(SolveError::Overflow)
}

/// The phase-1 tableau. Exposed for the ablation benchmarks; ordinary
/// callers should use [`solve_simplex`] or [`crate::solve`].
#[derive(Clone, Debug)]
pub struct Tableau {
    /// Coefficient matrix, `rows × cols`.
    matrix: Vec<Vec<Rational>>,
    /// Right-hand sides (ε-extended), one per row.
    rhs: Vec<EpsRational>,
    /// Phase-1 objective coefficients per column.
    obj: Vec<Rational>,
    /// Current phase-1 objective value (sum of artificials).
    obj_value: EpsRational,
    /// Basic variable (column index) per row.
    basis: Vec<usize>,
    /// Number of structural columns (2 per original variable).
    structural: usize,
    /// First artificial column index, or `cols` when none exist.
    first_artificial: usize,
    /// Number of original (free) variables.
    original_vars: usize,
}

impl Tableau {
    /// Builds the phase-1 tableau for a constraint system.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Overflow`] if constructing rows overflows.
    pub fn build(constraints: &[Constraint]) -> Result<Tableau, SolveError> {
        let original_vars = constraints
            .iter()
            .filter_map(|c| c.expr().max_var())
            .map(|v| v.index() + 1)
            .max()
            .unwrap_or(0);

        let mut le_rows = Vec::new();
        for c in constraints {
            le_rows.extend(c.to_le_rows());
        }

        let structural = 2 * original_vars;
        let num_rows = le_rows.len();
        let slack_base = structural;
        // Artificial columns are assigned lazily; first count them.
        let needs_artificial: Vec<bool> = le_rows.iter().map(|(_, b)| b.is_negative()).collect();
        let num_artificial = needs_artificial.iter().filter(|x| **x).count();
        let first_artificial = slack_base + num_rows;
        let cols = first_artificial + num_artificial;

        let mut matrix = vec![vec![Rational::ZERO; cols]; num_rows];
        let mut rhs = vec![EpsRational::ZERO; num_rows];
        let mut basis = vec![0usize; num_rows];
        let mut next_artificial = first_artificial;

        for (i, (expr, bound)) in le_rows.iter().enumerate() {
            let negate = needs_artificial[i];
            for (v, c) in expr.iter() {
                let c = if negate { -c } else { c };
                matrix[i][2 * v.index()] = c;
                matrix[i][2 * v.index() + 1] = -c;
            }
            // Slack: +1 normally, −1 after negation.
            matrix[i][slack_base + i] = if negate {
                -Rational::ONE
            } else {
                Rational::ONE
            };
            rhs[i] = if negate { -*bound } else { *bound };
            if negate {
                matrix[i][next_artificial] = Rational::ONE;
                basis[i] = next_artificial;
                next_artificial += 1;
            } else {
                basis[i] = slack_base + i;
            }
        }

        // Phase-1 objective: minimize W = Σ artificials.
        // Express W through the nonbasic variables: W = Σ_{art rows} bᵢ −
        // Σ_{art rows} Σⱼ Aᵢⱼ xⱼ  (excluding the artificial columns
        // themselves, whose reduced cost starts at zero).
        let mut obj = vec![Rational::ZERO; cols];
        let mut obj_value = EpsRational::ZERO;
        for i in 0..num_rows {
            if basis[i] >= first_artificial {
                for j in 0..first_artificial {
                    obj[j] = csub(obj[j], matrix[i][j])?;
                }
                obj_value = obj_value.checked_add(rhs[i])?;
            }
        }

        Ok(Tableau {
            matrix,
            rhs,
            obj,
            obj_value,
            basis,
            structural,
            first_artificial,
            original_vars,
        })
    }

    /// Runs phase-1 to optimality.
    ///
    /// Returns `true` when the system is feasible (minimal artificial sum
    /// is exactly zero).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] on arithmetic overflow or if the defensive
    /// pivot limit is hit.
    pub fn run_phase1(&mut self) -> Result<bool, SolveError> {
        let mut performed: u64 = 0;
        let result = self.phase1_loop(&mut performed);
        PIVOTS.add(performed);
        PIVOTS_PER_RUN.observe(performed);
        result
    }

    fn phase1_loop(&mut self, performed: &mut u64) -> Result<bool, SolveError> {
        let rows = self.matrix.len();
        if rows == 0 {
            return Ok(true);
        }
        let cols = self.matrix[0].len();
        let limit = pivot_limit(rows, cols);

        for pivots in 0..=limit {
            // Bland: entering column = smallest index with negative reduced
            // cost, artificials excluded (they never re-enter).
            let entering = (0..self.first_artificial).find(|&j| self.obj[j].is_negative());
            let Some(entering) = entering else {
                // Optimal: feasible iff no residual artificial infeasibility.
                return Ok(self.obj_value.is_zero());
            };
            if pivots == limit {
                return Err(SolveError::IterationLimit { pivots });
            }

            // Ratio test over rows with positive pivot coefficient.
            let mut leaving: Option<(usize, EpsRational)> = None;
            for i in 0..rows {
                let a = self.matrix[i][entering];
                if !a.is_positive() {
                    continue;
                }
                let ratio = self.rhs[i].scale(a.recip())?;
                match &leaving {
                    None => leaving = Some((i, ratio)),
                    Some((best_row, best)) => {
                        // Bland tie-break: smaller basis column index.
                        if ratio < *best
                            || (ratio == *best && self.basis[i] < self.basis[*best_row])
                        {
                            leaving = Some((i, ratio));
                        }
                    }
                }
            }
            let Some((leave_row, _)) = leaving else {
                // Entering column unbounded below for W — cannot happen for
                // a sum-of-artificials objective, which is bounded by zero.
                // Treat defensively as optimality.
                return Ok(self.obj_value.is_zero());
            };

            self.pivot(leave_row, entering)?;
            *performed += 1;
        }
        unreachable!("loop always returns");
    }

    fn pivot(&mut self, row: usize, col: usize) -> Result<(), SolveError> {
        let rows = self.matrix.len();
        let pivot_val = self.matrix[row][col];
        debug_assert!(pivot_val.is_positive());
        let inv = pivot_val.recip();

        // Normalize the pivot row.
        for v in self.matrix[row].iter_mut() {
            *v = cmul(*v, inv)?;
        }
        self.rhs[row] = self.rhs[row].scale(inv)?;

        // Eliminate the column from all other rows.
        for i in 0..rows {
            if i == row {
                continue;
            }
            let factor = self.matrix[i][col];
            if factor.is_zero() {
                continue;
            }
            for j in 0..self.matrix[i].len() {
                let delta = cmul(factor, self.matrix[row][j])?;
                self.matrix[i][j] = csub(self.matrix[i][j], delta)?;
            }
            let delta = self.rhs[row].scale(factor)?;
            self.rhs[i] = self.rhs[i].checked_sub(delta)?;
        }

        // Eliminate from the objective row. Substituting the entering
        // variable x_e = rhs_r − Σ M_rj x_j into W = obj_value + Σ obj_j x_j
        // adds factor·rhs_r to the constant and subtracts factor·M_rj from
        // each coefficient.
        let factor = self.obj[col];
        if !factor.is_zero() {
            for j in 0..self.obj.len() {
                let delta = cmul(factor, self.matrix[row][j])?;
                self.obj[j] = csub(self.obj[j], delta)?;
            }
            let delta = self.rhs[row].scale(factor)?;
            self.obj_value = self.obj_value.checked_add(delta)?;
        }

        self.basis[row] = col;
        Ok(())
    }

    /// Reads the ε-extended values of the original variables out of the
    /// final basic solution (`x = x⁺ − x⁻`).
    pub fn symbolic_witness(&self) -> Vec<EpsRational> {
        let mut split = vec![EpsRational::ZERO; self.structural];
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.structural {
                split[b] = self.rhs[i];
            }
        }
        (0..self.original_vars)
            .map(|k| split[2 * k] - split[2 * k + 1])
            .collect()
    }
}

/// Chooses a concrete ε > 0 small enough that substituting it into the
/// symbolic witness satisfies every constraint, then returns the concrete
/// assignment.
fn concretize(
    constraints: &[Constraint],
    symbolic: &[EpsRational],
) -> Result<Vec<Rational>, SolveError> {
    // For each constraint, the left-hand side evaluates to A + B·ε.
    // Each case below either holds for every small ε or yields an upper
    // bound on ε; take the minimum (halved for safety against strictness).
    let mut epsilon = Rational::ONE;
    for con in constraints {
        let mut a = Rational::ZERO;
        let mut b = Rational::ZERO;
        for (v, c) in con.expr().iter() {
            let val = symbolic
                .get(v.index())
                .copied()
                .unwrap_or(EpsRational::ZERO);
            a = a
                .checked_add(cmul(c, val.real())?)
                .ok_or(SolveError::Overflow)?;
            b = b
                .checked_add(cmul(c, val.eps())?)
                .ok_or(SolveError::Overflow)?;
        }
        let gap = csub(a, con.rhs())?; // g(ε) = gap + B·ε, want g ⋈ 0.
        let bound = match con.op() {
            RelOp::Ge | RelOp::Gt => {
                // Need gap + Bε ≥ 0 (or > 0). Only B < 0 limits ε.
                if b.is_negative() && gap.is_positive() {
                    Some(gap.checked_div(-b).ok_or(SolveError::Overflow)?)
                } else {
                    None
                }
            }
            RelOp::Le | RelOp::Lt => {
                // Need gap + Bε ≤ 0 (or < 0). Only B > 0 limits ε.
                if b.is_positive() && gap.is_negative() {
                    Some((-gap).checked_div(b).ok_or(SolveError::Overflow)?)
                } else {
                    None
                }
            }
            RelOp::Eq => None, // symbolic equality forces gap = B = 0.
        };
        if let Some(t) = bound {
            // Halve to stay clear of strict boundaries.
            let t = t * Rational::new(1, 2);
            epsilon = epsilon.min(t);
        }
    }
    Ok(symbolic.iter().map(|v| v.substitute(epsilon)).collect())
}

/// Decides satisfiability with the full simplex and extracts a concrete
/// witness when feasible.
///
/// # Errors
///
/// Returns [`SolveError`] on exact-arithmetic overflow or pivot-limit
/// exhaustion.
pub fn solve_simplex(constraints: &[Constraint]) -> Result<Solution, SolveError> {
    let mut tableau = Tableau::build(constraints)?;
    if !tableau.run_phase1()? {
        return Ok(Solution::Infeasible);
    }
    let symbolic = tableau.symbolic_witness();
    let witness = concretize(constraints, &symbolic)?;
    Ok(Solution::Feasible(witness))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinExpr, VarId};
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    fn r(n: i64) -> Rational {
        Rational::from_integer(n)
    }

    fn v(i: u32) -> LinExpr {
        LinExpr::var(VarId::new(i))
    }

    fn check_feasible(sys: &[Constraint]) -> Vec<Rational> {
        let sol = solve_simplex(sys).unwrap();
        let w = sol.witness().expect("expected feasible").to_vec();
        for con in sys {
            assert!(con.is_satisfied_by(&w), "{con} violated by witness {w:?}");
        }
        w
    }

    fn check_infeasible(sys: &[Constraint]) {
        assert!(!solve_simplex(sys).unwrap().is_feasible());
    }

    #[test]
    fn empty_is_feasible() {
        assert!(solve_simplex(&[]).unwrap().is_feasible());
    }

    #[test]
    fn single_bounds() {
        check_feasible(&[Constraint::new(v(0), RelOp::Ge, r(10))]);
        check_feasible(&[Constraint::new(v(0), RelOp::Lt, r(-10))]);
    }

    #[test]
    fn strict_point_infeasible_nonstrict_feasible() {
        check_infeasible(&[
            Constraint::new(v(0), RelOp::Gt, r(5)),
            Constraint::new(v(0), RelOp::Lt, r(5)),
        ]);
        let w = check_feasible(&[
            Constraint::new(v(0), RelOp::Ge, r(5)),
            Constraint::new(v(0), RelOp::Le, r(5)),
        ]);
        assert_eq!(w[0], r(5));
    }

    #[test]
    fn sum_constraint_infeasible() {
        check_infeasible(&[
            Constraint::new(v(0) + v(1), RelOp::Le, r(1)),
            Constraint::new(v(0), RelOp::Ge, r(1)),
            Constraint::new(v(1), RelOp::Ge, r(1)),
        ]);
    }

    #[test]
    fn sum_constraint_tight_feasible() {
        let w = check_feasible(&[
            Constraint::new(v(0) + v(1), RelOp::Le, r(2)),
            Constraint::new(v(0), RelOp::Ge, r(1)),
            Constraint::new(v(1), RelOp::Ge, r(1)),
        ]);
        assert_eq!(w[0] + w[1], r(2));
    }

    #[test]
    fn strict_sum_boundary_infeasible() {
        // x + y < 2 with x ≥ 1 and y ≥ 1 has no solution.
        check_infeasible(&[
            Constraint::new(v(0) + v(1), RelOp::Lt, r(2)),
            Constraint::new(v(0), RelOp::Ge, r(1)),
            Constraint::new(v(1), RelOp::Ge, r(1)),
        ]);
    }

    #[test]
    fn equalities_chain() {
        // x = y, y = z, x + z = 10  ⇒  x = y = z = 5.
        let w = check_feasible(&[
            Constraint::new(v(0) - v(1), RelOp::Eq, r(0)),
            Constraint::new(v(1) - v(2), RelOp::Eq, r(0)),
            Constraint::new(v(0) + v(2), RelOp::Eq, r(10)),
        ]);
        assert_eq!(w, vec![r(5), r(5), r(5)]);
    }

    #[test]
    fn inconsistent_equalities() {
        check_infeasible(&[
            Constraint::new(v(0), RelOp::Eq, r(3)),
            Constraint::new(v(0), RelOp::Eq, r(4)),
        ]);
    }

    #[test]
    fn negative_solutions_are_found() {
        // Free variables must go negative: x + y = -10, x ≤ 0, y ≤ -3.
        let w = check_feasible(&[
            Constraint::new(v(0) + v(1), RelOp::Eq, r(-10)),
            Constraint::new(v(0), RelOp::Le, r(0)),
            Constraint::new(v(1), RelOp::Le, r(-3)),
        ]);
        assert_eq!(w[0] + w[1], r(-10));
    }

    #[test]
    fn fractional_coefficients() {
        // x/2 + y/3 >= 1 and x + y <= 2 and x,y >= 0: x=2,y=0 works.
        let e = LinExpr::term(VarId::new(0), Rational::new(1, 2))
            + LinExpr::term(VarId::new(1), Rational::new(1, 3));
        check_feasible(&[
            Constraint::new(e, RelOp::Ge, r(1)),
            Constraint::new(v(0) + v(1), RelOp::Le, r(2)),
            Constraint::new(v(0), RelOp::Ge, r(0)),
            Constraint::new(v(1), RelOp::Ge, r(0)),
        ]);
    }

    #[test]
    fn redundant_constraints_are_harmless() {
        let mut sys = vec![Constraint::new(v(0) + v(1), RelOp::Le, r(100))];
        for k in 1..20 {
            sys.push(Constraint::new(v(0) + v(1), RelOp::Le, r(100 + k)));
            sys.push(Constraint::new(v(0), RelOp::Ge, r(-k)));
        }
        check_feasible(&sys);
    }

    #[test]
    fn strict_epsilon_composes_across_constraints() {
        // x > 0, y > 0, x + y < 1/1000 is feasible (tiny open simplex).
        check_feasible(&[
            Constraint::new(v(0), RelOp::Gt, r(0)),
            Constraint::new(v(1), RelOp::Gt, r(0)),
            Constraint::new(v(0) + v(1), RelOp::Lt, Rational::new(1, 1000)),
        ]);
    }

    #[test]
    fn paper_e2_shape_four_inequalities() {
        // E2 evaluates conjunctions of 4 inequalities (2 from each rule).
        let sys = [
            Constraint::new(v(0), RelOp::Gt, r(26)),
            Constraint::new(v(1), RelOp::Gt, r(65)),
            Constraint::new(v(0), RelOp::Gt, r(25)),
            Constraint::new(v(1), RelOp::Gt, r(60)),
        ];
        check_feasible(&sys);
    }

    #[cfg(feature = "proptest")]
    prop_compose! {
        fn arb_constraint(max_vars: u32)
            (vars in proptest::collection::vec((0..max_vars, -5i64..=5), 1..3),
             op in prop_oneof![
                Just(RelOp::Le), Just(RelOp::Lt), Just(RelOp::Ge),
                Just(RelOp::Gt), Just(RelOp::Eq)
             ],
             rhs in -20i64..=20)
            -> Constraint
        {
            let expr = LinExpr::from_terms(
                vars.into_iter().map(|(v, c)| (VarId::new(v), r(c))),
            );
            Constraint::new(expr, op, r(rhs))
        }
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Soundness: whenever the simplex claims feasibility, its witness
        /// really satisfies every constraint.
        #[test]
        fn prop_witness_is_sound(sys in proptest::collection::vec(arb_constraint(3), 0..8)) {
            if let Solution::Feasible(w) = solve_simplex(&sys).unwrap() {
                for con in &sys {
                    prop_assert!(con.is_satisfied_by(&w), "{} violated by {:?}", con, w);
                }
            }
        }

        /// Agreement: on univariate systems the simplex and the interval
        /// fast path return the same verdict.
        #[test]
        fn prop_agrees_with_interval_solver(
            sys in proptest::collection::vec(
                ((0u32..3), prop_oneof![
                    Just(RelOp::Le), Just(RelOp::Lt), Just(RelOp::Ge),
                    Just(RelOp::Gt), Just(RelOp::Eq)
                 ], -20i64..=20),
                0..10,
            )
        ) {
            let sys: Vec<Constraint> = sys
                .into_iter()
                .map(|(var, op, rhs)| Constraint::new(v(var), op, r(rhs)))
                .collect();
            let simplex = solve_simplex(&sys).unwrap().is_feasible();
            let interval = crate::interval::solve_intervals(&sys).unwrap().is_feasible();
            prop_assert_eq!(simplex, interval);
        }

        /// Monotonicity: adding constraints never turns an infeasible
        /// system feasible.
        #[test]
        fn prop_adding_constraints_preserves_infeasibility(
            sys in proptest::collection::vec(arb_constraint(3), 1..6),
            extra in arb_constraint(3),
        ) {
            let before = solve_simplex(&sys).unwrap().is_feasible();
            let mut bigger = sys.clone();
            bigger.push(extra);
            let after = solve_simplex(&bigger).unwrap().is_feasible();
            prop_assert!(before || !after);
        }
    }
}
