//! Linear constraints `expr ⋈ rhs`.

use crate::eps::EpsRational;
use crate::expr::{LinExpr, VarId};
use cadel_types::Rational;
use std::fmt;

/// The relational operator of a constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RelOp {
    /// `≤`
    Le,
    /// `<` (strict)
    Lt,
    /// `≥`
    Ge,
    /// `>` (strict)
    Gt,
    /// `=`
    Eq,
}

impl RelOp {
    /// The operator with both sides swapped (`<` ↔ `>`, `≤` ↔ `≥`).
    pub fn flipped(self) -> RelOp {
        match self {
            RelOp::Le => RelOp::Ge,
            RelOp::Lt => RelOp::Gt,
            RelOp::Ge => RelOp::Le,
            RelOp::Gt => RelOp::Lt,
            RelOp::Eq => RelOp::Eq,
        }
    }

    /// Whether the operator is strict.
    pub fn is_strict(self) -> bool {
        matches!(self, RelOp::Lt | RelOp::Gt)
    }

    /// Applies the operator to concrete rationals.
    pub fn holds(self, lhs: Rational, rhs: Rational) -> bool {
        match self {
            RelOp::Le => lhs <= rhs,
            RelOp::Lt => lhs < rhs,
            RelOp::Ge => lhs >= rhs,
            RelOp::Gt => lhs > rhs,
            RelOp::Eq => lhs == rhs,
        }
    }

    /// The conventional symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            RelOp::Le => "<=",
            RelOp::Lt => "<",
            RelOp::Ge => ">=",
            RelOp::Gt => ">",
            RelOp::Eq => "=",
        }
    }
}

impl fmt::Display for RelOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A linear constraint `expr ⋈ rhs` over solver variables.
#[derive(Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Constraint {
    expr: LinExpr,
    op: RelOp,
    rhs: Rational,
}

impl Constraint {
    /// Creates the constraint `expr op rhs`.
    pub fn new(expr: LinExpr, op: RelOp, rhs: Rational) -> Constraint {
        Constraint { expr, op, rhs }
    }

    /// The left-hand expression.
    pub fn expr(&self) -> &LinExpr {
        &self.expr
    }

    /// The relational operator.
    pub fn op(&self) -> RelOp {
        self.op
    }

    /// The right-hand constant.
    pub fn rhs(&self) -> Rational {
        self.rhs
    }

    /// Returns the constraint with every variable replaced through `f`
    /// (see [`LinExpr::map_vars`]).
    pub fn map_vars(&self, f: impl FnMut(VarId) -> VarId) -> Constraint {
        Constraint {
            expr: self.expr.map_vars(f),
            op: self.op,
            rhs: self.rhs,
        }
    }

    /// Whether an assignment satisfies the constraint (missing variables
    /// are zero).
    pub fn is_satisfied_by(&self, assignment: &[Rational]) -> bool {
        self.op.holds(self.expr.evaluate(assignment), self.rhs)
    }

    /// Rewrites into `≤`-form rows `expr ≤ bound` with ε-extended bounds:
    ///
    /// * `e ≤ b`  →  `e ≤ b`
    /// * `e < b`  →  `e ≤ b − ε`
    /// * `e ≥ b`  →  `−e ≤ −b`
    /// * `e > b`  →  `−e ≤ −b − ε`
    /// * `e = b`  →  `e ≤ b` and `−e ≤ −b`
    pub fn to_le_rows(&self) -> Vec<(LinExpr, EpsRational)> {
        let b = EpsRational::from_rational(self.rhs);
        match self.op {
            RelOp::Le => vec![(self.expr.clone(), b)],
            RelOp::Lt => vec![(self.expr.clone(), b - EpsRational::EPSILON)],
            RelOp::Ge => vec![(-self.expr.clone(), -b)],
            RelOp::Gt => vec![(-self.expr.clone(), -b - EpsRational::EPSILON)],
            RelOp::Eq => vec![(self.expr.clone(), b), (-self.expr.clone(), -b)],
        }
    }
}

impl fmt::Debug for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.expr, self.op, self.rhs)
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VarId;

    fn r(n: i64) -> Rational {
        Rational::from_integer(n)
    }

    #[test]
    fn holds_on_concrete_values() {
        assert!(RelOp::Lt.holds(r(1), r(2)));
        assert!(!RelOp::Lt.holds(r(2), r(2)));
        assert!(RelOp::Le.holds(r(2), r(2)));
        assert!(RelOp::Eq.holds(r(2), r(2)));
        assert!(RelOp::Gt.holds(r(3), r(2)));
        assert!(RelOp::Ge.holds(r(2), r(2)));
    }

    #[test]
    fn flipping() {
        assert_eq!(RelOp::Lt.flipped(), RelOp::Gt);
        assert_eq!(RelOp::Ge.flipped(), RelOp::Le);
        assert_eq!(RelOp::Eq.flipped(), RelOp::Eq);
    }

    #[test]
    fn satisfied_by_assignment() {
        let c = Constraint::new(LinExpr::var(VarId::new(0)), RelOp::Gt, r(26));
        assert!(c.is_satisfied_by(&[r(27)]));
        assert!(!c.is_satisfied_by(&[r(26)]));
        assert!(!c.is_satisfied_by(&[]));
    }

    #[test]
    fn le_rows_encode_strictness() {
        let x = LinExpr::var(VarId::new(0));
        let lt = Constraint::new(x.clone(), RelOp::Lt, r(5)).to_le_rows();
        assert_eq!(lt.len(), 1);
        assert_eq!(
            lt[0].1,
            EpsRational::from_rational(r(5)) - EpsRational::EPSILON
        );

        let gt = Constraint::new(x.clone(), RelOp::Gt, r(5)).to_le_rows();
        assert_eq!(gt[0].0.coefficient(VarId::new(0)), r(-1));
        assert_eq!(
            gt[0].1,
            EpsRational::from_rational(r(-5)) - EpsRational::EPSILON
        );

        let eq = Constraint::new(x, RelOp::Eq, r(5)).to_le_rows();
        assert_eq!(eq.len(), 2);
    }

    #[test]
    fn display() {
        let c = Constraint::new(LinExpr::var(VarId::new(1)), RelOp::Ge, r(60));
        assert_eq!(c.to_string(), "x1 >= 60");
    }
}
