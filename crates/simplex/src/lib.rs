//! Exact feasibility solving for conjunctions of linear constraints.
//!
//! The CADEL framework decides two questions by linear-arithmetic
//! satisfiability (paper §4.4):
//!
//! 1. **Inconsistency check** — can a newly registered rule's condition hold
//!    at all?
//! 2. **Conflict check** — can the conditions of two rules that control the
//!    same device hold *simultaneously*?
//!
//! Both reduce to: *does a conjunction of linear inequalities over sensor
//! variables have a solution?* The paper answered this with a C library
//! implementing the Simplex method; this crate is the Rust equivalent, with
//! two upgrades:
//!
//! * **Exact arithmetic** — all computation is over
//!   [`cadel_types::Rational`], so verdicts carry no floating-point
//!   tolerance.
//! * **Exact strict inequalities** — `temperature > 26` is handled with a
//!   symbolic infinitesimal ([`EpsRational`]), not an arbitrary epsilon
//!   constant, so `x > 5 ∧ x < 5` is correctly infeasible while
//!   `x ≥ 5 ∧ x ≤ 5` is feasible.
//!
//! Two solving strategies are provided and automatically selected by
//! [`solve`]:
//!
//! * [`interval::solve_intervals`] — a fast path for systems where every
//!   constraint mentions at most one variable (the common case for home
//!   rules: `temperature > 26 ∧ humidity > 65`).
//! * [`tableau`] — a dense phase-1 simplex with Bland's anti-cycling rule
//!   for general multi-variable systems.
//!
//! # Example
//!
//! ```
//! use cadel_simplex::{Constraint, LinExpr, RelOp, VarId, solve, Feasibility};
//! use cadel_types::Rational;
//!
//! let temp = VarId::new(0);
//! let humid = VarId::new(1);
//! // Tom: temperature > 26 && humidity > 65
//! // Alan: temperature > 25 && humidity > 60
//! let system = vec![
//!     Constraint::new(LinExpr::var(temp), RelOp::Gt, Rational::from_integer(26)),
//!     Constraint::new(LinExpr::var(humid), RelOp::Gt, Rational::from_integer(65)),
//!     Constraint::new(LinExpr::var(temp), RelOp::Gt, Rational::from_integer(25)),
//!     Constraint::new(LinExpr::var(humid), RelOp::Gt, Rational::from_integer(60)),
//! ];
//! // Both can hold at once => the two rules conflict over the air conditioner.
//! assert_eq!(solve(&system).unwrap().feasibility(), Feasibility::Feasible);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constraint;
pub mod eps;
pub mod error;
pub mod expr;
pub mod interval;
pub mod tableau;

pub use constraint::{Constraint, RelOp};
pub use eps::EpsRational;
pub use error::SolveError;
pub use expr::{LinExpr, VarId};
pub use interval::solve_intervals;
pub use tableau::solve_simplex;

use cadel_obs::{LazyCounter, LazyHistogram, Stopwatch};
use cadel_types::Rational;

/// Satisfiability queries answered (every [`solve`] call).
static SOLVES: LazyCounter = LazyCounter::new("simplex_solves_total");
/// Queries served by the univariate interval fast path.
static INTERVAL_PATH: LazyCounter = LazyCounter::new("simplex_interval_path_total");
/// Queries that required the full tableau.
static TABLEAU_PATH: LazyCounter = LazyCounter::new("simplex_tableau_path_total");
/// Queries whose verdict was infeasible.
static INFEASIBLE: LazyCounter = LazyCounter::new("simplex_infeasible_total");
/// Wall-clock latency of [`solve`].
static SOLVE_NS: LazyHistogram = LazyHistogram::new("simplex_solve_duration_ns");

/// The verdict of a satisfiability query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Feasibility {
    /// The conjunction has at least one solution.
    Feasible,
    /// The conjunction has no solution.
    Infeasible,
}

/// The outcome of [`solve`]: a verdict plus, when feasible, a concrete
/// witness assignment.
#[derive(Clone, Debug, PartialEq)]
pub enum Solution {
    /// The system is satisfiable; the vector assigns a value to every
    /// variable index below the system's maximum (missing variables are
    /// unconstrained and set to zero).
    Feasible(Vec<Rational>),
    /// The system is unsatisfiable.
    Infeasible,
}

impl Solution {
    /// The verdict without the witness.
    pub fn feasibility(&self) -> Feasibility {
        match self {
            Solution::Feasible(_) => Feasibility::Feasible,
            Solution::Infeasible => Feasibility::Infeasible,
        }
    }

    /// The witness assignment, if feasible.
    pub fn witness(&self) -> Option<&[Rational]> {
        match self {
            Solution::Feasible(w) => Some(w),
            Solution::Infeasible => None,
        }
    }

    /// `true` when the system is satisfiable.
    pub fn is_feasible(&self) -> bool {
        matches!(self, Solution::Feasible(_))
    }
}

/// Decides satisfiability of a conjunction of linear constraints and, when
/// satisfiable, produces a witness.
///
/// Dispatches to the interval fast path when every constraint is univariate
/// and to the full simplex otherwise.
///
/// # Errors
///
/// Returns [`SolveError`] if exact arithmetic overflows `i128` or the pivot
/// limit is exceeded (neither is reachable from realistic rule systems).
pub fn solve(constraints: &[Constraint]) -> Result<Solution, SolveError> {
    let sw = Stopwatch::start();
    SOLVES.inc();
    let result = if constraints.iter().all(|c| c.expr().num_terms() <= 1) {
        INTERVAL_PATH.inc();
        interval::solve_intervals(constraints)
    } else {
        TABLEAU_PATH.inc();
        tableau::solve_simplex(constraints)
    };
    SOLVE_NS.record(&sw);
    if matches!(result, Ok(Solution::Infeasible)) {
        INFEASIBLE.inc();
    }
    result
}

/// Convenience wrapper around [`solve`] returning only the boolean verdict.
///
/// # Errors
///
/// Same as [`solve`].
pub fn is_satisfiable(constraints: &[Constraint]) -> Result<bool, SolveError> {
    Ok(solve(constraints)?.is_feasible())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(var: u32, op: RelOp, rhs: i64) -> Constraint {
        Constraint::new(
            LinExpr::var(VarId::new(var)),
            op,
            Rational::from_integer(rhs),
        )
    }

    #[test]
    fn empty_system_is_feasible() {
        assert!(is_satisfiable(&[]).unwrap());
    }

    #[test]
    fn dispatches_univariate_to_intervals() {
        // x > 5 && x < 5: infeasible only because strictness is exact.
        let sys = [c(0, RelOp::Gt, 5), c(0, RelOp::Lt, 5)];
        assert!(!is_satisfiable(&sys).unwrap());
        let sys = [c(0, RelOp::Ge, 5), c(0, RelOp::Le, 5)];
        let sol = solve(&sys).unwrap();
        assert_eq!(sol.witness().unwrap()[0], Rational::from_integer(5));
    }

    #[test]
    fn dispatches_multivariate_to_simplex() {
        // x + y <= 1 && x >= 1 && y >= 1 is infeasible.
        let expr = LinExpr::var(VarId::new(0)) + LinExpr::var(VarId::new(1));
        let sys = [
            Constraint::new(expr, RelOp::Le, Rational::from_integer(1)),
            c(0, RelOp::Ge, 1),
            c(1, RelOp::Ge, 1),
        ];
        assert!(!is_satisfiable(&sys).unwrap());
    }

    #[test]
    fn witness_satisfies_all_constraints() {
        let expr = LinExpr::var(VarId::new(0)) + LinExpr::var(VarId::new(1));
        let sys = [
            Constraint::new(expr, RelOp::Le, Rational::from_integer(10)),
            c(0, RelOp::Gt, 2),
            c(1, RelOp::Ge, 3),
        ];
        let sol = solve(&sys).unwrap();
        let w = sol.witness().unwrap();
        for con in &sys {
            assert!(
                con.is_satisfied_by(w),
                "constraint {con:?} violated by {w:?}"
            );
        }
    }
}
