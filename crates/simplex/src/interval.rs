//! Fast-path solver for univariate constraint systems.
//!
//! Every condition the paper's examples produce — `temperature > 26 ∧
//! humidity > 65 ∧ temperature > 25 ∧ humidity > 60` — constrains each
//! sensor variable independently, so satisfiability reduces to interval
//! intersection per variable. This path is what makes registration-time
//! conflict checking over a 10,000-rule database cheap (experiment E2);
//! the full simplex in [`crate::tableau`] remains available for general
//! multi-variable conditions and is compared against this path in the
//! ablation bench.

use crate::eps::EpsRational;
use crate::{Constraint, RelOp, Solution, SolveError};
use cadel_types::Rational;
use std::collections::BTreeMap;

use crate::expr::VarId;

#[derive(Clone, Debug, Default)]
struct Interval {
    lower: Option<EpsRational>,
    upper: Option<EpsRational>,
}

impl Interval {
    fn tighten_lower(&mut self, bound: EpsRational) {
        match &self.lower {
            Some(cur) if *cur >= bound => {}
            _ => self.lower = Some(bound),
        }
    }

    fn tighten_upper(&mut self, bound: EpsRational) {
        match &self.upper {
            Some(cur) if *cur <= bound => {}
            _ => self.upper = Some(bound),
        }
    }

    fn is_empty(&self) -> bool {
        match (&self.lower, &self.upper) {
            (Some(lo), Some(hi)) => lo > hi,
            _ => false,
        }
    }

    /// Picks a concrete witness value inside the (non-empty) interval.
    fn witness(&self) -> Rational {
        match (&self.lower, &self.upper) {
            (None, None) => Rational::ZERO,
            (Some(lo), None) => lo.real() + Rational::ONE,
            (None, Some(hi)) => hi.real() - Rational::ONE,
            (Some(lo), Some(hi)) => {
                if lo.real() < hi.real() {
                    // Strict midpoint clears any ε-strictness on both ends.
                    (lo.real() + hi.real()) * Rational::new(1, 2)
                } else {
                    // Equal real parts: symbolic non-emptiness forces both
                    // bounds non-strict, so the shared endpoint is valid.
                    lo.real()
                }
            }
        }
    }
}

/// Decides a system in which every constraint mentions at most one
/// variable, by exact interval intersection.
///
/// # Errors
///
/// Returns [`SolveError::Overflow`] if a bound computation overflows
/// `i128`.
///
/// # Panics
///
/// Debug builds panic when a constraint mentions two or more variables —
/// that is an upstream dispatch error; use [`crate::solve`], which routes
/// multi-variable systems to the simplex.
pub fn solve_intervals(constraints: &[Constraint]) -> Result<Solution, SolveError> {
    let mut intervals: BTreeMap<VarId, Interval> = BTreeMap::new();
    let mut max_var: Option<VarId> = None;

    for con in constraints {
        debug_assert!(
            con.expr().num_terms() <= 1,
            "solve_intervals requires univariate constraints"
        );
        match con.expr().iter().next() {
            None => {
                // Constant constraint: 0 op rhs.
                if !con.op().holds(Rational::ZERO, con.rhs()) {
                    return Ok(Solution::Infeasible);
                }
            }
            Some((var, coef)) => {
                max_var = Some(max_var.map_or(var, |m| m.max(var)));
                // c·x op b  ⇒  x op' b/c with op flipped for negative c.
                let bound = con.rhs().checked_div(coef).ok_or(SolveError::Overflow)?;
                let op = if coef.is_negative() {
                    con.op().flipped()
                } else {
                    con.op()
                };
                let iv = intervals.entry(var).or_default();
                let b = EpsRational::from_rational(bound);
                match op {
                    RelOp::Le => iv.tighten_upper(b),
                    RelOp::Lt => iv.tighten_upper(b - EpsRational::EPSILON),
                    RelOp::Ge => iv.tighten_lower(b),
                    RelOp::Gt => iv.tighten_lower(b + EpsRational::EPSILON),
                    RelOp::Eq => {
                        iv.tighten_lower(b);
                        iv.tighten_upper(b);
                    }
                }
                if iv.is_empty() {
                    return Ok(Solution::Infeasible);
                }
            }
        }
    }

    let len = max_var.map_or(0, |v| v.index() + 1);
    let mut witness = vec![Rational::ZERO; len];
    for (var, iv) in &intervals {
        witness[var.index()] = iv.witness();
    }
    Ok(Solution::Feasible(witness))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinExpr;

    fn r(n: i64) -> Rational {
        Rational::from_integer(n)
    }

    fn c(var: u32, op: RelOp, rhs: i64) -> Constraint {
        Constraint::new(LinExpr::var(VarId::new(var)), op, r(rhs))
    }

    fn check_feasible(sys: &[Constraint]) -> Vec<Rational> {
        let sol = solve_intervals(sys).unwrap();
        let w = sol.witness().expect("expected feasible").to_vec();
        for con in sys {
            assert!(con.is_satisfied_by(&w), "{con} violated by witness {w:?}");
        }
        w
    }

    #[test]
    fn open_interval_feasible() {
        check_feasible(&[c(0, RelOp::Gt, 26), c(0, RelOp::Lt, 30)]);
    }

    #[test]
    fn point_interval_feasible_only_when_closed() {
        let w = check_feasible(&[c(0, RelOp::Ge, 5), c(0, RelOp::Le, 5)]);
        assert_eq!(w[0], r(5));
        assert!(!solve_intervals(&[c(0, RelOp::Gt, 5), c(0, RelOp::Le, 5)])
            .unwrap()
            .is_feasible());
        assert!(!solve_intervals(&[c(0, RelOp::Ge, 5), c(0, RelOp::Lt, 5)])
            .unwrap()
            .is_feasible());
    }

    #[test]
    fn equality_pins_value() {
        let w = check_feasible(&[c(0, RelOp::Eq, 7), c(0, RelOp::Ge, 7)]);
        assert_eq!(w[0], r(7));
        assert!(!solve_intervals(&[c(0, RelOp::Eq, 7), c(0, RelOp::Gt, 7)])
            .unwrap()
            .is_feasible());
        assert!(!solve_intervals(&[c(0, RelOp::Eq, 7), c(0, RelOp::Eq, 8)])
            .unwrap()
            .is_feasible());
    }

    #[test]
    fn negative_coefficient_flips_direction() {
        // -2x <= -10  ⇒  x >= 5
        let con = Constraint::new(LinExpr::term(VarId::new(0), r(-2)), RelOp::Le, r(-10));
        let w = check_feasible(&[con, c(0, RelOp::Le, 6)]);
        assert!(w[0] >= r(5) && w[0] <= r(6));
    }

    #[test]
    fn unbounded_variables_get_witnesses() {
        let w = check_feasible(&[c(0, RelOp::Gt, 100)]);
        assert!(w[0] > r(100));
        let w = check_feasible(&[c(1, RelOp::Lt, -100)]);
        assert!(w[1] < r(-100));
        assert_eq!(w[0], r(0)); // untouched variable defaults to zero
    }

    #[test]
    fn constant_constraints() {
        // 0 <= 1 is vacuously true; 0 >= 1 is false.
        let t = Constraint::new(LinExpr::zero(), RelOp::Le, r(1));
        assert!(solve_intervals(&[t]).unwrap().is_feasible());
        let f = Constraint::new(LinExpr::zero(), RelOp::Ge, r(1));
        assert!(!solve_intervals(&[f]).unwrap().is_feasible());
    }

    #[test]
    fn paper_conflict_example_is_cosatisfiable() {
        // Tom's "hot and stuffy" (t>26, h>65) and Alan's (t>25, h>60):
        // both can hold, so the air-conditioner rules conflict.
        let sys = [
            c(0, RelOp::Gt, 26),
            c(1, RelOp::Gt, 65),
            c(0, RelOp::Gt, 25),
            c(1, RelOp::Gt, 60),
        ];
        check_feasible(&sys);
    }

    #[test]
    fn disjoint_ranges_do_not_conflict() {
        // "temperature below 10" vs "temperature above 30".
        let sys = [c(0, RelOp::Lt, 10), c(0, RelOp::Gt, 30)];
        assert!(!solve_intervals(&sys).unwrap().is_feasible());
    }

    #[test]
    fn many_redundant_bounds_converge() {
        let mut sys = Vec::new();
        for k in 0..100 {
            sys.push(c(0, RelOp::Gt, k));
            sys.push(c(0, RelOp::Lt, 200 - k));
        }
        let w = check_feasible(&sys);
        assert!(w[0] > r(99) && w[0] < r(101));
    }
}
