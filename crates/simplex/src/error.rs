//! Solver error type.

use std::error::Error;
use std::fmt;

/// Errors that can abort a satisfiability query.
///
/// Both variants are defensive: realistic home-automation rule systems
/// (tens of constraints, small integer thresholds) cannot reach either.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SolveError {
    /// Exact rational arithmetic overflowed `i128`.
    Overflow,
    /// The simplex exceeded its pivot budget (anti-cycling safety net).
    IterationLimit {
        /// The number of pivots performed before giving up.
        pivots: usize,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Overflow => f.write_str("exact arithmetic overflowed i128"),
            SolveError::IterationLimit { pivots } => {
                write!(f, "simplex exceeded the pivot limit after {pivots} pivots")
            }
        }
    }
}

impl Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_well_behaved() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<SolveError>();
        assert!(SolveError::Overflow.to_string().contains("i128"));
        assert!(SolveError::IterationLimit { pivots: 9 }
            .to_string()
            .contains('9'));
    }
}
