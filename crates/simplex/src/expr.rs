//! Linear expressions over solver variables.

use cadel_types::Rational;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A dense index identifying a solver variable.
///
/// Upstream crates (conflict checking) maintain the mapping from
/// [`SensorKey`](cadel_types::SensorKey)s to `VarId`s; the solver only sees
/// indices.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(
    feature = "serde",
    derive(serde::Serialize, serde::Deserialize),
    serde(transparent)
)]
pub struct VarId(u32);

impl VarId {
    /// Creates a variable id from its raw index.
    pub const fn new(index: u32) -> VarId {
        VarId(index)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A linear expression `Σ cᵢ·xᵢ` with exact rational coefficients.
///
/// Zero coefficients are never stored, so `num_terms` reflects the true
/// support of the expression.
///
/// # Example
///
/// ```
/// use cadel_simplex::{LinExpr, VarId};
/// use cadel_types::Rational;
///
/// let x = VarId::new(0);
/// let y = VarId::new(1);
/// let e = LinExpr::var(x) * Rational::from_integer(2) + LinExpr::var(y);
/// assert_eq!(e.num_terms(), 2);
/// assert_eq!(e.coefficient(x), Rational::from_integer(2));
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LinExpr {
    terms: BTreeMap<VarId, Rational>,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> LinExpr {
        LinExpr::default()
    }

    /// The expression consisting of a single variable with coefficient one.
    pub fn var(v: VarId) -> LinExpr {
        LinExpr::term(v, Rational::ONE)
    }

    /// The expression `c·v`.
    pub fn term(v: VarId, c: Rational) -> LinExpr {
        let mut terms = BTreeMap::new();
        if !c.is_zero() {
            terms.insert(v, c);
        }
        LinExpr { terms }
    }

    /// Builds an expression from `(variable, coefficient)` pairs; repeated
    /// variables accumulate.
    pub fn from_terms(pairs: impl IntoIterator<Item = (VarId, Rational)>) -> LinExpr {
        let mut e = LinExpr::zero();
        for (v, c) in pairs {
            e.add_term(v, c);
        }
        e
    }

    /// Adds `c·v` into the expression.
    pub fn add_term(&mut self, v: VarId, c: Rational) {
        if c.is_zero() {
            return;
        }
        let entry = self.terms.entry(v).or_insert(Rational::ZERO);
        *entry += c;
        if entry.is_zero() {
            self.terms.remove(&v);
        }
    }

    /// The coefficient of `v` (zero when absent).
    pub fn coefficient(&self, v: VarId) -> Rational {
        self.terms.get(&v).copied().unwrap_or(Rational::ZERO)
    }

    /// The number of variables with non-zero coefficient.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Whether the expression is identically zero.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over `(variable, coefficient)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, Rational)> + '_ {
        self.terms.iter().map(|(v, c)| (*v, *c))
    }

    /// The largest variable index mentioned, if any.
    pub fn max_var(&self) -> Option<VarId> {
        self.terms.keys().next_back().copied()
    }

    /// Returns the expression with every variable replaced through `f`
    /// (coefficients of variables mapped to the same target accumulate).
    ///
    /// Used when embedding a constraint system built over local variable
    /// indices into a larger shared system (conflict checking merges two
    /// rules' precompiled systems this way).
    pub fn map_vars(&self, mut f: impl FnMut(VarId) -> VarId) -> LinExpr {
        LinExpr::from_terms(self.iter().map(|(v, c)| (f(v), c)))
    }

    /// Evaluates the expression under an assignment (missing variables are
    /// zero).
    pub fn evaluate(&self, assignment: &[Rational]) -> Rational {
        let mut acc = Rational::ZERO;
        for (v, c) in self.iter() {
            let x = assignment.get(v.index()).copied().unwrap_or(Rational::ZERO);
            acc += c * x;
        }
        acc
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, other: LinExpr) -> LinExpr {
        for (v, c) in other.iter() {
            self.add_term(v, c);
        }
        self
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(self, other: LinExpr) -> LinExpr {
        self + (-other)
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(mut self) -> LinExpr {
        for c in self.terms.values_mut() {
            *c = -*c;
        }
        self
    }
}

impl Mul<Rational> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, k: Rational) -> LinExpr {
        if k.is_zero() {
            return LinExpr::zero();
        }
        for c in self.terms.values_mut() {
            *c *= k;
        }
        self
    }
}

impl fmt::Debug for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return f.write_str("0");
        }
        for (i, (v, c)) in self.iter().enumerate() {
            if i == 0 {
                if c == Rational::ONE {
                    write!(f, "{v}")?;
                } else {
                    write!(f, "{c}·{v}")?;
                }
            } else if c == Rational::ONE {
                write!(f, " + {v}")?;
            } else if c.is_negative() {
                write!(f, " - {}·{v}", -c)?;
            } else {
                write!(f, " + {c}·{v}")?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64) -> Rational {
        Rational::from_integer(n)
    }

    #[test]
    fn zero_coefficients_are_not_stored() {
        let mut e = LinExpr::var(VarId::new(0));
        e.add_term(VarId::new(0), r(-1));
        assert!(e.is_zero());
        assert_eq!(e.num_terms(), 0);
        assert_eq!(LinExpr::term(VarId::new(3), r(0)).num_terms(), 0);
    }

    #[test]
    fn accumulation_merges_terms() {
        let e = LinExpr::from_terms([
            (VarId::new(0), r(2)),
            (VarId::new(1), r(1)),
            (VarId::new(0), r(3)),
        ]);
        assert_eq!(e.coefficient(VarId::new(0)), r(5));
        assert_eq!(e.num_terms(), 2);
    }

    #[test]
    fn algebra() {
        let x = LinExpr::var(VarId::new(0));
        let y = LinExpr::var(VarId::new(1));
        let e = (x.clone() + y.clone()) * r(2) - x.clone();
        assert_eq!(e.coefficient(VarId::new(0)), r(1));
        assert_eq!(e.coefficient(VarId::new(1)), r(2));
        assert_eq!((x * r(0)).num_terms(), 0);
        let neg = -y;
        assert_eq!(neg.coefficient(VarId::new(1)), r(-1));
    }

    #[test]
    fn evaluation() {
        let e = LinExpr::from_terms([(VarId::new(0), r(2)), (VarId::new(2), r(-1))]);
        let assignment = [r(3), r(100), r(4)];
        assert_eq!(e.evaluate(&assignment), r(2));
        // Missing variables default to zero.
        assert_eq!(e.evaluate(&[r(3)]), r(6));
    }

    #[test]
    fn max_var() {
        assert_eq!(LinExpr::zero().max_var(), None);
        let e = LinExpr::from_terms([(VarId::new(7), r(1)), (VarId::new(2), r(1))]);
        assert_eq!(e.max_var(), Some(VarId::new(7)));
    }

    #[test]
    fn display() {
        let e = LinExpr::from_terms([(VarId::new(0), r(1)), (VarId::new(1), r(-2))]);
        assert_eq!(e.to_string(), "x0 - 2·x1");
        assert_eq!(LinExpr::zero().to_string(), "0");
    }
}
