//! Crash-point-injected restart tests for the durable home server.
//!
//! A scripted scenario of durable mutations — users, private words, rule
//! registrations, a conflict arbitration, priorities, policy changes,
//! removals, customizations, and engine-runtime checkpoints — runs once on
//! a reference server, recording the write-ahead-log byte boundary and a
//! state fingerprint ([`HomeServer::snapshot_json`]) after every
//! operation. The matrix then simulates a crash at **every** record
//! boundary by copying the log's byte prefix into a fresh directory and
//! recovering over a fresh world, asserting the recovered state matches
//! the reference fingerprint at that point. Torn-write variants append
//! garbage after a boundary; corruption variants flip a byte inside the
//! last record. Both must truncate to the previous consistent boundary,
//! never refuse recovery.
//!
//! Two companion tests prove the tentpole's other claims: a restarted
//! server resumes a seeded fault-injection soak in lockstep with a server
//! that never crashed, and a 1,000-rule log recovers completely (the
//! replay time is printed for `docs/EXPERIMENTS.md`).

use cadel::devices::LivingRoomHome;
use cadel::rule::{ActionSpec, Atom, Condition, ConstraintAtom, PresenceAtom, Rule, Verb};
use cadel::server::{HomeServer, SubmitOutcome};
use cadel::simplex::RelOp;
use cadel::store::WAL_FILE;
use cadel::types::json::Json;
use cadel::types::{
    DeviceId, PersonId, Quantity, Rational, RuleId, SensorKey, SimDuration, SimTime, Topology, Unit,
};
use cadel::upnp::{ControlPoint, FaultPlan, FaultyDevice, Registry};
use cadel_conflict::PriorityOrder;
use std::path::{Path, PathBuf};

fn mins(m: u64) -> SimTime {
    SimTime::EPOCH + SimDuration::from_minutes(m)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cadel-crash-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn standard_topology() -> Topology {
    let mut t = Topology::new("home");
    t.add_floor("first floor").unwrap();
    t.add_room("living room", "first floor").unwrap();
    t.add_room("hall", "first floor").unwrap();
    t
}

fn fresh_world() -> (ControlPoint, Topology, LivingRoomHome) {
    let registry = Registry::new();
    let home = LivingRoomHome::install(&registry);
    (ControlPoint::new(registry), standard_topology(), home)
}

/// One scripted operation. Each must append **exactly one** record to the
/// write-ahead log (asserted by the matrix), may drive sensors and step
/// the engine, and must be replayable on any server that has already
/// applied the preceding operations — so ids are discovered dynamically
/// and all times are absolute.
type Op = (&'static str, fn(&mut HomeServer, &LivingRoomHome));

fn rule_owned_by(server: &HomeServer, owner: &str) -> RuleId {
    let owner = PersonId::new(owner);
    server
        .engine()
        .rules()
        .iter()
        .find(|r| r.owner() == &owner)
        .map(Rule::id)
        .expect("scripted op ran out of order: owner has no rule")
}

fn scripted_ops() -> Vec<Op> {
    vec![
        ("add user tom", |s, _| {
            s.add_user("Tom").unwrap();
        }),
        ("add user alan", |s, _| {
            s.add_user("Alan").unwrap();
        }),
        ("define private word", |s, _| {
            let out = s
                .submit(
                    &PersonId::new("tom"),
                    "Let's call the condition that temperature is higher than 26 degrees \
                     too hot",
                )
                .unwrap();
            assert!(matches!(out, SubmitOutcome::ConditionWordDefined { .. }));
        }),
        ("register rule via word", |s, _| {
            let out = s
                .submit(
                    &PersonId::new("tom"),
                    "If too hot, turn on the air conditioner with 25 degrees of \
                     temperature setting.",
                )
                .unwrap();
            assert!(matches!(out, SubmitOutcome::Registered { .. }));
        }),
        ("arbitrate a conflict", |s, _| {
            let out = s
                .submit(
                    &PersonId::new("alan"),
                    "If temperature is higher than 25 degrees, turn on the air \
                     conditioner with 24 degrees of temperature setting.",
                )
                .unwrap();
            let SubmitOutcome::ConflictDetected { ticket, conflicts } = out else {
                panic!("expected a conflict, got {out:?}");
            };
            let loser = conflicts[0].rule_b();
            s.confirm_with_priority(
                ticket,
                vec![ticket, loser],
                None,
                Some("Alan first".to_owned()),
            )
            .unwrap();
        }),
        ("add context-scoped priority", |s, _| {
            let tom = rule_owned_by(s, "tom");
            let alan = rule_owned_by(s, "alan");
            let order = PriorityOrder::new(DeviceId::new("aircon-lr"), vec![tom, alan])
                .in_context(Condition::Atom(Atom::Presence(PresenceAtom::person_at(
                    "tom",
                    "living room",
                ))))
                .with_label("Tom is home");
            s.add_priority(order).unwrap();
        }),
        ("set freshness policy", |s, _| {
            s.set_freshness_policy(cadel::engine::FreshnessPolicy::new(
                cadel::engine::FreshnessMode::HoldLastValue,
                SimDuration::from_minutes(10),
            ))
            .unwrap();
        }),
        ("activity then runtime checkpoint", |s, home| {
            home.thermometer
                .set_reading(Rational::from_integer(29), mins(1))
                .unwrap();
            for m in 2..6 {
                s.step(mins(m));
            }
            s.checkpoint_runtime().unwrap();
        }),
        ("remove tom's rule", |s, _| {
            let id = rule_owned_by(s, "tom");
            s.remove_rule(id).unwrap();
        }),
        ("disable alan's rule", |s, _| {
            let id = rule_owned_by(s, "alan");
            s.set_rule_enabled(id, false).unwrap();
        }),
        ("more activity, second checkpoint", |s, home| {
            home.thermometer
                .set_reading(Rational::from_integer(24), mins(7))
                .unwrap();
            home.living_presence
                .person_entered(&PersonId::new("tom"), mins(7));
            for m in 8..11 {
                s.step(mins(m));
            }
            s.checkpoint_runtime().unwrap();
        }),
    ]
}

/// Drops the context's sensor board from a fingerprint. Device-echo
/// readings (`power`, `setpoint`, …) mirror the *external* world: after a
/// recovery over fresh devices they are re-learned from live device
/// events, so their timestamps legitimately differ from a never-crashed
/// run (see `docs/PERSISTENCE.md`). Everything the server itself owns —
/// rules, priorities, words, held/retry/breaker state — must still match
/// byte for byte.
fn strip_sensor_echoes(doc: &mut Json) {
    if let Json::Obj(members) = doc {
        members.retain(|(key, _)| key != "sensors");
        for (_, value) in members.iter_mut() {
            strip_sensor_echoes(value);
        }
    }
}

fn fingerprint_sans_sensors(server: &HomeServer) -> String {
    let mut doc = server.snapshot_json();
    strip_sensor_echoes(&mut doc);
    doc.to_pretty()
}

/// Copies the first `len` bytes of the reference log into a fresh store
/// directory, optionally appending `tail` garbage bytes, and optionally
/// flipping the byte at `corrupt_at`.
fn plant_wal(dir: &Path, wal: &[u8], len: u64, tail: &[u8], corrupt_at: Option<u64>) {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).unwrap();
    let mut bytes = wal[..len as usize].to_vec();
    if let Some(at) = corrupt_at {
        bytes[at as usize] ^= 0x55;
    }
    bytes.extend_from_slice(tail);
    std::fs::write(dir.join(WAL_FILE), bytes).unwrap();
}

fn recover_fingerprint(dir: &Path) -> (String, cadel::store::RecoveryReport) {
    let (control, topology, _home) = fresh_world();
    let (server, report) = HomeServer::open_at(control, topology, dir).unwrap();
    (server.snapshot_json().to_pretty(), report)
}

#[test]
fn crash_matrix_recovers_identically_at_every_record_boundary() {
    let ops = scripted_ops();
    let reference_dir = temp_dir("matrix-ref");

    // Reference run: every op appends exactly one record; capture the
    // log boundary and state fingerprint after each.
    let mut boundaries = Vec::new(); // boundaries[k] = wal_len after k ops
    let mut fingerprints = Vec::new(); // fingerprints[k] = state after k ops
    {
        let (control, topology, home) = fresh_world();
        let (mut server, _) = HomeServer::open_at(control, topology, &reference_dir).unwrap();
        boundaries.push(server.store().unwrap().wal_len());
        fingerprints.push(server.snapshot_json().to_pretty());
        for (name, op) in &ops {
            let before = server.store().unwrap().wal_len();
            op(&mut server, &home);
            let after = server.store().unwrap().wal_len();
            assert!(
                after > before,
                "op '{name}' appended no record — boundary map is broken"
            );
            boundaries.push(after);
            fingerprints.push(server.snapshot_json().to_pretty());
        }
        server.sync().unwrap();
    }
    let wal = std::fs::read(reference_dir.join(WAL_FILE)).unwrap();
    assert_eq!(wal.len() as u64, *boundaries.last().unwrap());

    let crash_dir = temp_dir("matrix-crash");
    for k in 0..boundaries.len() {
        // Clean crash exactly at boundary k: all k records replay.
        plant_wal(&crash_dir, &wal, boundaries[k], &[], None);
        let (fp, report) = recover_fingerprint(&crash_dir);
        assert_eq!(fp, fingerprints[k], "clean boundary {k} diverged");
        assert_eq!(report.records_replayed, k as u64);
        assert_eq!(report.bytes_truncated, 0);
        assert!(!report.snapshot_used);

        // Torn write: garbage after the boundary (shorter than a minimal
        // frame) is truncated and the prefix still replays.
        for tail_len in [1usize, 3, 7] {
            let tail = vec![0xAB; tail_len];
            plant_wal(&crash_dir, &wal, boundaries[k], &tail, None);
            let (fp, report) = recover_fingerprint(&crash_dir);
            assert_eq!(fp, fingerprints[k], "torn boundary {k}+{tail_len} diverged");
            assert_eq!(report.records_replayed, k as u64);
            assert_eq!(report.bytes_truncated, tail_len as u64);
        }

        // Bit rot inside the last record: the checksum rejects it and
        // recovery lands on the previous boundary.
        if k > 0 {
            let corrupt_at = boundaries[k - 1] + 10; // inside the payload
            plant_wal(&crash_dir, &wal, boundaries[k], &[], Some(corrupt_at));
            let (fp, report) = recover_fingerprint(&crash_dir);
            assert_eq!(fp, fingerprints[k - 1], "corrupt boundary {k} diverged");
            assert_eq!(report.records_replayed, (k - 1) as u64);
            assert_eq!(report.bytes_truncated, boundaries[k] - boundaries[k - 1]);
        }
    }
}

#[test]
fn recovered_server_finishes_the_script_like_the_reference() {
    let ops = scripted_ops();
    let reference_dir = temp_dir("resume-ref");

    let mut boundaries = Vec::new();
    let final_fingerprint;
    {
        let (control, topology, home) = fresh_world();
        let (mut server, _) = HomeServer::open_at(control, topology, &reference_dir).unwrap();
        boundaries.push(server.store().unwrap().wal_len());
        for (_, op) in &ops {
            op(&mut server, &home);
            boundaries.push(server.store().unwrap().wal_len());
        }
        server.sync().unwrap();
        final_fingerprint = fingerprint_sans_sensors(&server);
    }
    let wal = std::fs::read(reference_dir.join(WAL_FILE)).unwrap();

    // Crash after k ops, recover, run the remaining ops on the recovered
    // server: the final state must be byte-identical to the reference.
    let crash_dir = temp_dir("resume-crash");
    for k in 0..boundaries.len() {
        plant_wal(&crash_dir, &wal, boundaries[k], &[], None);
        let (control, topology, home) = fresh_world();
        let (mut server, _) = HomeServer::open_at(control, topology, &crash_dir).unwrap();
        for (_, op) in &ops[k..] {
            op(&mut server, &home);
        }
        assert_eq!(
            fingerprint_sans_sensors(&server),
            final_fingerprint,
            "resume from boundary {k} ended in a different state"
        );
    }
}

/// A deterministic faulty world: the living room with the air conditioner
/// failing on a seeded pseudo-random schedule.
fn faulty_world(seed: u64) -> (ControlPoint, Topology, LivingRoomHome) {
    let registry = Registry::new();
    let home = LivingRoomHome::install(&registry);
    FaultyDevice::wrap(
        &registry,
        &DeviceId::new("aircon-lr"),
        FaultPlan::random_transient(
            seed,
            SimTime::EPOCH,
            mins(240),
            SimDuration::from_minutes(7),
            350,
        ),
    )
    .unwrap();
    (ControlPoint::new(registry), standard_topology(), home)
}

fn register_soak_rules(server: &mut HomeServer) {
    server.add_user("Tom").unwrap();
    let tom = PersonId::new("tom");
    for sentence in [
        "If temperature is higher than 28 degrees, turn on the air conditioner with \
         25 degrees of temperature setting.",
        "If temperature is higher than 31 degrees, turn on the fluorescent light.",
    ] {
        let out = server.submit(&tom, sentence).unwrap();
        assert!(matches!(out, SubmitOutcome::Registered { .. }));
    }
}

/// Per-minute sensor drive: a deterministic temperature wiggle crossing
/// both rule thresholds, so rules fire and release while the faulty
/// aircon trips breakers and queues retries.
fn drive_minute(server: &mut HomeServer, home: &LivingRoomHome, m: u64) -> String {
    let temp = 24 + ((m * 5) % 13) as i64;
    home.thermometer
        .set_reading(Rational::from_integer(temp), mins(m))
        .unwrap();
    server.step(mins(m)).to_string()
}

#[test]
fn recovered_server_resumes_seeded_soak_in_lockstep() {
    const SEED: u64 = 7;
    const CHECKPOINT_AT: u64 = 120;
    const END: u64 = 240;

    // Reference: never crashes, runs the whole soak.
    let (control, topology, home_a) = faulty_world(SEED);
    let mut server_a = HomeServer::new(control, topology);
    register_soak_rules(&mut server_a);
    let mut reference_reports = Vec::new();
    for m in 1..=END {
        let report = drive_minute(&mut server_a, &home_a, m);
        if m > CHECKPOINT_AT {
            reference_reports.push(report);
        }
    }

    // Durable twin: identical world, crashes right after a runtime
    // checkpoint mid-soak.
    let dir = temp_dir("soak");
    {
        let (control, topology, home_b) = faulty_world(SEED);
        let (mut server_b, _) = HomeServer::open_at(control, topology, &dir).unwrap();
        register_soak_rules(&mut server_b);
        for m in 1..=CHECKPOINT_AT {
            drive_minute(&mut server_b, &home_b, m);
        }
        server_b.checkpoint_runtime().unwrap();
        server_b.sync().unwrap();
    }

    // Recovery over a third identical world resumes in lockstep: every
    // remaining step report matches the never-crashed reference, and so
    // does the final runtime state.
    let (control, topology, home_c) = faulty_world(SEED);
    let (mut server_c, report) = HomeServer::open_at(control, topology, &dir).unwrap();
    assert!(report.records_replayed >= 4);
    for (i, m) in (CHECKPOINT_AT + 1..=END).enumerate() {
        let live = drive_minute(&mut server_c, &home_c, m);
        assert_eq!(
            live, reference_reports[i],
            "step at minute {m} diverged after recovery"
        );
    }
    let mut runtime_c = server_c.engine().export_runtime_json();
    let mut runtime_a = server_a.engine().export_runtime_json();
    strip_sensor_echoes(&mut runtime_c);
    strip_sensor_echoes(&mut runtime_a);
    assert_eq!(runtime_c, runtime_a);
}

#[test]
fn thousand_rule_log_recovers_completely() {
    const RULES: u64 = 1_000;
    let devices = [
        "aircon-lr",
        "tv-lr",
        "lamp-lr",
        "stereo",
        "fluorescent",
        "vcr-lr",
    ];
    let dir = temp_dir("thousand");

    {
        let (control, topology, _home) = fresh_world();
        let (mut server, _) = HomeServer::open_at(control, topology, &dir).unwrap();
        server.add_user("Tom").unwrap();
        for i in 0..RULES {
            // Identical action per device (round-robin) so no pair
            // conflicts; unique thresholds keep every condition distinct.
            let device = DeviceId::new(devices[(i % devices.len() as u64) as usize]);
            let rule = Rule::builder(PersonId::new("tom"))
                .condition(Condition::Atom(Atom::Constraint(ConstraintAtom::new(
                    SensorKey::new(DeviceId::new("thermo-lr"), "temperature"),
                    RelOp::Gt,
                    Quantity::from_integer(15 + (i % 20) as i64, Unit::Celsius),
                ))))
                .action(ActionSpec::new(device, Verb::TurnOn))
                .build(RuleId::new(i + 1))
                .unwrap();
            let out = server.register_rule(rule).unwrap();
            assert!(matches!(out, SubmitOutcome::Registered { .. }));
        }
        server.sync().unwrap();
        assert_eq!(server.engine().rules().len(), RULES as usize);
    }

    let (control, topology, _home) = fresh_world();
    let started = std::time::Instant::now();
    let (server, report) = HomeServer::open_at(control, topology, &dir).unwrap();
    let elapsed = started.elapsed();
    // records: 1 user + 1,000 rules
    assert_eq!(report.records_replayed, RULES + 1);
    assert_eq!(report.bytes_truncated, 0);
    assert_eq!(server.engine().rules().len(), RULES as usize);
    assert_eq!(server.engine().rules().next_id(), RuleId::new(RULES + 1));
    println!("recovered {RULES}-rule log in {elapsed:?} (S2 in docs/EXPERIMENTS.md)");
}

/// The fleet keeps every tenant's WAL in its own segment directory
/// (`<root>/tenants/<name>/`, [`cadel::store::segment_dir`]). The crash
/// guarantees must hold unchanged there: recovery inside one segment
/// behaves exactly like a flat store directory, and a torn-tail crash in
/// one tenant's segment cannot leak into a healthy sibling's.
#[test]
fn crash_matrix_holds_in_fleet_segment_layout() {
    let ops = scripted_ops();
    let root = temp_dir("fleet-seg");
    let healthy_dir = cadel::store::segment_dir(&root, "unit-0");

    // Reference run inside unit-0's segment.
    let final_fingerprint = {
        let (control, topology, home) = fresh_world();
        let (mut server, _) = HomeServer::open_at(control, topology, &healthy_dir).unwrap();
        for (_, op) in &ops {
            op(&mut server, &home);
        }
        server.sync().unwrap();
        server.snapshot_json().to_pretty()
    };
    let wal = std::fs::read(healthy_dir.join(WAL_FILE)).unwrap();

    // Plant a torn-tail crash in a sibling segment: recovery truncates
    // to the last record boundary and reproduces the full state.
    let torn_dir = cadel::store::segment_dir(&root, "unit-1");
    plant_wal(&torn_dir, &wal, wal.len() as u64, b"\x7fgarbage tail", None);
    let (fingerprint, report) = recover_fingerprint(&torn_dir);
    assert_eq!(fingerprint, final_fingerprint);
    assert!(report.bytes_truncated > 0);

    // The healthy sibling's bytes and recovery are untouched by the
    // sibling's crash and repair.
    assert_eq!(std::fs::read(healthy_dir.join(WAL_FILE)).unwrap(), wal);
    let (fingerprint, report) = recover_fingerprint(&healthy_dir);
    assert_eq!(fingerprint, final_fingerprint);
    assert_eq!(report.bytes_truncated, 0);
    assert_eq!(report.records_replayed, ops.len() as u64);

    let _ = std::fs::remove_dir_all(&root);
}
