//! Parallel evaluation must be invisible: the same seeded workload run
//! serially (`eval_threads = 1`) and sharded across worker threads must
//! produce byte-identical activity timelines and server snapshots.
//!
//! Two workloads, both deterministic:
//!
//! * the Fig. 1 living-room scenario under the fault-injection plan from
//!   the resilience soak — faults, retries, breakers and releases all
//!   flow through the serial commit phase, so none of it may diverge;
//! * the apartment-block load scenario — many units, same-device
//!   contention, `held for` dwell clauses and batched redundant sensor
//!   readings through the ingest coalescer.
//!
//! The thread count defaults to 4 and is overridden with
//! `CADEL_EVAL_THREADS` so CI can sweep the matrix (2, 8, …).

use cadel::sim::{ApartmentBlockScenario, LivingRoomScenario, ScenarioWorld};
use cadel::types::{DeviceId, SimDuration, SimTime};
use cadel::upnp::FaultPlan;

fn threads_under_test() -> usize {
    std::env::var("CADEL_EVAL_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 2)
        .unwrap_or(4)
}

fn hm(h: u64, m: u64) -> SimTime {
    SimTime::EPOCH + SimDuration::from_hours(h) + SimDuration::from_minutes(m)
}

/// The resilience soak's fault plan: transient aircon faults, a hard TV
/// outage, stereo event latency and a thermometer dropout.
fn faulty_world(eval_threads: usize) -> ScenarioWorld {
    let faults = vec![
        (
            DeviceId::new("aircon-lr"),
            FaultPlan::random_transient(
                7,
                hm(17, 0),
                hm(19, 15),
                SimDuration::from_minutes(1),
                350,
            ),
        ),
        (
            DeviceId::new("tv-lr"),
            FaultPlan::new().fail_between(hm(18, 0), hm(18, 8)),
        ),
        (
            DeviceId::new("stereo-lr"),
            FaultPlan::new().delay_between(hm(17, 0), hm(17, 2), SimDuration::from_secs(30)),
        ),
        (
            DeviceId::new("thermo-lr"),
            FaultPlan::new().drop_sensors_between(hm(18, 54), hm(18, 56)),
        ),
    ];
    let mut scenario = LivingRoomScenario::build_with_faults(faults);
    scenario.server_mut().set_eval_threads(eval_threads);
    scenario.run()
}

#[test]
fn living_room_fault_soak_is_thread_count_invariant() {
    let threads = threads_under_test();
    let serial = faulty_world(1);
    let parallel = faulty_world(threads);

    assert_eq!(
        serial.activity.render(),
        parallel.activity.render(),
        "activity timelines diverged between 1 and {threads} threads"
    );
    assert_eq!(
        serial.server.snapshot_json().to_compact(),
        parallel.server.snapshot_json().to_compact(),
        "server snapshots diverged between 1 and {threads} threads"
    );
    // Sanity: the workload was not inert.
    assert!(serial.activity.rows().iter().any(|r| r.firings() > 0));
}

#[test]
fn apartment_block_is_thread_count_invariant() {
    let threads = threads_under_test();
    let run = |eval_threads: usize| {
        let mut scenario = ApartmentBlockScenario::build(12, 23);
        scenario.server_mut().set_eval_threads(eval_threads);
        scenario.run(120)
    };
    let serial = run(1);
    let parallel = run(threads);

    assert_eq!(
        serial.activity.render(),
        parallel.activity.render(),
        "apartment activity diverged between 1 and {threads} threads"
    );
    assert_eq!(
        serial.server.snapshot_json().to_compact(),
        parallel.server.snapshot_json().to_compact(),
        "apartment snapshots diverged between 1 and {threads} threads"
    );
    let dispatched: usize = serial.activity.rows().iter().map(|r| r.dispatched).sum();
    assert!(dispatched > 0, "apartment workload was inert");
}
