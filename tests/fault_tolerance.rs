//! Fault-injection soak: the Fig. 1 living-room scenario runs against
//! flaky hardware under a seeded, deterministic fault plan.
//!
//! What must hold (see docs/RESILIENCE.md):
//!
//! * no panics — the engine survives injected faults on every device it
//!   actuates;
//! * determinism — two runs with the same seeds produce byte-identical
//!   activity timelines;
//! * no held-state leaks — after the run, any device with a holder is
//!   actually on, and the resilience queues are drained (every failed
//!   action was eventually dispatched, cancelled, or dead-lettered and
//!   replayed on recovery);
//! * the whole story is visible through metrics.
//!
//! One test function only: the observability switch is process-global,
//! so this binary owns it for its whole lifetime.

use cadel::sim::{LivingRoomScenario, ScenarioWorld};
use cadel::types::{DeviceId, SimDuration, SimTime};
use cadel::upnp::FaultPlan;

fn hm(h: u64, m: u64) -> SimTime {
    SimTime::EPOCH + SimDuration::from_hours(h) + SimDuration::from_minutes(m)
}

/// The seeded plan: random transient faults on the air conditioner
/// through the busy stretch, a hard TV outage right when Alan's baseball
/// rule fires, event latency on the stereo, and a sensor dropout on the
/// thermometer around the 18:55 heat spike.
fn faulty_world() -> ScenarioWorld {
    let faults = vec![
        (
            DeviceId::new("aircon-lr"),
            FaultPlan::random_transient(
                7,
                hm(17, 0),
                hm(19, 15),
                SimDuration::from_minutes(1),
                350,
            ),
        ),
        (
            DeviceId::new("tv-lr"),
            FaultPlan::new().fail_between(hm(18, 0), hm(18, 8)),
        ),
        (
            DeviceId::new("stereo-lr"),
            FaultPlan::new().delay_between(hm(17, 0), hm(17, 2), SimDuration::from_secs(30)),
        ),
        (
            DeviceId::new("thermo-lr"),
            FaultPlan::new().drop_sensors_between(hm(18, 54), hm(18, 56)),
        ),
    ];
    LivingRoomScenario::build_with_faults(faults).run()
}

#[test]
fn seeded_fault_soak_is_deterministic_and_drains() {
    cadel::obs::enable_metrics_only();

    let world = faulty_world();
    let replay = faulty_world();

    // Same seeds, same plan: byte-identical engine activity.
    assert_eq!(
        world.activity.render(),
        replay.activity.render(),
        "seeded fault runs must replay identically"
    );

    // The fault plan actually bit — and the engine still dispatched.
    let snapshot = world.server.metrics_snapshot();
    let counter = |name: &str| snapshot.counter(name).unwrap_or(0);
    assert!(
        counter("upnp_faults_injected_total") > 0,
        "no faults injected"
    );
    assert!(
        counter("engine_firings_dispatched_total") > 0,
        "nothing dispatched under faults"
    );
    assert!(
        counter("engine_retries_scheduled_total") > 0,
        "transient failures never reached the retry queue"
    );

    // Every transiently failed action was eventually dispatched,
    // cancelled, or dead-lettered and replayed: nothing left in flight
    // after the faults clear and the run winds down.
    let status = world.server.resilience_status();
    assert_eq!(status.retry_queue, 0, "retry queue not drained: {status:?}");
    assert_eq!(
        status.dead_letters, 0,
        "dead letters not replayed after recovery: {status:?}"
    );

    // No held-state leaks: a device the engine believes is held must be
    // one the scenario knows, and the holding rule must still exist.
    let engine = world.server.engine();
    for udn in [
        "stereo-lr",
        "tv-lr",
        "vcr-lr",
        "lamp-lr",
        "light-lr",
        "aircon-lr",
    ] {
        if let Some(rule) = engine.holder(&DeviceId::new(udn)) {
            assert!(
                engine.rules().get(rule).is_some(),
                "{udn} held by vanished {rule}"
            );
        }
    }

    // Breaker lifecycle is observable whenever a trip happened.
    let trips = counter("engine_breaker_trips_total");
    if trips > 0 {
        assert!(
            snapshot.gauge("engine_breakers_open").is_some(),
            "tripped breakers must expose the open-breaker gauge"
        );
    }

    cadel::obs::shutdown();
}
