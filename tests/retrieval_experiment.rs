//! Functional coverage for experiment **E1** ("Time for Retrieving
//! Devices"): 50 virtual UPnP devices, retrieval by device name and by
//! service name. The timing itself lives in
//! `crates/bench/benches/retrieval.rs`; this test pins the semantics the
//! benchmark relies on.

use cadel::devices::{install_virtual_fleet, FLEET_KINDS};
use cadel::types::{DeviceId, SimDuration};
use cadel::upnp::{ControlPoint, Registry, SearchTarget};
use std::time::Instant;

#[test]
fn fifty_virtual_devices_retrieval_by_name_and_service() {
    let registry = Registry::new();
    let udns = install_virtual_fleet(&registry, 50);
    assert_eq!(udns.len(), 50);

    // Retrieval by device name: exact, unique hits for all 50.
    for i in 0..50 {
        let found = registry.find_by_name(&format!("Virtual Device {i}"));
        assert_eq!(found, vec![DeviceId::new(format!("virtual-{i}"))]);
    }
    // Retrieval by service name/type: 10 devices per kind.
    for kind in FLEET_KINDS {
        let found = registry.find_by_service_type(&format!("urn:cadel:service:{kind}:1"));
        assert_eq!(found.len(), 10, "kind {kind}");
    }
    // Misses are empty, not errors.
    assert!(registry.find_by_name("Virtual Device 50").is_empty());
    assert!(registry
        .find_by_service_type("urn:cadel:service:submarine:1")
        .is_empty());
}

#[test]
fn retrieval_meets_the_papers_10ms_budget() {
    // The paper reports ≤ 10 ms per retrieval on 2005 hardware over a real
    // LAN. Our in-process lookups must beat that with orders of magnitude
    // to spare; assert a conservative bound so regressions surface.
    let registry = Registry::new();
    install_virtual_fleet(&registry, 50);

    let start = Instant::now();
    let rounds = 1000;
    for i in 0..rounds {
        let name = format!("Virtual Device {}", i % 50);
        assert_eq!(registry.find_by_name(&name).len(), 1);
    }
    let per_lookup = start.elapsed() / rounds;
    assert!(
        per_lookup.as_millis() < 10,
        "by-name retrieval took {per_lookup:?} per lookup"
    );

    let start = Instant::now();
    for i in 0..rounds {
        let kind = FLEET_KINDS[(i % 5) as usize];
        assert_eq!(
            registry
                .find_by_service_type(&format!("urn:cadel:service:{kind}:1"))
                .len(),
            10
        );
    }
    let per_lookup = start.elapsed() / rounds;
    assert!(
        per_lookup.as_millis() < 10,
        "by-service retrieval took {per_lookup:?} per lookup"
    );
}

#[test]
fn retrieval_scales_past_the_papers_fleet() {
    // "The retrieval time will not be a problem even when many devices
    // are in a user's home" — check the indexes stay correct at 20× the
    // paper's fleet.
    let registry = Registry::new();
    install_virtual_fleet(&registry, 1000);
    assert_eq!(registry.len(), 1000);
    assert_eq!(registry.find_by_name("Virtual Device 999").len(), 1);
    assert_eq!(
        registry
            .find_by_service_type("urn:cadel:service:lamp:1")
            .len(),
        200
    );
}

#[test]
fn ssdp_search_respects_mx_over_the_fleet() {
    let registry = Registry::new();
    install_virtual_fleet(&registry, 50);
    let cp = ControlPoint::new(registry);
    let all = cp.discover(&SearchTarget::All, SimDuration::from_secs(3));
    assert_eq!(all.len(), 50);
    let quick = cp.discover(&SearchTarget::All, SimDuration::from_millis(100));
    assert!(quick.len() < all.len());
    // Responses arrive ordered by simulated delay.
    for pair in all.windows(2) {
        assert!(pair[0].delay <= pair[1].delay);
    }
}
