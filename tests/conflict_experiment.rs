//! Functional coverage for experiment **E2** ("Time for Detecting
//! Conflicting Rules"): a database of 10,000 rules of which 100 target the
//! same device, every condition a conjunction of two inequalities; the
//! registration-time check extracts the same-device rules and solves one
//! four-inequality system per extracted rule. The timing lives in
//! `crates/bench/benches/conflict.rs`; this test pins correctness at the
//! paper's exact workload size.

use cadel::conflict::{check_consistency, find_conflicts};
use cadel::rule::{ActionSpec, Atom, Condition, ConstraintAtom, Rule, RuleDb, Verb};
use cadel::simplex::RelOp;
use cadel::types::{DeviceId, PersonId, Quantity, RuleId, SensorKey, Unit};
use std::time::Instant;

const SHARED_DEVICE: &str = "aircon-shared";

fn two_inequality_condition(temp_above: i64, humid_above: i64) -> Condition {
    let temp = Atom::Constraint(ConstraintAtom::new(
        SensorKey::new(DeviceId::new("thermo"), "temperature"),
        RelOp::Gt,
        Quantity::from_integer(temp_above, Unit::Celsius),
    ));
    let humid = Atom::Constraint(ConstraintAtom::new(
        SensorKey::new(DeviceId::new("hygro"), "humidity"),
        RelOp::Gt,
        Quantity::from_integer(humid_above, Unit::Percent),
    ));
    Condition::Atom(temp).and(Condition::Atom(humid))
}

/// Builds the paper's E2 database: `total` rules, `same_device` of them on
/// one shared device, each condition a conjunction of two inequalities.
fn e2_database(total: u64, same_device: u64) -> RuleDb {
    let mut db = RuleDb::new();
    for i in 0..total {
        let on_shared = i % (total / same_device) == 0;
        let device = if on_shared {
            DeviceId::new(SHARED_DEVICE)
        } else {
            DeviceId::new(format!("device-{i}"))
        };
        // Deterministic pseudo-random thresholds; half the shared-device
        // rules sit in a low band (5..15 °C) and half in a high band
        // (25..35 °C) so a known subset conflicts with the probe rule.
        let band = if (i / (total / same_device)).is_multiple_of(2) {
            5
        } else {
            25
        };
        let temp = band + (i % 10) as i64;
        let humid = 40 + (i % 40) as i64;
        let rule = Rule::builder(PersonId::new(format!("user-{}", i % 7)))
            .condition(two_inequality_condition(temp, humid))
            .action(ActionSpec::new(device, Verb::TurnOn).with_setting(
                "temperature",
                // Vary set-points across the *shared-device* rules
                // (they arrive every total/same_device ids) so probes
                // can hit both identical and different actions.
                Quantity::from_integer(18 + ((i / 100) % 10) as i64, Unit::Celsius),
            ))
            .build(RuleId::new(i))
            .unwrap();
        db.insert(rule).unwrap();
    }
    db
}

#[test]
fn e2_workload_extraction_and_conflicts() {
    let db = e2_database(10_000, 100);
    assert_eq!(db.len(), 10_000);
    assert_eq!(
        db.rules_for_device(&DeviceId::new(SHARED_DEVICE)).len(),
        100
    );

    // Probe rule: triggers above 30 °C / 70 % with a set-point no stored
    // rule uses, so every co-satisfiable same-device rule conflicts.
    let probe = Rule::builder(PersonId::new("probe"))
        .condition(two_inequality_condition(30, 70))
        .action(
            ActionSpec::new(DeviceId::new(SHARED_DEVICE), Verb::TurnOn)
                .with_setting("temperature", Quantity::from_integer(17, Unit::Celsius)),
        )
        .build(RuleId::new(999_999))
        .unwrap();
    assert!(check_consistency(&probe).unwrap().is_satisfiable());

    let conflicts = find_conflicts(&db, &probe).unwrap();
    // `x > max(30, t)` and `y > max(70, h)` is always satisfiable: all 100
    // same-device rules conflict, and the witness proves each one.
    assert_eq!(conflicts.len(), 100);
    for c in &conflicts {
        assert_eq!(c.rule_a(), RuleId::new(999_999));
    }

    // A probe with a *matching* action never conflicts (§4.4 requires
    // different actions)…
    let same_action_probe = Rule::builder(PersonId::new("probe"))
        .condition(two_inequality_condition(30, 70))
        .action(
            ActionSpec::new(DeviceId::new(SHARED_DEVICE), Verb::TurnOn)
                .with_setting("temperature", Quantity::from_integer(18, Unit::Celsius)),
        )
        .build(RuleId::new(999_998))
        .unwrap();
    let conflicts = find_conflicts(&db, &same_action_probe).unwrap();
    // …except against the 90 shared-device rules whose set-point differs
    // from 18 °C (bands cycle set-points 18..28; one in ten matches).
    assert_eq!(conflicts.len(), 90);
}

#[test]
fn e2_disjoint_probe_finds_no_conflicts() {
    let db = e2_database(10_000, 100);
    // Impossible co-satisfaction: temperatures below −10 °C never overlap
    // with the stored `> 5..35 °C` bands… they do overlap actually (both
    // are lower bounds); use an upper bound instead.
    let cold = Atom::Constraint(ConstraintAtom::new(
        SensorKey::new(DeviceId::new("thermo"), "temperature"),
        RelOp::Lt,
        Quantity::from_integer(0, Unit::Celsius),
    ));
    let probe = Rule::builder(PersonId::new("probe"))
        .condition(Condition::Atom(cold))
        .action(ActionSpec::new(DeviceId::new(SHARED_DEVICE), Verb::TurnOff))
        .build(RuleId::new(999_999))
        .unwrap();
    // Stored rules demand temperature > 5 at minimum; the probe demands
    // < 0: no co-satisfiable pair.
    assert!(find_conflicts(&db, &probe).unwrap().is_empty());
}

#[test]
fn e2_meets_the_papers_timing_budget() {
    // Paper: extraction ≤ 10 ms; 100 four-inequality satisfiability checks
    // ≈ 0.2 ms (2005 hardware, C Simplex library). Assert generous bounds
    // so only order-of-magnitude regressions fail the suite; exact curves
    // live in the Criterion benchmark.
    let db = e2_database(10_000, 100);
    let probe = Rule::builder(PersonId::new("probe"))
        .condition(two_inequality_condition(30, 70))
        .action(
            ActionSpec::new(DeviceId::new(SHARED_DEVICE), Verb::TurnOn)
                .with_setting("temperature", Quantity::from_integer(17, Unit::Celsius)),
        )
        .build(RuleId::new(999_999))
        .unwrap();

    // Extraction.
    let start = Instant::now();
    for _ in 0..100 {
        assert_eq!(
            db.rules_for_device(&DeviceId::new(SHARED_DEVICE)).len(),
            100
        );
    }
    let extraction = start.elapsed() / 100;
    assert!(
        extraction.as_millis() < 10,
        "extraction took {extraction:?}"
    );

    // Full conflict check (extraction + 100 solver calls).
    let start = Instant::now();
    let conflicts = find_conflicts(&db, &probe).unwrap();
    let elapsed = start.elapsed();
    assert_eq!(conflicts.len(), 100);
    assert!(
        elapsed.as_millis() < 100,
        "full conflict check took {elapsed:?}"
    );
}
