//! Integration test for experiment **F1**: the Fig. 1 control scenario.
//!
//! Asserts the *shape* of the paper's time chart: which device changes
//! state, in what order, under which arbitration decision. See
//! EXPERIMENTS.md for the side-by-side with the paper.

use cadel::sim::LivingRoomScenario;
use cadel::types::{RuleId, SimDuration, SimTime};

fn hm(h: u64, m: u64) -> SimTime {
    SimTime::EPOCH + SimDuration::from_hours(h) + SimDuration::from_minutes(m)
}

#[test]
fn figure_1_device_timelines() {
    let world = LivingRoomScenario::build().run();
    let chart = &world.chart;

    // The five tracks of Fig. 1, with the paper's label sequences.
    assert_eq!(
        chart.label_sequence("Stereo"),
        vec![
            "off",
            "jazz music vol30%",  // s1
            "jazz music vol15%",  // s'1
            "movie sound vol15%", // s3
        ]
    );
    assert_eq!(
        chart.label_sequence("TV"),
        vec!["off", "baseball game", "movie"] // t2 -> t3
    );
    assert_eq!(
        chart.label_sequence("Recorder"),
        vec!["off", "rec baseball game"] // r2
    );
    assert_eq!(
        chart.label_sequence("Room light"),
        vec!["off", "half-lighting", "bright"] // l1 -> l3
    );
    assert_eq!(
        chart.label_sequence("Air conditioner"),
        vec!["off", "25°C/60%", "24°C/55%", "27°C/65%"] // a1 -> a2 -> a3
    );
}

#[test]
fn figure_1_transition_timing() {
    let world = LivingRoomScenario::build().run();
    let chart = &world.chart;

    // *1 (17:00): Tom's rules.
    assert_eq!(chart.state_at("Stereo", hm(16, 59)), Some("off"));
    assert_eq!(
        chart.state_at("Stereo", hm(17, 2)),
        Some("jazz music vol30%")
    );
    assert_eq!(
        chart.state_at("Room light", hm(17, 2)),
        Some("half-lighting")
    );

    // 17:30 hot-and-stuffy: a1 with Tom's set-points.
    assert_eq!(chart.state_at("Air conditioner", hm(17, 29)), Some("off"));
    assert_eq!(
        chart.state_at("Air conditioner", hm(17, 32)),
        Some("25°C/60%")
    );

    // *2 (18:00): Alan arrives — TV on, stereo quieter, aircon to Alan's.
    assert_eq!(chart.state_at("TV", hm(17, 59)), Some("off"));
    assert_eq!(chart.state_at("TV", hm(18, 2)), Some("baseball game"));
    assert_eq!(
        chart.state_at("Stereo", hm(18, 2)),
        Some("jazz music vol15%")
    );
    assert_eq!(
        chart.state_at("Air conditioner", hm(18, 2)),
        Some("24°C/55%")
    );

    // 18:55 heat spike: Emily's rule triggers but she is out — suppressed.
    assert_eq!(
        chart.state_at("Air conditioner", hm(18, 58)),
        Some("24°C/55%")
    );

    // *3 (19:00): Emily arrives — everything re-arbitrates.
    assert_eq!(chart.state_at("TV", hm(19, 2)), Some("movie"));
    assert_eq!(
        chart.state_at("Stereo", hm(19, 2)),
        Some("movie sound vol15%")
    );
    assert_eq!(chart.state_at("Room light", hm(19, 2)), Some("bright"));
    assert_eq!(
        chart.state_at("Air conditioner", hm(19, 2)),
        Some("27°C/65%")
    );
    // Alan's fallback recorder starts within a couple of minutes.
    assert_eq!(
        chart.state_at("Recorder", hm(19, 3)),
        Some("rec baseball game")
    );
}

#[test]
fn scenario_registered_expected_rules_and_priorities() {
    let scenario = LivingRoomScenario::build();
    let rules = scenario.rules();
    let world = scenario.run();
    let engine = world.server.engine();

    // 11 rules (3 stereo, 2 TV, 1 recorder, 2 lights, 3 aircon).
    assert_eq!(engine.rules().len(), 11);
    // Five context-scoped priority orders were confirmed via the prompt
    // (s3, a3, t2, a2, s'1 each answered one Fig.-7 dialog).
    assert_eq!(engine.priorities().orders().len(), 5);
    assert!(engine
        .priorities()
        .orders()
        .iter()
        .all(|o| o.context().is_some()));

    // Rule ownership follows the scenario.
    let owner = |id: RuleId| engine.rules().get(id).unwrap().owner().as_str().to_owned();
    assert_eq!(owner(rules.s1), "tom");
    assert_eq!(owner(rules.s1_quiet), "tom");
    assert_eq!(owner(rules.s3), "emily");
    assert_eq!(owner(rules.t2), "alan");
    assert_eq!(owner(rules.t3), "emily");
    assert_eq!(owner(rules.r2), "alan");
    assert_eq!(owner(rules.a1), "tom");
    assert_eq!(owner(rules.a2), "alan");
    assert_eq!(owner(rules.a3), "emily");
}

#[test]
fn scenario_is_deterministic() {
    let a = LivingRoomScenario::build().run();
    let b = LivingRoomScenario::build().run();
    for track in ["Stereo", "TV", "Recorder", "Room light", "Air conditioner"] {
        assert_eq!(a.chart.label_sequence(track), b.chart.label_sequence(track));
    }
    assert_eq!(a.log, b.log);
}
