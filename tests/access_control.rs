//! Integration test for the access-control extension (the paper's §6
//! future work): per-user observe/control/arbitrate privileges enforced
//! through the registration workflow.

use cadel::devices::LivingRoomHome;
use cadel::server::{HomeServer, Privilege, Scope, ServerError, SubmitOutcome};
use cadel::types::{DeviceId, PersonId, Topology};
use cadel::upnp::{ControlPoint, Registry};

fn setup() -> (HomeServer, LivingRoomHome) {
    let registry = Registry::new();
    let home = LivingRoomHome::install(&registry);
    let mut topology = Topology::new("home");
    topology.add_floor("first floor").unwrap();
    topology.add_room("living room", "first floor").unwrap();
    topology.add_room("hall", "first floor").unwrap();
    let mut server = HomeServer::new(ControlPoint::new(registry), topology);
    for name in ["alan", "kid"] {
        server.add_user(name).unwrap();
    }
    (server, home)
}

const KID_TV_RULE: &str = "When a movie is on air, turn on the TV.";

#[test]
fn enforcement_off_everything_passes() {
    let (mut server, _home) = setup();
    let kid = PersonId::new("kid");
    assert!(matches!(
        server.submit(&kid, KID_TV_RULE).unwrap(),
        SubmitOutcome::Registered { .. }
    ));
}

#[test]
fn kid_cannot_control_tv_until_granted() {
    let (mut server, _home) = setup();
    let kid = PersonId::new("kid");
    server.access_mut().set_enforcing(true);
    // Observe the EPG is also needed; deny everything first.
    let err = server.submit(&kid, KID_TV_RULE).unwrap_err();
    match err {
        ServerError::AccessDenied(d) => {
            assert_eq!(d.user().as_str(), "kid");
            assert_eq!(d.privilege(), Privilege::Control);
            assert_eq!(d.device().as_str(), "tv-lr");
        }
        other => panic!("expected denial, got {other:?}"),
    }
    assert_eq!(server.engine().rules().len(), 0);

    // A device-scoped grant unlocks exactly the TV.
    server.access_mut().grant(
        &kid,
        Scope::Device(DeviceId::new("tv-lr")),
        Privilege::Control,
    );
    assert!(matches!(
        server.submit(&kid, KID_TV_RULE).unwrap(),
        SubmitOutcome::Registered { .. }
    ));
    // But not the alarm.
    let err = server
        .submit(&kid, "When a movie is on air, turn on the alarm.")
        .unwrap_err();
    assert!(matches!(err, ServerError::AccessDenied(_)));
}

#[test]
fn conditions_require_observe_on_referenced_devices() {
    let (mut server, _home) = setup();
    let kid = PersonId::new("kid");
    server.access_mut().set_enforcing(true);
    server.access_mut().grant(
        &kid,
        Scope::Device(DeviceId::new("fan-x")),
        Privilege::Control,
    );
    server.access_mut().grant(
        &kid,
        Scope::Device(DeviceId::new("tv-lr")),
        Privilege::Control,
    );
    // "the TV is turned on" observes the TV's power state — allowed only
    // with Observe, which Control does not imply.
    let err = server
        .submit(&kid, "If the TV is turned on, turn on the TV.")
        .unwrap_err();
    match err {
        ServerError::AccessDenied(d) => assert_eq!(d.privilege(), Privilege::Observe),
        other => panic!("expected observe denial, got {other:?}"),
    }
    server.access_mut().grant(
        &kid,
        Scope::Device(DeviceId::new("tv-lr")),
        Privilege::Observe,
    );
    assert!(server
        .submit(&kid, "If the TV is turned on, turn on the TV.")
        .is_ok());
}

#[test]
fn type_scoped_grant_covers_all_lights() {
    let (mut server, _home) = setup();
    let kid = PersonId::new("kid");
    server.access_mut().set_enforcing(true);
    server.access_mut().grant(
        &kid,
        Scope::DeviceType("urn:cadel:device:light:1".into()),
        Privilege::Control,
    );
    // Any light works…
    assert!(server
        .submit(
            &kid,
            "When a movie is on air, turn on the light at the hall."
        )
        .is_ok());
    assert!(server
        .submit(&kid, "When a movie is on air, dim the floor lamp.")
        .is_ok());
    // …the TV does not.
    assert!(matches!(
        server.submit(&kid, KID_TV_RULE),
        Err(ServerError::AccessDenied(_))
    ));
}

#[test]
fn arbitration_requires_the_privilege() {
    let (mut server, _home) = setup();
    let alan = PersonId::new("alan");
    let kid = PersonId::new("kid");
    server.access_mut().grant_all(&alan);
    server.access_mut().grant(
        &kid,
        Scope::Device(DeviceId::new("tv-lr")),
        Privilege::Control,
    );
    server
        .access_mut()
        .grant(&kid, Scope::AllDevices, Privilege::Observe);
    server.access_mut().set_enforcing(true);

    // Two conflicting TV rules.
    server
        .submit(&alan, "When a movie is on air, turn on the TV.")
        .unwrap();
    let ticket = match server
        .submit(&kid, "When a movie is on air, turn off the TV.")
        .unwrap()
    {
        SubmitOutcome::ConflictDetected { ticket, .. } => ticket,
        other => panic!("expected conflict, got {other:?}"),
    };

    // The kid may not answer the priority prompt…
    let err = server
        .confirm_with_priority_as(&kid, ticket, vec![ticket], None, None)
        .unwrap_err();
    assert!(matches!(err, ServerError::AccessDenied(_)));
    // …but Alan may.
    server
        .confirm_with_priority_as(&alan, ticket, vec![ticket], None, None)
        .unwrap();
    assert_eq!(server.engine().rules().len(), 2);
}
