//! End-to-end observability: run the Fig. 1 living-room scenario with a
//! collector installed and read the whole pipeline back through
//! [`HomeServer::metrics_snapshot`].
//!
//! Every stage of the registration and execution pipeline must leave a
//! trace — parse, compile, lower, Simplex, conflict check, registration,
//! engine steps, UPnP dispatch — and the structured-event stream must
//! carry the registration/arbitration story.
//!
//! One test function only: the observability switch is process-global,
//! so this binary owns it for its whole lifetime.

use cadel::obs::{Level, RingCollector};
use cadel::sim::LivingRoomScenario;
use std::sync::Arc;

#[test]
fn scenario_populates_metrics_and_events() {
    let ring = Arc::new(RingCollector::new(8_192));
    cadel::obs::install(ring.clone());

    let world = LivingRoomScenario::build().run();
    let snapshot = world.server.metrics_snapshot();

    // --- counters: one per pipeline stage ---------------------------
    let counter = |name: &str| {
        snapshot
            .counter(name)
            .unwrap_or_else(|| panic!("counter {name} missing from snapshot"))
    };
    assert!(counter("lang_parses_total") > 0, "parser untouched");
    assert!(counter("lang_compiles_total") > 0, "compiler untouched");
    assert!(counter("rule_lower_total") > 0, "no rules lowered");
    assert!(counter("simplex_solves_total") > 0, "Simplex never ran");
    assert!(counter("conflict_checks_total") > 0, "no conflict checks");
    assert!(
        counter("conflict_pairs_conflicting_total") > 0,
        "the scenario's five conflicts went unrecorded"
    );
    assert!(counter("server_submits_total") >= 10, "submissions missing");
    assert!(
        counter("server_rules_registered_total") >= 11,
        "registrations missing"
    );
    assert!(
        counter("server_rules_conflicted_total") >= 5,
        "conflict prompts missing"
    );
    assert!(counter("engine_steps_total") > 0, "engine never stepped");
    assert!(
        counter("engine_firings_dispatched_total") > 0,
        "nothing dispatched"
    );
    assert!(counter("upnp_invokes_total") > 0, "no UPnP invocations");

    // --- latency histograms -----------------------------------------
    for name in [
        "lang_parse_duration_ns",
        "lang_compile_duration_ns",
        "rule_lower_duration_ns",
        "simplex_solve_duration_ns",
        "conflict_check_duration_ns",
        "server_submit_duration_ns",
        "engine_step_duration_ns",
        "upnp_invoke_duration_ns",
    ] {
        let h = snapshot
            .histogram(name)
            .unwrap_or_else(|| panic!("histogram {name} missing from snapshot"));
        assert!(h.count > 0, "{name} recorded nothing");
        assert!(h.p50() <= h.p95() && h.p95() <= h.p99(), "{name} quantiles");
    }

    // --- exposition --------------------------------------------------
    let text = snapshot.render_prometheus();
    assert!(text.contains("engine_steps_total"));
    assert!(text.contains("upnp_invoke_duration_ns_bucket"));

    // --- structured events -------------------------------------------
    assert!(
        !ring.events_named("server.rule_registered").is_empty(),
        "registration events missing"
    );
    assert!(
        !ring
            .events_named("server.rule_conflict_detected")
            .is_empty(),
        "conflict events missing"
    );
    let steps = ring.events_named("engine.step");
    assert!(!steps.is_empty(), "step spans missing");
    assert!(steps.iter().all(|t| t.event.level == Level::Debug));
    assert!(
        steps.iter().all(|t| t.event.elapsed_ns.is_some()),
        "step spans must carry a duration"
    );

    // The activity timeline and the metrics agree on engine activity.
    let dispatched: usize = world.activity.rows().iter().map(|r| r.dispatched).sum();
    let replaced: usize = world.activity.rows().iter().map(|r| r.replaced).sum();
    assert_eq!(
        counter("engine_firings_dispatched_total"),
        dispatched as u64
    );
    assert_eq!(counter("engine_firings_replaced_total"), replaced as u64);

    cadel::obs::shutdown();
}
