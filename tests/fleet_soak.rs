//! Fleet soak: a large tenant population with faults injected into a
//! small subset, proving the supervision contract end to end.
//!
//! Two runs share identical per-tenant traffic (each tenant's sensor
//! walk is keyed by its own index, independent of everything else):
//!
//! * a **reference** run with no faults anywhere;
//! * a **chaos** run where ≤5 % of tenants are faulted — some panic
//!   (a rule-evaluation hook detonates mid-step), some hit simulated
//!   `ENOSPC` (WAL appends start failing mid-soak), and some get a
//!   flaky air conditioner (actuator faults that flow into the
//!   engine's retry/dead-letter resilience, *not* the supervisor).
//!
//! The assertions are the tentpole's acceptance criteria:
//!
//! 1. **Zero cross-tenant divergence** — every *unaffected* tenant's
//!    per-wave step reports and final snapshot are byte-identical
//!    between the two runs. Panic isolation, quarantine, and shedding
//!    in one tenant must be invisible to its neighbours.
//! 2. **Every quarantined tenant restarted from its WAL** — panicking
//!    and `ENOSPC` tenants end the soak healthy with `restarts ≥ 1`,
//!    and a fresh recovery from each one's WAL segment reproduces the
//!    live server's state (sensor echoes excluded: they are re-learned
//!    from live readings, not persisted).
//! 3. Device-faulted tenants are *not* quarantined: actuator failures
//!    are the engine resilience layer's job.
//!
//! Scale is tunable for CI smoke via `CADEL_SOAK_TENANTS` /
//! `CADEL_SOAK_TICKS` (defaults: 1000 tenants, 20 ticks).

use cadel::fleet::{Fleet, FleetConfig, StepStatus, TenantState};
use cadel::server::HomeServer;
use cadel::sim::{tenant_name, unit_tenant_builder, FleetTraffic};
use cadel::types::json::Json;
use cadel::types::{SimDuration, SimTime};
use cadel::upnp::FaultPlan;
use std::path::PathBuf;

fn mins(m: u64) -> SimTime {
    SimTime::EPOCH + SimDuration::from_minutes(m)
}

fn soak_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cadel-soak-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn env_scale(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn strip_sensor_echoes(doc: &mut Json) {
    if let Json::Obj(members) = doc {
        members.retain(|(key, _)| key != "sensors");
        for (_, value) in members.iter_mut() {
            strip_sensor_echoes(value);
        }
    }
}

fn fingerprint_sans_sensors(server: &HomeServer) -> String {
    let mut doc = server.snapshot_json();
    strip_sensor_echoes(&mut doc);
    doc.to_pretty()
}

/// Which fault (if any) a tenant index gets in the chaos run. Spread
/// deterministically so faulted tenants sit between healthy neighbours.
#[derive(Clone, Copy, PartialEq)]
enum Fault {
    None,
    Panic,
    Enospc,
    Device,
}

fn fault_of(index: usize) -> Fault {
    match index % 101 {
        5 => Fault::Panic,
        17 => Fault::Enospc,
        29 => Fault::Device,
        _ => Fault::None,
    }
}

const TRAFFIC_SEED: u64 = 20250809;
const ENOSPC_ARM_TICK: u64 = 8;

struct RunResult {
    fleet: Fleet,
    /// Per tenant: one line per wave it stepped in (tick, status tag,
    /// rendered step report).
    logs: Vec<Vec<String>>,
}

fn run_fleet(root: &PathBuf, tenants: usize, ticks: u64, chaos: bool) -> RunResult {
    let mut fleet = Fleet::new(
        root,
        FleetConfig {
            workers: 8,
            checkpoint_every: 4,
            ..FleetConfig::default()
        },
    );
    let plain = unit_tenant_builder(None);
    for i in 0..tenants {
        let builder = if chaos && fault_of(i) == Fault::Device {
            unit_tenant_builder(Some(FaultPlan::random_transient(
                9000 + i as u64,
                SimTime::EPOCH,
                mins(ticks),
                SimDuration::from_minutes(2),
                400,
            )))
        } else {
            plain.clone()
        };
        fleet.add_tenant_arc(tenant_name(i), builder).unwrap();
    }
    if chaos {
        // Arm the panic hooks: the first rule verdict in the first wave
        // detonates. The hook dies with the quarantined engine and is
        // not re-armed by the rebuild, so each tenant panics once.
        for i in (0..tenants).filter(|&i| fault_of(i) == Fault::Panic) {
            fleet
                .server_mut_of(&tenant_name(i))
                .unwrap()
                .engine_mut()
                .set_eval_hook(Some(Box::new(|rule, _| {
                    panic!("soak chaos: rule {rule:?} evaluation detonated")
                })));
        }
    }

    let mut traffic = FleetTraffic::new(tenants, TRAFFIC_SEED);
    let mut logs: Vec<Vec<String>> = vec![Vec::new(); tenants];
    for tick in 0..ticks {
        let at = mins(tick);
        if chaos && tick == ENOSPC_ARM_TICK {
            for i in (0..tenants).filter(|&i| fault_of(i) == Fault::Enospc) {
                // The tenant is healthy here (no earlier fault), so the
                // server handle exists.
                fleet
                    .server_mut_of(&tenant_name(i))
                    .unwrap()
                    .inject_append_faults(true);
            }
        }
        for (i, batch) in traffic.tick(at).into_iter().enumerate() {
            for ingress in batch {
                fleet.offer_at(i, ingress).unwrap();
            }
        }
        let wave = fleet.step_ready(at);
        for outcome in &wave.outcomes {
            let tag = match &outcome.status {
                StepStatus::Ok => "ok",
                StepStatus::Panicked(_) => "panicked",
                StepStatus::Overrun { .. } => "overrun",
                StepStatus::StoreFault(_) => "store-fault",
            };
            let report = outcome
                .report
                .as_ref()
                .map(|r| r.to_string())
                .unwrap_or_else(|| "-".to_owned());
            logs[outcome.index].push(format!("{tick} {tag} {report}"));
        }
    }
    let failures = fleet.checkpoint_all();
    assert!(
        failures.is_empty(),
        "end-of-soak checkpoint failed: {failures:?}"
    );
    RunResult { fleet, logs }
}

#[test]
fn faulted_fleet_soak_isolates_tenants_and_restarts_from_wal() {
    let tenants = env_scale("CADEL_SOAK_TENANTS", 1000);
    let ticks = env_scale("CADEL_SOAK_TICKS", 20) as u64;
    let faulted: Vec<usize> = (0..tenants)
        .filter(|&i| fault_of(i) != Fault::None)
        .collect();
    assert!(
        faulted.len() * 20 <= tenants || tenants < 101,
        "fault ratio exceeds 5%"
    );

    let ref_root = soak_root("reference");
    let chaos_root = soak_root("chaos");
    let reference = run_fleet(&ref_root, tenants, ticks, false);
    let chaos = run_fleet(&chaos_root, tenants, ticks, true);

    // Sanity: chaos actually happened.
    let health = chaos.fleet.health();
    if tenants > 101 {
        assert!(health.panics > 0, "no panic was injected");
        assert!(health.store_faults > 0, "no store fault was injected");
        assert!(health.restarts > 0, "nothing restarted");
    }

    // (1) Zero cross-tenant divergence: unaffected tenants are
    // byte-identical to the fault-free reference, wave by wave and in
    // their final snapshot (sensor echoes included — traffic is
    // identical).
    for i in (0..tenants).filter(|&i| fault_of(i) == Fault::None) {
        assert_eq!(
            reference.logs[i], chaos.logs[i],
            "tenant {i} diverged from the no-fault reference"
        );
        let name = tenant_name(i);
        assert_eq!(
            reference
                .fleet
                .server_of(&name)
                .unwrap()
                .snapshot_json()
                .to_pretty(),
            chaos
                .fleet
                .server_of(&name)
                .unwrap()
                .snapshot_json()
                .to_pretty(),
            "tenant {i} final state diverged from the no-fault reference"
        );
    }

    // (2) Every quarantined tenant came back healthy via a WAL restart,
    // and its WAL segment alone reproduces its live state.
    let rebuild = unit_tenant_builder(None);
    for &i in &faulted {
        let name = tenant_name(i);
        let state = chaos.fleet.state_of(&name).unwrap();
        assert_eq!(state, TenantState::Healthy, "tenant {i} ended unhealthy");
        match fault_of(i) {
            Fault::Panic | Fault::Enospc => {
                assert!(
                    chaos.fleet.restarts_of(&name).unwrap() >= 1,
                    "quarantined tenant {i} never restarted from its WAL"
                );
                let recovery = chaos.fleet.last_recovery_of(&name).unwrap();
                assert!(
                    recovery.records_replayed > 0 || recovery.snapshot_used,
                    "tenant {i} restarted without reading its WAL"
                );
            }
            // (3) Actuator faults are the engine resilience layer's
            // problem; the supervisor must not quarantine for them.
            Fault::Device => {
                assert_eq!(
                    chaos.fleet.restarts_of(&name),
                    Some(0),
                    "device-faulted tenant {i} was wrongly quarantined"
                );
            }
            Fault::None => unreachable!(),
        }
        let live = fingerprint_sans_sensors(chaos.fleet.server_of(&name).unwrap());
        let dir = chaos.fleet.dir_of(&name).unwrap();
        let recovered = rebuild(&dir).unwrap();
        assert_eq!(
            fingerprint_sans_sensors(&recovered.server),
            live,
            "tenant {i}: WAL segment does not reproduce live state"
        );
    }

    // All tenants ended healthy; quarantines were transient.
    assert_eq!(chaos.fleet.health().healthy, tenants);

    // The noisy-neighbour rollup blames a faulted tenant, not a healthy
    // one, for the disruption weighting.
    if tenants > 101 {
        let panicky = chaos.fleet.rollup().load(&tenant_name(5));
        assert!(panicky.panics >= 1);
        drop(reference);
        let _ = chaos.fleet.render_noisy(5);
    }

    drop(chaos);
    let _ = std::fs::remove_dir_all(&ref_root);
    let _ = std::fs::remove_dir_all(&chaos_root);
}
