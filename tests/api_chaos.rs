//! Network chaos soak for the hardened frontend: healthy clients and
//! hostile connections share one live listener, and the hostile ones
//! must change *nothing*.
//!
//! Two runs drive identical healthy traffic (seeded per-tenant sensor
//! walks posted over real TCP, one fleet wave per simulated minute):
//!
//! * a **reference** run with only healthy clients;
//! * a **chaos** run where roughly one connection in ten is faulty —
//!   torn frames, seeded garbage bytes, mid-body disconnects,
//!   slow-loris drips, and stalled readers ([`cadel::sim::netchaos`]),
//!   all aimed at a mutating endpoint (a ghost tenant's readings).
//!
//! The assertions are the tentpole's acceptance criteria:
//!
//! 1. **Every healthy submission lands** — each batch is admitted in
//!    full (202, zero rejects) in both runs.
//! 2. **Byte-identical tenant state** — every tenant's final snapshot
//!    in the chaos run equals the reference run exactly. Hostile
//!    connections never corrupt tenant state or starve healthy
//!    clients.
//! 3. **No panic escapes** — `api_worker_panics_total` stays zero and
//!    the service still answers after the bombardment, while the
//!    parse-error counter proves the faults really hit the parser.
//! 4. **Graceful drain stays clean** — both runs shut down with
//!    drained inboxes and successful checkpoints.
//!
//! Scale is tunable for CI smoke via `CADEL_API_SOAK_TENANTS` /
//! `CADEL_API_SOAK_TICKS` (defaults: 6 tenants, 25 ticks).

use cadel::api::{ApiClient, ApiConfig, ApiServer};
use cadel::fleet::{Fleet, FleetConfig, Ingress};
use cadel::sim::netchaos::{inject, NetChaos};
use cadel::sim::{tenant_name, unit_tenant_builder, FleetTraffic};
use cadel::types::json::Json;
use cadel::types::{SimDuration, SimTime, Value};
use std::path::PathBuf;
use std::time::Duration;

fn mins(m: u64) -> SimTime {
    SimTime::EPOCH + SimDuration::from_minutes(m)
}

fn soak_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cadel-api-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn env_scale(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Serializes one ingress entry into the wire reading shape.
fn wire_reading(ingress: &Ingress) -> Json {
    let mut members = vec![
        ("device", Json::str(ingress.device.to_string())),
        ("variable", Json::str(ingress.variable.clone())),
    ];
    match ingress.value.clone() {
        Value::Number(q) => {
            assert!(q.value().is_integer(), "traffic readings are integers");
            members.push(("value", Json::Int(q.value().numer() as i64)));
            members.push(("unit", Json::str(q.unit().to_string())));
        }
        Value::Bool(b) => members.push(("value", Json::Bool(b))),
        Value::Text(t) => members.push(("value", Json::str(t))),
        other => panic!("traffic never emits {other:?}"),
    }
    members.push(("at_ms", Json::Int(ingress.at.as_millis() as i64)));
    Json::obj(members)
}

/// The raw bytes of a healthy-shaped mutating request aimed at a tenant
/// that does not exist — even a fault that accidentally completes can
/// only ever earn a 404.
fn ghost_request(at: SimTime) -> Vec<u8> {
    let body = Json::obj(vec![(
        "readings",
        Json::Arr(vec![wire_reading(&Ingress {
            device: cadel::types::DeviceId::new("thermo-0"),
            variable: "temperature".into(),
            value: Value::Number(cadel::types::Quantity::from_integer(
                99,
                cadel::types::Unit::Celsius,
            )),
            at,
        })]),
    )])
    .to_compact();
    format!(
        "POST /tenants/chaos-ghost/readings HTTP/1.1\r\nHost: cadel\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

struct SoakOutcome {
    /// Per-tenant final snapshots, in tenant order.
    snapshots: Vec<(String, String)>,
    /// Hostile connections injected.
    faults_injected: usize,
}

fn run_soak(tag: &str, tenants: usize, ticks: usize, chaos: bool) -> SoakOutcome {
    let mut fleet = Fleet::new(
        soak_root(tag),
        FleetConfig {
            inbox_capacity: 64,
            ..FleetConfig::default()
        },
    );
    let builder = unit_tenant_builder(None);
    for i in 0..tenants {
        fleet
            .add_tenant_arc(tenant_name(i), builder.clone())
            .expect("tenant builds");
    }
    let server = ApiServer::bind(
        "127.0.0.1:0",
        fleet,
        ApiConfig {
            // All soak clients share 127.0.0.1: per-IP limiting would
            // throttle the soak itself, so it is off here (it has its
            // own dedicated test).
            rate_limit: None,
            read_timeout: Duration::from_millis(100),
            idle_timeout: Duration::from_millis(500),
            ..ApiConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr();

    let mut traffic = FleetTraffic::new(tenants, 0xC4DE1);
    let mut netchaos = NetChaos::new(0x5EED);
    let mut client = ApiClient::connect(addr).expect("connect");
    let mut faults_injected = 0usize;

    for tick in 0..ticks {
        let at = mins(tick as u64 + 1);
        let batches = traffic.tick(at);
        for (i, batch) in batches.iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            // Interleave hostile connections between healthy posts:
            // roughly one faulty connection per ten healthy ones.
            if chaos && (tick * tenants + i).is_multiple_of(10) {
                let request = ghost_request(at);
                let fault = netchaos.pick(request.len());
                inject(&mut netchaos, addr, &request, &fault).expect("listener reachable");
                faults_injected += 1;
            }
            let body = Json::obj(vec![(
                "readings",
                Json::Arr(batch.iter().map(wire_reading).collect()),
            )]);
            let response = client
                .post(&format!("/tenants/{}/readings", tenant_name(i)), &body)
                .expect("healthy post");
            assert_eq!(
                response.status,
                202,
                "tick {tick} tenant {i}: healthy batch must be admitted: {}",
                response.text()
            );
            let doc = response.json().expect("admission json");
            assert_eq!(
                doc.get("accepted").and_then(Json::as_int),
                Some(batch.len() as i64),
                "tick {tick} tenant {i}: every healthy reading must land"
            );
            assert_eq!(
                doc.get("rejected").and_then(Json::as_int),
                Some(0),
                "tick {tick} tenant {i}: healthy readings must not be shed"
            );
        }
        // Drive the wave over the wire, like a scheduler would.
        let stepped = client
            .post(
                "/step",
                &Json::obj(vec![("at_ms", Json::Int(at.as_millis() as i64))]),
            )
            .expect("step");
        assert_eq!(stepped.status, 200, "{}", stepped.text());
    }

    // The service must still answer after the bombardment.
    let health = client.get("/healthz").expect("healthz after soak");
    assert_eq!(health.status, 200);

    let snapshots = server.with_fleet(|fleet| {
        (0..tenants)
            .map(|i| {
                let name = tenant_name(i);
                let snapshot = fleet
                    .server_of(&name)
                    .unwrap_or_else(|| panic!("tenant {name} must end healthy"))
                    .snapshot_json()
                    .to_compact();
                (name, snapshot)
            })
            .collect()
    });

    let outcome = server.shutdown(Duration::from_secs(10), mins(ticks as u64 + 1));
    assert!(
        outcome.is_clean(),
        "{tag}: drain must be clean: {outcome:?}"
    );

    SoakOutcome {
        snapshots,
        faults_injected,
    }
}

#[test]
fn hostile_connections_never_corrupt_tenant_state() {
    cadel::obs::enable_metrics_only();
    let tenants = env_scale("CADEL_API_SOAK_TENANTS", 6);
    let ticks = env_scale("CADEL_API_SOAK_TICKS", 25);

    let reference = run_soak("reference", tenants, ticks, false);
    assert_eq!(reference.faults_injected, 0);

    let chaos = run_soak("chaos", tenants, ticks, true);
    assert!(
        chaos.faults_injected * 8 >= tenants * ticks / 2,
        "chaos run should inject roughly one fault per ten healthy posts \
         ({} faults for {} tenant-ticks)",
        chaos.faults_injected,
        tenants * ticks
    );

    // Acceptance criterion: byte-identical tenant state.
    for ((name_a, snap_a), (name_b, snap_b)) in
        reference.snapshots.iter().zip(chaos.snapshots.iter())
    {
        assert_eq!(name_a, name_b);
        assert_eq!(
            snap_a, snap_b,
            "tenant {name_a}: chaos run diverged from reference"
        );
    }

    // Acceptance criterion: no panic escaped a worker, and the faults
    // genuinely exercised the parser.
    let metrics = cadel::obs::metrics_snapshot();
    assert_eq!(
        metrics.counter("api_worker_panics_total").unwrap_or(0),
        0,
        "no handler or connection-loop panic may escape"
    );
    assert!(
        metrics.counter("api_parse_errors_total").unwrap_or(0) > 0,
        "the chaos run should have produced typed parse errors"
    );
    assert!(
        metrics.counter("api_requests_total").unwrap_or(0) as usize >= tenants * ticks,
        "healthy traffic should dominate the request count"
    );
}
