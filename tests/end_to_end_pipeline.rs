//! Cross-crate integration: CADEL sentence → parser → compiler →
//! consistency/conflict checks → rule database → engine → UPnP devices.

use cadel::devices::LivingRoomHome;
use cadel::server::{HomeServer, ServerError, SubmitOutcome};
use cadel::types::{PersonId, Rational, SimDuration, SimTime, Topology, Value};
use cadel::upnp::{ControlPoint, Registry, SearchTarget, VirtualDevice};

fn hm(h: u64, m: u64) -> SimTime {
    SimTime::EPOCH + SimDuration::from_hours(h) + SimDuration::from_minutes(m)
}

fn setup() -> (HomeServer, LivingRoomHome) {
    let registry = Registry::new();
    let home = LivingRoomHome::install(&registry);
    let mut topology = Topology::new("home");
    topology.add_floor("first floor").unwrap();
    topology.add_room("living room", "first floor").unwrap();
    topology.add_room("hall", "first floor").unwrap();
    let mut server = HomeServer::new(ControlPoint::new(registry), topology);
    for name in ["tom", "alan", "emily"] {
        server.add_user(name).unwrap();
    }
    (server, home)
}

#[test]
fn paper_rule_example_1_full_loop() {
    // §4.2 example (1): numeric conjunction + configuration.
    let (mut server, home) = setup();
    let tom = PersonId::new("tom");
    let outcome = server
        .submit(
            &tom,
            "If humidity is higher than 80 percent and temperature is higher than \
             28 degrees, turn on the air conditioner with 25 degrees of temperature setting.",
        )
        .unwrap();
    assert!(matches!(outcome, SubmitOutcome::Registered { .. }));

    // Only one threshold crossed: nothing happens.
    home.hygrometer
        .set_reading(Rational::from_integer(85), SimTime::from_millis(1))
        .unwrap();
    assert!(server.step(SimTime::from_millis(2)).dispatched().is_empty());
    // Both crossed: the aircon turns on with the configured set-point.
    home.thermometer
        .set_reading(Rational::from_integer(29), SimTime::from_millis(3))
        .unwrap();
    let report = server.step(SimTime::from_millis(4));
    assert_eq!(report.dispatched().len(), 1);
    assert_eq!(home.aircon.query("power").unwrap(), Value::Bool(true));
    assert_eq!(
        home.aircon.query("setpoint").unwrap(),
        Value::Number(cadel::types::Quantity::from_integer(
            25,
            cadel::types::Unit::Celsius
        ))
    );
}

#[test]
fn paper_rule_example_2_full_loop() {
    // §4.2 example (2): time window + event + ambient condition +
    // location-scoped device.
    let (mut server, home) = setup();
    let tom = PersonId::new("tom");
    server
        .submit(
            &tom,
            "After evening, if someone returns home and the hall is dark, \
             turn on the light at the hall.",
        )
        .unwrap();

    // Morning arrival in a dark hall: the time window gates the rule.
    home.hall_lux
        .set_reading(Rational::from_integer(40), hm(9, 0))
        .unwrap();
    home.hall_presence
        .announce_arrival(&tom, "returns home", hm(9, 0));
    server.step(hm(9, 1));
    assert_eq!(home.hall_light.query("power").unwrap(), Value::Bool(false));

    // Evening arrival in a bright hall: the ambient condition gates it.
    home.hall_lux
        .set_reading(Rational::from_integer(500), hm(19, 0))
        .unwrap();
    home.hall_presence
        .announce_arrival(&tom, "returns home", hm(19, 0));
    server.step(hm(19, 1));
    assert_eq!(home.hall_light.query("power").unwrap(), Value::Bool(false));

    // Evening arrival in a dark hall: fires.
    home.hall_lux
        .set_reading(Rational::from_integer(40), hm(20, 0))
        .unwrap();
    home.hall_presence
        .announce_arrival(&tom, "returns home", hm(20, 0));
    server.step(hm(20, 1));
    assert_eq!(home.hall_light.query("power").unwrap(), Value::Bool(true));
}

#[test]
fn paper_rule_example_3_duration_gate() {
    // §4.2 example (3): "for 1 hour" with an interruption reset.
    let (mut server, home) = setup();
    let tom = PersonId::new("tom");
    server
        .submit(
            &tom,
            "At night, if entrance door is unlocked for 1 hour, turn on the alarm.",
        )
        .unwrap();

    home.entrance_door.set_locked(false, hm(22, 30));
    server.step(hm(22, 30));
    server.step(hm(23, 0));
    assert_eq!(home.alarm.query("power").unwrap(), Value::Bool(false));
    // Re-locked at 23:10 — the hour resets.
    home.entrance_door.set_locked(true, hm(23, 10));
    server.step(hm(23, 10));
    home.entrance_door.set_locked(false, hm(23, 15));
    server.step(hm(23, 15));
    // 1 hour after the FIRST unlock, but only 20 min after the reset.
    server.step(hm(23, 35));
    assert_eq!(home.alarm.query("power").unwrap(), Value::Bool(false));
    // 1 hour after the reset (00:16, still night): fires.
    server.step(hm(23, 15) + SimDuration::from_minutes(61));
    assert_eq!(home.alarm.query("power").unwrap(), Value::Bool(true));
}

#[test]
fn word_definitions_are_per_user_and_guidance_finds_them() {
    let (mut server, _home) = setup();
    let tom = PersonId::new("tom");
    server
        .submit(
            &tom,
            "Let's call the condition that humidity is higher than 60 percent and \
             temperature is higher than 28 degrees hot and stuffy",
        )
        .unwrap();
    let dictionary = server.users().effective_dictionary(&tom).unwrap();
    assert!(dictionary.condition("hot and stuffy").is_some());

    // Guidance resolves the word back to its sensors (Fig. 5).
    let guidance = server.guidance();
    let sensors = guidance.sensors_for_word(
        "hot and stuffy",
        &dictionary,
        &cadel::types::LocationSelector::Anywhere,
    );
    let devices: Vec<&str> = sensors.iter().map(|s| s.device.as_str()).collect();
    assert_eq!(devices, ["hygro-lr", "thermo-lr"]);
}

#[test]
fn ssdp_discovery_and_control_round_trip() {
    let (server, home) = setup();
    let cp = server.engine().control();
    let found = cp.discover(&SearchTarget::All, SimDuration::from_secs(3));
    assert_eq!(found.len(), 15);
    let tvs = cp.discover(
        &SearchTarget::DeviceType("urn:cadel:device:tv:1".into()),
        SimDuration::from_secs(3),
    );
    assert_eq!(tvs.len(), 1);
    cp.invoke(&tvs[0].udn, "TurnOn", &[], SimTime::EPOCH)
        .unwrap();
    assert_eq!(home.tv.query("power").unwrap(), Value::Bool(true));
}

#[test]
fn parse_errors_surface_with_positions() {
    let (mut server, _home) = setup();
    let tom = PersonId::new("tom");
    let err = server
        .submit(&tom, "please make everything nice")
        .unwrap_err();
    match err {
        ServerError::Lang(e) => assert!(e.to_string().contains("verb")),
        other => panic!("expected a language error, got {other:?}"),
    }
    let err = server
        .submit(
            &tom,
            "If the moon is higher than 3 degrees, turn on the TV.",
        )
        .unwrap_err();
    assert!(err.to_string().contains("moon"));
}

#[test]
fn multi_user_export_import_moves_rules_between_homes() {
    let (mut server_a, _home_a) = setup();
    let tom = PersonId::new("tom");
    server_a
        .submit(&tom, "When a movie is on air, turn on the TV.")
        .unwrap();
    server_a
        .submit(
            &tom,
            "At night, if entrance door is unlocked for 1 hour, turn on the alarm.",
        )
        .unwrap();
    let json = server_a.export_rules().unwrap();

    let (mut server_b, home_b) = setup();
    let emily = PersonId::new("emily");
    let report = server_b.import_rules(&emily, &json).unwrap();
    assert_eq!(report.imported.len(), 2);

    // The imported movie rule runs in the new home.
    home_b.tv_guide.announce("movie", SimTime::from_millis(1));
    server_b.step(SimTime::from_millis(2));
    assert_eq!(home_b.tv.query("power").unwrap(), Value::Bool(true));
}

#[test]
fn engine_with_and_without_trigger_index_agree_end_to_end() {
    let build = |use_index: bool| {
        let (mut server, home) = setup();
        server.engine_mut().set_use_trigger_index(use_index);
        let tom = PersonId::new("tom");
        server
            .submit(
                &tom,
                "If temperature is higher than 26 degrees, turn on the air conditioner.",
            )
            .unwrap();
        server
            .submit(&tom, "When a movie is on air, turn on the TV.")
            .unwrap();
        (server, home)
    };
    let (mut a, home_a) = build(true);
    let (mut b, home_b) = build(false);
    for (home, _t) in [(&home_a, 0), (&home_b, 0)] {
        home.thermometer
            .set_reading(Rational::from_integer(28), SimTime::from_millis(1))
            .unwrap();
        home.tv_guide.announce("movie", SimTime::from_millis(1));
    }
    let ra = a.step(SimTime::from_millis(2));
    let rb = b.step(SimTime::from_millis(2));
    assert_eq!(ra, rb);
    assert_eq!(
        home_a.aircon.query("power").unwrap(),
        home_b.aircon.query("power").unwrap()
    );
}
